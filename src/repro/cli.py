"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run       compile a MiniJava file, rewrite it, execute on a simulated
          cluster, and report result + statistics
original  run the un-instrumented program on one simulated JVM
disasm    show the bytecode of a program, before or after rewriting
trace     run distributed with full DSM protocol tracing
check     sweep seeded schedules of a benchmark app under the
          consistency oracle + invariant monitor, optionally with
          fault injection (``--race`` adds the data-race detector and
          fails any seed with an unsuppressed report)
race      sweep seeded schedules of one program under the race
          detector alone: expect-race for seeded-racy positive
          controls, expect-free for programs that must stay clean
bench     run the built-in apps with the adaptive-locality subsystem
          off/on and report the numbers (``--json`` writes them under
          benchmarks/results/)
serve     run a serving-workload churn scenario (open-loop load,
          mid-run joins, random kills, mixed brands, multi-tenant)
          under the consistency oracle and report per-phase
          throughput + p50/p99/p999 request latency
profile   run with the full telemetry subsystem on: stall-attribution
          report on stdout, plus optional Chrome/Perfetto trace-event
          JSON (``--trace``) and speedscope collapsed stacks
          (``--speedscope``)
stats     run with the metrics registry on and print the counters,
          gauges and latency histograms (``--json`` for the raw dump)

Examples::

    python -m repro run app.mj --nodes 4 --brand ibm
    python -m repro run app.mj --nodes 4 --locality all
    python -m repro run app.mj --nodes 4 --backend proc
    python -m repro check --app series --seeds 5 --backend proc
    python -m repro check --app series --seeds 3 --kill 1@5ms --backend proc
    python -m repro bench --compare-backends --json
    python -m repro disasm app.mj --rewritten
    python -m repro trace app.mj --nodes 2 --limit 80 --json trace.json
    python -m repro check --app series --seeds 25 --faults drop,reorder,dup
    python -m repro check --app tsp --seeds 10 --kill 2@5ms
    python -m repro check --app tsp --kill random --locality migration
    python -m repro check --app series --seeds 25 --policy update
    python -m repro check --app raytracer --seeds 25 --race
    python -m repro check --app series --seeds 10 --obs
    python -m repro race examples/racy_counter.mj --seeds 8
    python -m repro race app.mj --expect free --suppress MinTour.best
    python -m repro bench --json
    python -m repro serve --preset churn --backend proc
    python -m repro serve --preset steady --seeds 10
    python -m repro serve --preset all --json
    python -m repro profile tsp --trace tsp.trace.json --top 5
    python -m repro stats raytracer --json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .dsm import DsmConfig
from .jvm.disasm import disassemble
from .lang import compile_source
from .rewriter import rewrite_application
from .runtime import JavaSplitRuntime, RuntimeConfig, run_original
from .runtime.tracing import DsmTracer


def _read(path: str) -> str:
    with open(path) as fh:
        return fh.read()


def _add_backend_args(p: argparse.ArgumentParser) -> None:
    """Transport-backend flags, shared by run/trace/check/bench."""
    p.add_argument("--backend", default="sim", choices=("sim", "proc"),
                   help="transport backend: 'sim' (in-process simulated "
                        "network, deterministic reference) or 'proc' (one "
                        "OS process per node, every frame over real "
                        "sockets; same schedule, genuine process kills)")
    p.add_argument("--socket", default="unix", choices=("unix", "tcp"),
                   dest="socket_kind",
                   help="socket family for --backend proc "
                        "(default: unix-domain)")


def _add_locality_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--locality", default="", metavar="COMPONENTS",
                   help="adaptive-locality components to enable: "
                        "comma-separated migration,prefetch,aggregation "
                        "or 'all' (default: off)")


def _add_policy_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--policy", default="", metavar="POLICIES",
                   help="adaptive coherence policies to enable: "
                        "comma-separated update,migratory,broadcast "
                        "or 'all' (default: off — plain invalidate)")


def _add_coherency_args(p: argparse.ArgumentParser) -> None:
    """DSM coherency-shape flags, shared by run/trace/check."""
    p.add_argument("--region-elems", type=int, default=None,
                   help="array-region coherency units (§4.3 extension)")
    p.add_argument("--vector-timestamps", action="store_true",
                   help="use the HLRC vector-timestamp baseline mode")


def _add_cluster_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("source", help="MiniJava source file")
    p.add_argument("--nodes", type=int, default=2, help="worker nodes")
    p.add_argument("--cpus", type=int, default=2, help="CPUs per node")
    p.add_argument("--brand", default="sun", choices=("sun", "ibm"),
                   help="JVM brand cost model")
    p.add_argument("--dilation", type=int, default=1,
                   help="instruction-cost time dilation")
    p.add_argument("--scheduler", default="least-loaded",
                   choices=("least-loaded", "round-robin", "random"))
    p.add_argument("--optimize-checks", action="store_true",
                   help="enable redundant access-check elimination (§6.2)")
    p.add_argument("--check-elim", type=int, default=None, metavar="LEVEL",
                   choices=(0, 1, 2),
                   help="check-elimination level: 0=off, 1=straight-line "
                        "(§6.2), 2=region dataflow + loop hoisting")
    p.add_argument("--jit", action="store_true",
                   help="tier hot methods to compiled Python (bit-"
                        "identical observables, faster wall clock)")
    p.add_argument("--jit-threshold", type=int, default=10,
                   metavar="N", help="invocations before a method is "
                                     "compiled (default 10)")
    _add_coherency_args(p)
    _add_locality_arg(p)
    _add_policy_arg(p)
    _add_backend_args(p)


def _backend_kwargs(args) -> dict:
    """RuntimeConfig kwargs carried by the shared backend flags."""
    return {
        "transport_backend": getattr(args, "backend", "sim"),
        "proc_socket_kind": getattr(args, "socket_kind", "unix"),
    }


def _config(args) -> RuntimeConfig:
    from .check.runner import parse_locality, parse_policy

    return RuntimeConfig(
        num_nodes=args.nodes,
        cpus_per_node=args.cpus,
        brands=(args.brand,),
        time_dilation=args.dilation,
        scheduler=args.scheduler,
        dsm=DsmConfig(
            timestamp_mode="vector" if args.vector_timestamps else "scalar",
            array_region_elems=args.region_elems,
        ),
        jit_enable=getattr(args, "jit", False),
        jit_threshold=getattr(args, "jit_threshold", 10),
        jit_check_elim=_elim_level(args),
        **parse_locality(args.locality),
        **parse_policy(getattr(args, "policy", "")),
        **_backend_kwargs(args),
    )


def _elim_level(args) -> int:
    """Effective check-elimination level from the shared flags."""
    level = getattr(args, "check_elim", None)
    if level is not None:
        return level
    return 1 if getattr(args, "optimize_checks", False) else 0


def _report(report, show_traffic: bool = True) -> None:
    print(f"result            : {report.result}")
    for line in report.console:
        print(f"console           : {line}")
    print(f"simulated time    : {report.simulated_seconds * 1e3:.3f} ms")
    if report.backend != "sim":
        print(f"backend           : {report.backend} "
              f"(wall clock {report.wall_seconds * 1e3:.1f} ms)")
        if report.proc is not None:
            print(f"wire              : {report.proc['wire_frames']} frames, "
                  f"{report.proc['wire_bytes']} bytes on wire, "
                  f"{report.proc['wire_delivered']} delivered, "
                  f"{report.proc['wire_fallback']} fallback")
    print(f"threads executed  : {report.threads_run}")
    if report.placements:
        print(f"thread placements : {dict(sorted(report.placements.items()))}")
    if show_traffic and report.net is not None:
        total = report.total_dsm()
        print(f"network           : {report.net.messages} msgs, "
              f"{report.net.bytes} bytes")
        print(f"dsm               : {total.fetches} fetches, "
              f"{total.diffs_sent} diffs, {total.token_transfers} token "
              f"transfers, {total.invalidations} invalidations")
    if report.locality is not None:
        loc = report.locality
        print(f"locality          : {loc['migrated_units']} units migrated, "
              f"{loc['fwd_diffs']} diffs forwarded, "
              f"{loc['prefetch_units']} units prefetched "
              f"({loc['prefetch_hits']} hits), "
              f"{loc['agg_subframes']} msgs in {loc['agg_frames']} "
              f"aggregate frames")
    if report.policy is not None:
        pol = report.policy
        by = ", ".join(f"{name}={n}"
                       for name, n in sorted(pol["by_policy"].items()))
        print(f"policy            : {pol['active_units']} units adapted "
              f"({by or 'none'}), "
              f"{pol['promotions']} promotions, "
              f"{pol['pushes']} pushes ({pol['push_installs']} installed), "
              f"{pol['broadcasts']} broadcasts "
              f"({pol['broadcast_installs']} installed), "
              f"{pol['grants']} ownership grants")
    if report.race is not None:
        r = report.race
        print(f"race detector     : {r['races']} reports "
              f"({r['suppressed']} suppressed), "
              f"{r['events_observed']} access events, mode={r['mode']}"
              + (" DEGRADED" if r["degraded"] else ""))
    if report.jit is not None:
        j = report.jit
        names = ", ".join(j["compiled_methods"]) or "none"
        print(f"jit               : {j['compiles']} compiles "
              f"({names}), {j['deopts']} deopts, "
              f"{len(j['blacklisted'])} blacklisted")


def cmd_run(args) -> int:
    """`repro run`: rewrite + execute on a simulated cluster."""
    classfiles = compile_source(_read(args.source))
    rewritten = rewrite_application(
        classfiles, check_elim=_elim_level(args)
    )
    runtime = JavaSplitRuntime(rewritten, _config(args))
    report = runtime.run()
    _report(report)
    return 0


def cmd_original(args) -> int:
    """`repro original`: un-instrumented single-JVM baseline."""
    report = run_original(
        source=_read(args.source),
        brand=args.brand,
        cpus=args.cpus,
        time_dilation=args.dilation,
    )
    _report(report, show_traffic=False)
    return 0


def cmd_disasm(args) -> int:
    """`repro disasm`: bytecode listing, original or rewritten."""
    classfiles = compile_source(_read(args.source))
    if args.rewritten:
        rewritten = rewrite_application(
            classfiles, check_elim=_elim_level(args)
        )
        classfiles = rewritten.all_classfiles()
    costs = None
    if args.costs:
        from .jvm.disasm import resolve_cost_tables
        costs = resolve_cost_tables(args.costs)
    print(disassemble(classfiles, costs))
    return 0


def cmd_check(args) -> int:
    """`repro check`: seeded consistency sweep under oracle + monitor."""
    from .check import run_check

    done = [0]

    def progress(sr) -> None:
        done[0] += 1
        mark = "ok" if sr.ok else "FAIL"
        print(f"  seed {sr.seed:3d}: {mark}  "
              f"({sr.messages} msgs, {sr.installs_checked} installs, "
              f"{sr.finals_checked} final units)")

    try:
        report = run_check(
            app=args.app,
            seeds=args.seeds,
            faults=args.faults,
            nodes=args.nodes,
            fault_rate=args.fault_rate,
            timestamp_mode="vector" if args.vector_timestamps else "scalar",
            region_elems=args.region_elems,
            strict=args.strict,
            kill=args.kill,
            locality=args.locality,
            policy=args.policy,
            race=args.race,
            obs=args.obs,
            backend=args.backend,
            jit=args.jit,
            jit_threshold=args.jit_threshold,
            check_elim=args.check_elim or 0,
            progress=progress if args.verbose else None,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    return 0 if report.ok else 1


def cmd_bench(args) -> int:
    """`repro bench`: locality off/on numbers for the built-in apps."""
    import json
    from pathlib import Path

    from .bench import (DEFAULT_APPS, run_backend_bench, run_bench,
                        run_jit_bench, run_policy_bench, write_results)

    apps = args.apps or list(DEFAULT_APPS)
    nodes = args.nodes if args.nodes is not None else 3
    if args.jit_bench:
        doc = run_jit_bench(nodes=nodes, apps=apps)
        if args.json:
            out_dir = Path(args.out) if args.out else Path(
                "benchmarks/results")
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / "bench_jit.json"
            path.write_text(json.dumps(doc, indent=2) + "\n")
            print(f"wrote {path}")
        for app, entry in doc["apps"].items():
            interp = entry["runs"]["interp"]
            jit = entry["runs"]["jit"]
            print(f"{app:10s} interp {interp['wall_seconds']:6.2f}s -> "
                  f"jit {jit['wall_seconds']:6.2f}s "
                  f"({entry['speedup_wall']}x wall), "
                  f"{jit['jit']['compiles']} compiles, "
                  f"deopt rate {jit['jit']['deopt_rate']}"
                  + ("" if entry["identical"] else "  DIVERGES"))
        return 0 if all(e["identical"] for e in doc["apps"].values()) else 1
    if args.policy_bench:
        # The policy bench defaults to its own wider cluster; an
        # explicit --nodes still overrides it.
        doc = run_policy_bench(
            nodes=args.nodes) if args.nodes is not None \
            else run_policy_bench()
        if args.json:
            out_dir = Path(args.out) if args.out else Path(
                "benchmarks/results")
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / "bench_policy.json"
            path.write_text(json.dumps(doc, indent=2) + "\n")
            print(f"wrote {path}")
        for app, entry in doc["apps"].items():
            off = entry["runs"]["off"]
            for mode, delta in entry["delta_vs_off"].items():
                print(f"{app:10s} {mode:18s} "
                      f"{delta['messages']:+5d} msgs "
                      f"({delta['messages_pct']}%), "
                      f"{delta['bytes']:+7d} B ({delta['bytes_pct']}%)"
                      + ("" if entry["result_matches"]
                         else "  RESULT DIVERGES"))
        return 0 if all(e["result_matches"]
                        for e in doc["apps"].values()) else 1
    if args.compare_backends:
        doc = run_backend_bench(apps=apps, nodes=nodes)
        if args.json:
            out_dir = Path(args.out) if args.out else Path(
                "benchmarks/results")
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / "bench_backends.json"
            path.write_text(json.dumps(doc, indent=2) + "\n")
            print(f"wrote {path}")
        for app, entry in doc["apps"].items():
            sim, proc = entry["sim"], entry["proc"]
            print(f"{app:10s} sim: {sim['simulated_ms']:8.3f} ms "
                  f"{sim['messages']:5d} msgs | "
                  f"proc: {proc['simulated_ms']:8.3f} ms simulated, "
                  f"{proc['wall_ms']:8.1f} ms wall, "
                  f"{proc['wire']['bytes']:7d} B on wire"
                  + ("" if entry["identical"] else "  DIVERGES"))
        return 0 if all(e["identical"] for e in doc["apps"].values()) else 1
    doc = run_bench(apps=apps, nodes=nodes, ablation=args.ablation,
                    include_metrics=args.metrics, backend=args.backend)
    if args.json:
        out_dir = Path(args.out) if args.out else None
        paths = write_results(doc, **({} if out_dir is None
                                      else {"out_dir": out_dir}))
        for path in paths:
            print(f"wrote {path}")
    for app, entry in doc["apps"].items():
        off = entry["runs"]["off"]
        on = entry["runs"].get("all", off)
        delta = entry.get("delta_all_vs_off", {})
        wall = (f" {off['wall_ms']:7.1f} ms wall |"
                if "wall_ms" in off else "")
        print(f"{app:10s} off: {off['messages']:5d} msgs "
              f"{off['bytes']:7d} B {off['simulated_ms']:8.3f} ms |{wall} "
              f"all: {on['messages']:5d} msgs {on['bytes']:7d} B "
              f"{on['simulated_ms']:8.3f} ms | "
              f"fetches {off['fetches']} -> {on['fetches']} "
              f"({delta.get('fetches_pct')}%)"
              + ("" if entry["result_matches"] else "  RESULT DIVERGES"))
    ok = all(e["result_matches"] for e in doc["apps"].values())
    return 0 if ok else 1


def _print_serve_doc(doc) -> None:
    cluster = doc["cluster"]
    requests = doc["requests"]
    joins = ", ".join(f"{j['brand']}@{j['at_ms']:g}ms"
                      for j in cluster["joins"]) or "none"
    print(f"serve: scenario={doc['scenario']} backend={doc['backend']} "
          f"seed={doc['seed']}")
    print(f"  cluster             : {cluster['nodes']} nodes "
          f"(brands {','.join(cluster['brands'])}), joins {joins}, "
          f"kill={cluster['kill'] or 'none'}, "
          f"{cluster['tenants']} tenants")
    print(f"  requests            : {requests['injected']} injected, "
          f"{requests['delivered']} delivered, "
          f"{requests['completed']} completed")
    result = doc["result"]
    match = ("match" if result["matches"]
             else ("DIVERGES" if result["required"]
                   else "diverges (allowed under kill)"))
    print(f"  result              : {result['value']} "
          f"(reference {result['reference']}, {match})")
    oracle = doc["oracle"]
    print(f"  oracle              : "
          f"{'clean' if not oracle['violations'] else 'VIOLATIONS'} "
          f"({oracle['installs_checked']} installs, "
          f"{oracle['finals_checked']} final units)")
    for i, ph in enumerate(doc["slo"]["phases"]):
        lat = ph["latency_ms"]
        print(f"  phase {i} "
              f"[{ph['start_ms']:g}-{ph['end_ms']:g}ms]  : "
              f"{ph['completed']}/{ph['injected']} done, "
              f"{ph['throughput_rps']:g} rps, "
              f"p50 {lat['p50']:g}ms p99 {lat['p99']:g}ms "
              f"p999 {lat['p999']:g}ms")
    lat = doc["slo"]["overall"]["latency_ms"]
    print(f"  overall             : "
          f"{doc['slo']['overall']['throughput_rps']:g} rps, "
          f"p50 {lat['p50']:g}ms p99 {lat['p99']:g}ms "
          f"p999 {lat['p999']:g}ms")
    if doc.get("error"):
        print(f"  error               : {doc['error']}")
    print(f"  verdict             : {'OK' if doc['ok'] else 'FAILED'}")


def cmd_serve(args) -> int:
    """`repro serve`: churn scenarios over the serving workload."""
    import json

    from .serve import PRESETS, run_scenario, run_scenario_sweep

    if args.preset == "all" and args.seeds is not None:
        print("error: --seeds sweeps one preset, not 'all'",
              file=sys.stderr)
        return 2
    if args.seeds is not None:
        doc = run_scenario_sweep(PRESETS[args.preset], seeds=args.seeds,
                                 backend=args.backend)
        ok = doc["ok"]
        if not args.json:
            for run in doc["seeds"]:
                print(f"seed {run['seed']:3d}: "
                      f"{'ok' if run['ok'] else 'FAILED'} "
                      f"({run['requests']['completed']}"
                      f"/{run['requests']['injected']} requests)")
            print(f"serve sweep: scenario={doc['scenario']} "
                  f"backend={doc['backend']} "
                  f"{len(doc['seeds'])} seeds, "
                  f"verdict {'OK' if ok else 'FAILED'} "
                  f"(failed seeds: {doc['failed_seeds'] or 'none'})")
    elif args.preset == "all":
        doc = {
            "bench": "serve",
            "schema": 1,
            "backend": args.backend,
            "seed": args.seed,
            "scenarios": {
                name: run_scenario(PRESETS[name], seed=args.seed,
                                   backend=args.backend)
                for name in sorted(PRESETS)
            },
        }
        ok = all(s["ok"] for s in doc["scenarios"].values())
        doc["ok"] = ok
        if not args.json:
            for sub in doc["scenarios"].values():
                _print_serve_doc(sub)
    else:
        doc = run_scenario(PRESETS[args.preset], seed=args.seed,
                           backend=args.backend)
        ok = doc["ok"]
        if not args.json:
            _print_serve_doc(doc)
    if args.json:
        print(json.dumps(doc, indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0 if ok else 1


def cmd_trace(args) -> int:
    """`repro trace`: distributed run with protocol tracing."""
    classfiles = compile_source(_read(args.source))
    rewritten = rewrite_application(
        classfiles, check_elim=_elim_level(args)
    )
    runtime = JavaSplitRuntime(rewritten, _config(args))
    tracer = DsmTracer.attach(runtime, max_events=args.limit)
    report = runtime.run()
    print(tracer.format())
    print()
    summary = tracer.summary()
    print("trace summary     : " + ", ".join(
        f"{kind}={count}" for kind, count in summary.items()))
    if args.json:
        import json

        doc = {
            "source": args.source,
            "summary": summary,
            "truncated": tracer.truncated,
            # Always present (0 on a complete trace) so consumers can
            # tell a truncated trace from a quiet run without probing.
            "truncated_dropped": tracer.dropped,
            "events": tracer.as_dicts(),
        }
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {len(tracer.events)} events to {args.json}")
    _report(report)
    return 0


def _app_or_source(target: str) -> str:
    """Resolve a profile/stats target: built-in app name or .mj path."""
    from .check.runner import APP_SOURCES, app_source

    if target in APP_SOURCES:
        return app_source(target)
    return _read(target)


def _obs_config(args, metrics: bool, spans: bool,
                profile: bool) -> "RuntimeConfig":
    from .check.runner import parse_locality

    live = getattr(args, "live", False)
    return RuntimeConfig(
        num_nodes=args.nodes,
        seed=args.seed,
        obs_metrics=metrics,
        obs_spans=spans,
        obs_profile=profile,
        obs_top_n=getattr(args, "top", 10),
        obs_wallclock=getattr(args, "wallclock", False) or live,
        obs_live_stats=live,
        jit_enable=getattr(args, "jit", False),
        jit_threshold=getattr(args, "jit_threshold", 10),
        **parse_locality(args.locality),
        **_backend_kwargs(args),
    )


def _jit_detail(report) -> None:
    """Per-method tier/exit breakdown appended to profile/stats output."""
    j = report.jit
    if j is None:
        return
    print("jit methods:")
    for name in sorted(j["methods"]):
        info = j["methods"][name]
        exits = info["exits"]
        deopts = exits.get("deopt", 0)
        detail = ", ".join(f"{r}={n}" for r, n in sorted(exits.items()))
        print(f"  {name:40s} tier={info['tier']} deopts={deopts}  "
              f"({detail or 'never entered'})")
    for name, why in sorted(j["blacklisted"].items()):
        print(f"  {name:40s} tier=0 (blacklisted: {why})")


def cmd_profile(args) -> int:
    """`repro profile`: full-telemetry run + stall-attribution report."""
    import json

    from .obs.spans import validate_chrome_trace

    rewritten = rewrite_application(compile_source(_app_or_source(args.target)))
    config = _obs_config(args, metrics=True, spans=True, profile=True)
    runtime = JavaSplitRuntime(rewritten, config)
    report = runtime.run()
    obs = runtime.obs
    assert obs is not None and obs.profiler is not None \
        and obs.spans is not None
    print(obs.profiler.format(args.top))
    print()
    if args.trace:
        wall_samples = (obs.wallclock.samples
                        if obs.wallclock is not None else None)
        doc = obs.spans.to_chrome_trace(wall_samples=wall_samples)
        errors = validate_chrome_trace(doc)
        with open(args.trace, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {len(doc['traceEvents'])} trace events to "
              f"{args.trace}")
        if errors:
            print(f"trace-event schema violations ({len(errors)}):",
                  file=sys.stderr)
            for err in errors[:10]:
                print(f"  {err}", file=sys.stderr)
            return 1
    if args.speedscope:
        with open(args.speedscope, "w") as fh:
            fh.write(obs.spans.to_collapsed())
        print(f"wrote collapsed stacks to {args.speedscope}")
    _jit_detail(report)
    _report(report)
    return 0


def _live_stats_lines(runtime) -> List[str]:
    """One refresh of the live cluster view: per-node wall-clock
    counters and histogram summaries, merged master-side."""
    lines = [f"-- live @ sim {runtime.engine.now / 1e6:10.3f} ms --"]
    obs = runtime.obs
    wall = None if obs is None else obs.wallclock
    if wall is None:
        return lines
    doc = wall.as_dict()
    for name in sorted(doc["counters"]):
        entry = doc["counters"][name]
        by_node = " ".join(f"n{n}={c}"
                           for n, c in sorted(entry["by_node"].items()))
        lines.append(f"  {name:28s} {entry['total']:10d}  {by_node}")
    for name in sorted(doc["histograms"]):
        merged = doc["histograms"][name]["merged"]
        by_node = " ".join(
            f"n{n}={h['count']}" for n, h in
            sorted(doc["histograms"][name]["by_node"].items()))
        lines.append(f"  {name:28s} n={merged['count']:6d} "
                     f"mean={merged['mean']:12.1f} p99={merged['p99']}  "
                     f"{by_node}")
    return lines


def _start_live_printer(runtime, interval_s: float):
    """Print the merged cluster view every ``interval_s`` (wall clock)
    while the run executes.  Read-only on runtime state — it never
    touches sockets or the engine, so the sim schedule is unaffected.
    Returns (stop_event, thread)."""
    import threading

    stop = threading.Event()

    def loop() -> None:
        while not stop.wait(interval_s):
            for line in _live_stats_lines(runtime):
                print(line, flush=True)

    thread = threading.Thread(target=loop, name="repro-live-stats",
                              daemon=True)
    thread.start()
    return stop, thread


def _stats_serve(args, preset: str) -> int:
    """``repro stats serve:<preset>``: live telemetry during a serving
    scenario (the churn/SLO harness), on either backend."""
    import json

    from .serve import PRESETS, run_scenario

    if preset not in PRESETS:
        print(f"error: unknown serve preset {preset!r} "
              f"(have {', '.join(sorted(PRESETS))})", file=sys.stderr)
        return 2
    live = getattr(args, "live", False)
    overrides = {"obs_wallclock": True}
    if live:
        overrides["obs_live_stats"] = True
        overrides["obs_live_period_s"] = max(0.05, args.interval / 2)
    printers = []

    def on_runtime(runtime) -> None:
        if live:
            printers.append(_start_live_printer(runtime, args.interval))

    try:
        doc = run_scenario(PRESETS[preset], seed=args.seed,
                           backend=args.backend,
                           config_overrides=overrides,
                           on_runtime=on_runtime)
    finally:
        for stop, thread in printers:
            stop.set()
            thread.join(timeout=2.0)
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        _print_serve_doc(doc)
    return 0 if doc["ok"] else 1


def cmd_stats(args) -> int:
    """`repro stats`: metrics-registry run; counters + histograms."""
    import json

    if args.target.startswith("serve:"):
        return _stats_serve(args, args.target.split(":", 1)[1])
    rewritten = rewrite_application(compile_source(_app_or_source(args.target)))
    config = _obs_config(args, metrics=True, spans=False, profile=False)
    runtime = JavaSplitRuntime(rewritten, config)
    printer = (_start_live_printer(runtime, args.interval)
               if getattr(args, "live", False) else None)
    try:
        report = runtime.run()
    finally:
        if printer is not None:
            stop, thread = printer
            stop.set()
            thread.join(timeout=2.0)
    obs = runtime.obs
    assert obs is not None and obs.metrics is not None
    doc = obs.metrics.as_dict()
    net = report.net
    if net is not None:
        doc["net"] = {
            "messages": net.messages,
            "bytes": net.bytes,
            "dropped": net.dropped,
            "wire_frames": net.wire_frames,
            "wire_bytes": net.wire_bytes,
            "wire_delivered": net.wire_delivered,
            "wire_fallback": net.wire_fallback,
        }
    if obs.wallclock is not None:
        doc["wallclock"] = obs.wallclock.as_dict()
    if args.json:
        print(json.dumps(doc, indent=2))
        return 0
    print("counters:")
    for name in sorted(doc["counters"]):
        entry = doc["counters"][name]
        by_node = ", ".join(f"n{n}={c}"
                            for n, c in sorted(entry["by_node"].items()))
        print(f"  {name:24s} {entry['total']:8d}  ({by_node})")
    if doc["gauges"]:
        print("gauges:")
        for name in sorted(doc["gauges"]):
            print(f"  {name:24s} {doc['gauges'][name]}")
    if doc["histograms"]:
        print("histograms:")
        for name in sorted(doc["histograms"]):
            h = obs.metrics.histogram(name)
            print(f"  {name:24s} n={h.count:6d} mean={h.mean:12.1f} "
                  f"p50={h.quantile(0.5)} p99={h.quantile(0.99)} "
                  f"max={h.max}")
    if "net" in doc:
        n = doc["net"]
        print("net:")
        print(f"  messages={n['messages']} bytes={n['bytes']} "
              f"dropped={n['dropped']}")
        print(f"  wire: frames={n['wire_frames']} bytes={n['wire_bytes']} "
              f"delivered={n['wire_delivered']} "
              f"fallback={n['wire_fallback']}")
    if "wallclock" in doc:
        wc = doc["wallclock"]
        print(f"wallclock (elapsed {wc['wall_elapsed_ns'] / 1e9:.3f}s):")
        for name in sorted(wc["counters"]):
            print(f"  {name:28s} {wc['counters'][name]['total']:10d}")
        for name in sorted(wc["histograms"]):
            merged = wc["histograms"][name]["merged"]
            print(f"  {name:28s} n={merged['count']:6d} "
                  f"mean={merged['mean']:12.1f} p99={merged['p99']}")
    _jit_detail(report)
    _report(report)
    return 0


def cmd_race(args) -> int:
    """`repro race`: seeded race-detector sweep over one program."""
    from .check import run_race_check

    def progress(sr) -> None:
        mark = "ok" if sr.ok(args.expect) else "FAIL"
        print(f"  seed {sr.seed:3d}: {mark}  ({sr.races} reports, "
              f"{sr.suppressed} suppressed, {sr.events} events)")

    try:
        report = run_race_check(
            source=_read(args.source),
            name=args.source,
            seeds=args.seeds,
            nodes=args.nodes,
            mode=args.mode,
            expect=args.expect,
            suppress=tuple(args.suppress or ()),
            progress=progress if args.verbose else None,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    # Show the (deduplicated) reports of the first seed that has any.
    for sr in report.results:
        if sr.reports:
            print(f"\nreports (seed {sr.seed}):")
            for d in sr.reports:
                sites = "\n".join(
                    f"    {s['kind']:5s} {s['class']}.{s['method']} "
                    f"pc={s['pc']} line={s['line']}  node={s['node']} "
                    f"thread={s['thread']} t={s['time_ns'] / 1e6:.3f}ms"
                    for s in d["sites"])
                extra = (f"  lockset={d['lockset']}"
                         if d["lockset"] else "")
                print(f"  race on {d['variable']} [{d['engine']}]{extra}\n"
                      f"{sites}")
            break
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """The full ``repro`` argument parser (separate from dispatch so
    tests can exercise flag wiring without running anything)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="JavaSplit reproduction: distributed execution of "
                    "monolithic MiniJava programs on a simulated cluster",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute on a simulated cluster")
    _add_cluster_args(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_orig = sub.add_parser("original", help="un-instrumented single-JVM run")
    p_orig.add_argument("source")
    p_orig.add_argument("--brand", default="sun", choices=("sun", "ibm"))
    p_orig.add_argument("--cpus", type=int, default=2)
    p_orig.add_argument("--dilation", type=int, default=1)
    p_orig.set_defaults(fn=cmd_original)

    p_dis = sub.add_parser("disasm", help="disassemble bytecode")
    p_dis.add_argument("source")
    p_dis.add_argument("--costs", default=None, metavar="BRAND",
                       choices=("sun", "ibm"),
                       help="annotate pre-summed per-run costs and "
                            "check-elim notes for a JVM brand")
    p_dis.add_argument("--check-elim", type=int, default=None,
                       metavar="LEVEL", choices=(0, 1, 2),
                       help="check-elimination level (0/1/2)")
    p_dis.add_argument("--rewritten", action="store_true",
                       help="disassemble the javasplit.* rewrite instead")
    p_dis.add_argument("--optimize-checks", action="store_true")
    p_dis.set_defaults(fn=cmd_disasm)

    p_chk = sub.add_parser(
        "check",
        help="consistency sweep: oracle + invariant monitor over seeds")
    p_chk.add_argument("--app", default="series",
                       choices=("series", "tsp", "raytracer"),
                       help="benchmark application to sweep")
    p_chk.add_argument("--seeds", type=int, default=25,
                       help="number of seeded schedules to explore")
    p_chk.add_argument("--faults", default="",
                       help="comma-separated faults to inject: "
                            "drop,dup,delay,reorder (default: none)")
    p_chk.add_argument("--fault-rate", type=float, default=0.05,
                       help="per-frame fault probability")
    p_chk.add_argument("--kill", default=None, metavar="NODE@TIME",
                       help="kill one worker mid-run with fault tolerance "
                            "enabled (e.g. 2@5ms, or 'random' for a "
                            "seed-derived node and time)")
    p_chk.add_argument("--nodes", type=int, default=3)
    _add_coherency_args(p_chk)
    _add_locality_arg(p_chk)
    _add_policy_arg(p_chk)
    _add_backend_args(p_chk)
    p_chk.add_argument("--strict", action="store_true",
                       help="raise on the first violation instead of "
                            "collecting")
    p_chk.add_argument("--race", action="store_true",
                       help="run every seed with the data-race detector "
                            "on; any unsuppressed report fails the seed")
    p_chk.add_argument("--obs", action="store_true",
                       help="run every seed with all telemetry knobs on "
                            "(metrics, spans, stall profiling) — puts the "
                            "instrumentation itself under the oracle")
    p_chk.add_argument("--jit", action="store_true",
                       help="run every seed with the tiered JIT on; the "
                            "oracle then certifies compiled execution")
    p_chk.add_argument("--jit-threshold", type=int, default=10,
                       metavar="N")
    p_chk.add_argument("--check-elim", type=int, default=None,
                       metavar="LEVEL", choices=(0, 1, 2),
                       help="check-elimination level for the rewrite")
    p_chk.add_argument("--verbose", action="store_true",
                       help="print one line per seed")
    p_chk.set_defaults(fn=cmd_check)

    p_race = sub.add_parser(
        "race",
        help="race-detector sweep: seeded schedules of one program")
    p_race.add_argument("source", help="MiniJava source file")
    p_race.add_argument("--seeds", type=int, default=8,
                        help="number of seeded schedules to explore")
    p_race.add_argument("--nodes", type=int, default=3)
    p_race.add_argument("--mode", default="both",
                        choices=("hb", "lockset", "both"),
                        help="detection engine(s) to run")
    p_race.add_argument("--expect", default="race",
                        choices=("race", "free"),
                        help="'race': fail seeds with no report (positive "
                             "control); 'free': fail seeds with a report")
    p_race.add_argument("--suppress", action="append", metavar="PATTERN",
                        help="benign-race suppression (Class.field or "
                             "Class[]; repeatable)")
    p_race.add_argument("--verbose", action="store_true",
                        help="print one line per seed")
    p_race.set_defaults(fn=cmd_race)

    p_bench = sub.add_parser(
        "bench",
        help="bench built-in apps with the locality subsystem off/on")
    p_bench.add_argument("--app", action="append", dest="apps",
                         choices=("series", "tsp", "raytracer"),
                         help="app to bench (repeatable; default: all)")
    p_bench.add_argument("--nodes", type=int, default=None,
                         help="cluster size (default: 3; the dedicated "
                              "--policy-bench defaults to 5)")
    p_bench.add_argument("--ablation", action="store_true",
                         help="also bench each locality component and "
                              "each coherence policy alone")
    p_bench.add_argument("--policy-bench", action="store_true",
                         help="dedicated per-policy ablation on a wider "
                              "cluster (what BENCH_7.json snapshots; "
                              "--json writes bench_policy.json)")
    p_bench.add_argument("--json", action="store_true",
                         help="write JSON files under --out")
    p_bench.add_argument("--out", default=None, metavar="DIR",
                         help="output directory for --json "
                              "(default: benchmarks/results)")
    p_bench.add_argument("--metrics", action="store_true",
                         help="also run with the telemetry metrics "
                              "registry on and embed its compact summary")
    _add_backend_args(p_bench)
    p_bench.add_argument("--jit-bench", action="store_true",
                         help="tiered-JIT ablation: interp vs jit vs "
                              "jit+check-elim-2 per app (what "
                              "BENCH_9.json snapshots; deterministic "
                              "fields must be identical interp vs jit)")
    p_bench.add_argument("--compare-backends", action="store_true",
                         help="run every app on both backends and report "
                              "simulated vs wall-clock time side by side "
                              "(--json writes bench_backends.json)")
    p_bench.set_defaults(fn=cmd_bench)

    p_sv = sub.add_parser(
        "serve",
        help="serving-workload churn scenarios with SLO report")
    p_sv.add_argument("--preset", default="steady",
                      choices=("steady", "churn", "hotset", "all"),
                      help="scenario preset: 'steady' (fixed cluster "
                           "baseline), 'churn' (mixed brands, mid-run "
                           "join + random kill, two tenants), 'hotset' "
                           "(phase-shifted hot keys under locality + "
                           "policy), or 'all'")
    p_sv.add_argument("--seed", type=int, default=0,
                      help="run seed (drives arrivals, jitter, and the "
                           "random kill)")
    p_sv.add_argument("--seeds", type=int, default=None, metavar="N",
                      help="sweep seeds 0..N-1 of one preset; exit "
                           "nonzero if any seed fails")
    _add_backend_args(p_sv)
    p_sv.add_argument("--json", action="store_true",
                      help="print the full document as JSON instead of "
                           "the summary")
    p_sv.add_argument("--out", default=None, metavar="FILE",
                      help="also write the JSON document to FILE")
    p_sv.set_defaults(fn=cmd_serve)

    p_prof = sub.add_parser(
        "profile",
        help="telemetry run: stall attribution + causal span traces")
    p_prof.add_argument("target",
                        help="built-in app name (series/tsp/raytracer) "
                             "or a MiniJava source file")
    p_prof.add_argument("--nodes", type=int, default=3)
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("--locality", default="", metavar="COMPONENTS",
                        help="adaptive-locality components to enable "
                             "during the profiled run")
    p_prof.add_argument("--top", type=int, default=10,
                        help="entries in the hot-site / hot-unit tables")
    p_prof.add_argument("--trace", default=None, metavar="FILE",
                        help="write Chrome/Perfetto trace-event JSON")
    p_prof.add_argument("--speedscope", default=None, metavar="FILE",
                        help="write speedscope-compatible collapsed "
                             "stacks (Brendan Gregg folded format)")
    p_prof.add_argument("--jit", action="store_true",
                        help="tier hot methods; adds the per-method "
                             "compile/deopt table and jit.* metrics")
    p_prof.add_argument("--jit-threshold", type=int, default=10,
                        metavar="N")
    p_prof.add_argument("--wallclock", action="store_true",
                        help="record monotonic-clock metrics alongside "
                             "sim time; --trace gains a wall-clock "
                             "counter lane")
    p_prof.set_defaults(fn=cmd_profile)

    p_st = sub.add_parser(
        "stats", help="metrics-registry run: counters + histograms")
    p_st.add_argument("target",
                      help="built-in app name (series/tsp/raytracer), "
                           "a MiniJava source file, or serve:<preset> "
                           "for a serving scenario with telemetry")
    p_st.add_argument("--nodes", type=int, default=3)
    p_st.add_argument("--seed", type=int, default=0)
    p_st.add_argument("--locality", default="", metavar="COMPONENTS")
    p_st.add_argument("--json", action="store_true",
                      help="print the raw registry dump as JSON")
    p_st.add_argument("--jit", action="store_true",
                      help="tier hot methods; adds the per-method "
                           "compile/deopt table and jit.* counters")
    p_st.add_argument("--jit-threshold", type=int, default=10,
                      metavar="N")
    p_st.add_argument("--live", action="store_true",
                      help="stream merged per-node wall-clock metrics "
                           "to stdout while the run executes")
    p_st.add_argument("--interval", type=float, default=0.5,
                      metavar="SECONDS",
                      help="--live refresh period (wall clock)")
    _add_backend_args(p_st)
    p_st.set_defaults(fn=cmd_stats)

    p_tr = sub.add_parser("trace", help="run with DSM protocol tracing")
    _add_cluster_args(p_tr)
    p_tr.add_argument("--limit", type=int, default=200,
                      help="max trace events recorded")
    p_tr.add_argument("--json", default=None, metavar="FILE",
                      help="also write the events + summary as JSON")
    p_tr.set_defaults(fn=cmd_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Argument parsing + dispatch; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
