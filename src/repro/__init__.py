"""JavaSplit reproduction: bytecode-rewriting distributed runtime with an
MTS-HLRC DSM on a simulated cluster of commodity workstations.

Reproduces: Factor, Schuster, Shagin — "JavaSplit: A Runtime for
Execution of Monolithic Java Programs on Heterogeneous Collections of
Commodity Workstations", IEEE CLUSTER 2003.

Top-level entry points::

    from repro import compile_source, rewrite_application
    from repro import JavaSplitRuntime, RuntimeConfig
    from repro import run_distributed, run_original

See README.md for a walkthrough and DESIGN.md for the architecture.
"""

from .lang import compile_source
from .rewriter import rewrite_application
from .runtime import (
    JavaSplitRuntime,
    RunReport,
    RuntimeConfig,
    run_distributed,
    run_original,
)

__version__ = "1.0.0"

__all__ = [
    "compile_source",
    "rewrite_application",
    "JavaSplitRuntime",
    "RunReport",
    "RuntimeConfig",
    "run_distributed",
    "run_original",
    "__version__",
]
