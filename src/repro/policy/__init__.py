"""Adaptive per-unit coherence policies (the ``policy_*`` knobs).

The MTS-HLRC protocol treats every coherency unit the same way:
invalidate on acquire, fetch on demand, merge diffs at the home.  That
is the right default for arbitrary sharing, but the classic sharing
patterns each have a cheaper protocol:

write-update
    A producer-consumer unit (one writer, stable readers) is pushed
    eagerly from its home to the reader set on every write, so the
    readers' invalidations become no-ops and their re-fetches vanish.
migratory single-writer
    A lock-protected unit whose writers take strict turns travels WITH
    the lock token: the holder masters the unit locally, so its writes
    take the home fast path (no twin, no diff, no fetch).
read-mostly broadcast
    A unit read everywhere and written rarely is broadcast to every
    live node on the rare write; reads stay free everywhere.

:class:`PolicyManager` classifies each unit's pattern online (from the
same home-side fetch/diff signal the locality profiler reads) and
switches the protocol per unit at runtime, falling back to plain
invalidation the moment a pattern breaks.
"""

from .manager import (
    POLICY_BROADCAST,
    POLICY_MIGRATORY,
    POLICY_UPDATE,
    PolicyAgent,
    PolicyManager,
)

__all__ = [
    "POLICY_BROADCAST",
    "POLICY_MIGRATORY",
    "POLICY_UPDATE",
    "PolicyAgent",
    "PolicyManager",
]
