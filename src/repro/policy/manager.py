"""PolicyManager / PolicyAgent: per-unit adaptive coherence policies.

One :class:`PolicyManager` per runtime (when any ``policy_*`` knob is
on) owns a per-node :class:`PolicyAgent` and a harness-level registry
of which policy each promoted unit currently runs.  The classifier is
home-side: the home of a unit sees every remote fetch and diff, feeds
them to an :class:`AccessProfiler` window, and promotes the unit once
``policy_hysteresis`` consecutive windows agree on a pattern.  Demotion
back to plain invalidation is immediate the moment the pattern breaks.

Correctness notes:

- Write-update pushes and read-mostly broadcasts never REPLACE write
  notices; they only advance replica versions, so the invalidation a
  notice would force at the next acquire becomes a version-check no-op
  (``_apply_notices`` skips replicas already at the noticed version).
  A lost or skipped push therefore degrades performance, never
  correctness.
- A push is installed only when it moves the replica strictly forward,
  the replica has no pending local writes (twin/dirty), no demand
  fetch for the unit is in flight (the reply must not find the replica
  ahead of it), and the pushed version satisfies the notice table (a
  push must not resurrect a VALID copy older than a seen notice).
- The migratory grant reuses the locality migration machinery.  The
  bootstrap grant rides the M_DIFF_ACK of the promoting diff (under
  the §3.1 fence, exactly like a locality migration grant) and is
  installed by ``LocalityAgent.install_grants``.  Steady-state grants
  ride the lock token itself (``pol_grant`` payload field): the old
  home demotes its master in ``_loc_grant_unit`` inside the token-send
  handler, the new holder installs it via ``ft_install_master`` before
  applying the token's notice delta — so the delta's own notice for
  the unit is a no-op against the fresh master and the owner update
  resolves locally.  Directory entries stay epoch-guarded.
- The policy therefore always runs on top of the locality substrate:
  when no ``locality_*`` knob is on, the manager attaches a
  LocalityManager with every knob off, which contributes no traffic of
  its own but provides the directory redirects, stale-home forwarding
  and grant installation that migrated units need.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from ..dsm.objectstate import ObjState
from ..locality.profiler import (
    DIFF,
    FETCH,
    MIGRATORY,
    PRODUCER_CONSUMER,
    READ_MOSTLY,
    AccessProfiler,
)
from ..net.message import HEADER_BYTES, M_POL_BCAST, M_POL_PUSH, Message
from ..sim import cost_model as cm

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.javasplit import JavaSplitRuntime
    from ..runtime.worker import WorkerNode

#: Per-unit policies a unit can be promoted to.
POLICY_UPDATE = "update"
POLICY_MIGRATORY = "migratory"
POLICY_BROADCAST = "broadcast"

#: Sharing pattern -> the policy that exploits it.
_PATTERN_POLICY = {
    PRODUCER_CONSUMER: POLICY_UPDATE,
    MIGRATORY: POLICY_MIGRATORY,
    READ_MOSTLY: POLICY_BROADCAST,
}


class PolicyManager:
    """Adaptive-coherence subsystem root, attached to one runtime."""

    def __init__(self, runtime: "JavaSplitRuntime") -> None:
        self.runtime = runtime
        cfg = runtime.config
        self.update = cfg.policy_update
        self.migratory = cfg.policy_migratory
        self.broadcast = cfg.policy_broadcast
        self.window = cfg.policy_window
        self.threshold = cfg.policy_threshold
        self.hysteresis = cfg.policy_hysteresis
        self.agents: Dict[int, "PolicyAgent"] = {}
        # Harness-level registry: gid -> active policy for every promoted
        # unit.  It lives here (not in an agent) because the deciding
        # node changes when a migratory unit's home travels: whichever
        # node is CURRENTLY home consults it at token-send time.
        self.units: Dict[int, str] = {}
        # Recovery bookkeeping (degraded mode, see on_recovery).
        self.recovery_wipes = 0
        self.units_wiped = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self) -> None:
        # The policies ride the locality substrate (directory redirects,
        # stale-home forwarding, grant installation, recovery adoption
        # of migrated units).  With no locality_* knob on, attach a
        # LocalityManager whose knobs are all off: its agents adapt
        # nothing and send nothing of their own.
        if self.runtime.locality is None:
            from ..locality import LocalityManager
            self.runtime.locality = LocalityManager(self.runtime)
            self.runtime.locality.attach()
        for w in self.runtime.workers:
            self._attach_worker(w)

    def _attach_worker(self, worker: "WorkerNode") -> None:
        agent = PolicyAgent(self, worker)
        self.agents[worker.node_id] = agent
        worker.dsm.policy = agent
        agent.attach()

    def on_worker_added(self, worker: "WorkerNode") -> None:
        self._attach_worker(worker)

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def policy_of(self, gid: int) -> Optional[str]:
        return self.units.get(gid)

    def set_policy(self, gid: int, policy: str) -> None:
        self.units[gid] = policy

    def clear_policy(self, gid: int) -> None:
        self.units.pop(gid, None)

    def live_nodes(self) -> List[int]:
        return [w.node_id for w in self.runtime.workers if not w.dead]

    # ------------------------------------------------------------------
    # Failure-recovery hooks (driven by repro.ft.recovery)
    # ------------------------------------------------------------------
    def on_recovery(self, dead: int) -> None:
        """A node died: every classification was built partly from its
        accesses, and a promoted unit's reader set may name it.  Wipe
        ALL policy state back to plain invalidation and re-learn from
        live traffic — correctness never depended on the policies, so
        degraded mode is purely a performance reset."""
        self.recovery_wipes += 1
        self.units_wiped += len(self.units)
        self.units.clear()
        for node_id in sorted(self.agents):
            self.agents[node_id].on_recovery(dead)

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """Policy summary for RunReport."""
        stats = [a.dsm.stats for a in self.agents.values()]
        return {
            "active_units": len(self.units),
            "by_policy": {
                policy: sum(1 for p in self.units.values() if p == policy)
                for policy in (POLICY_UPDATE, POLICY_MIGRATORY,
                               POLICY_BROADCAST)
            },
            "promotions": sum(s.pol_promotions for s in stats),
            "demotions": sum(s.pol_demotions for s in stats),
            "pushes": sum(s.pol_pushes for s in stats),
            "push_installs": sum(s.pol_push_installs for s in stats),
            "broadcasts": sum(s.pol_bcasts for s in stats),
            "broadcast_installs": sum(s.pol_bcast_installs for s in stats),
            "grants": sum(s.pol_grants for s in stats),
            "grant_installs": sum(s.pol_grant_installs for s in stats),
            "recovery_wipes": self.recovery_wipes,
            "units_wiped": self.units_wiped,
        }


class PolicyAgent:
    """Per-node policy agent: the DSM engine's ``policy`` hooks plus the
    push/broadcast message handlers."""

    def __init__(self, manager: PolicyManager, worker: "WorkerNode") -> None:
        self.manager = manager
        self.worker = worker
        self.dsm = worker.dsm
        self.transport = worker.transport
        self.node_id = worker.node_id
        self.profiler = AccessProfiler(manager.window)
        # Optional tracer hook: called (node, kind, detail).
        self.event_sink: Optional[Callable[[int, str, str], None]] = None
        # Home-side reader tracking for write-update pushes:
        # gid -> {reader node -> last version known to be there}.
        self._readers: Dict[int, Dict[int, int]] = {}
        # Promotion hysteresis: gid -> (candidate policy, streak length).
        self._streak: Dict[int, Tuple[str, int]] = {}
        # Last classified pattern per unit, to emit classify events only
        # on change (the classifier runs on every remote access).
        self._last_pattern: Dict[int, Optional[str]] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self) -> None:
        self.transport.on(M_POL_PUSH, self._on_push)
        self.transport.on(M_POL_BCAST, self._on_push)

    def _emit(self, kind: str, detail: str) -> None:
        if self.event_sink is not None:
            self.event_sink(self.node_id, kind, detail)

    # ------------------------------------------------------------------
    # Classification (home side)
    # ------------------------------------------------------------------
    def _policy_for_pattern(self, pattern: Optional[str]) -> Optional[str]:
        policy = _PATTERN_POLICY.get(pattern) if pattern else None
        if policy == POLICY_UPDATE and not self.manager.update:
            return None
        if policy == POLICY_MIGRATORY and not self.manager.migratory:
            return None
        if policy == POLICY_BROADCAST and not self.manager.broadcast:
            return None
        return policy

    def _note_event(self, gid: int, kind: str, node: int) -> None:
        if kind == FETCH:
            self.profiler.note_fetch(gid, node)
        else:
            self.profiler.note_diff(gid, node)
        self._reclassify(gid)

    def _reclassify(self, gid: int) -> None:
        pattern = self.profiler.classify(gid, self.manager.threshold)
        if pattern != self._last_pattern.get(gid):
            self._last_pattern[gid] = pattern
            self._emit("policy.classify",
                       f"gid={gid:#x} pattern={pattern or 'none'}")
        target = self._policy_for_pattern(pattern)
        current = self.manager.policy_of(gid)
        if target == current:
            self._streak.pop(gid, None)
            return
        if target is None:
            # Pattern broke (or maps to a disabled policy): demote at
            # once — invalidation is always correct, so there is no
            # reason to keep a mispredicted policy running.
            self._streak.pop(gid, None)
            if current is not None:
                self._demote(gid, current, pattern)
            return
        cand, n = self._streak.get(gid, (None, 0))
        n = n + 1 if cand == target else 1
        if n >= self.manager.hysteresis:
            self._streak.pop(gid, None)
            self._promote(gid, current, target)
        else:
            self._streak[gid] = (target, n)

    def _promote(self, gid: int, old: Optional[str], policy: str) -> None:
        self.manager.set_policy(gid, policy)
        self.dsm.stats.pol_promotions += 1
        self._emit("policy.promote",
                   f"gid={gid:#x} {old or 'invalidate'} -> {policy}")

    def _demote(self, gid: int, current: str,
                pattern: Optional[str]) -> None:
        # For update/broadcast demotion simply stops the pushes (the
        # write notices were flowing all along); a demoted migratory
        # unit stays homed wherever it is and the directory keeps
        # redirecting — only the token piggyback stops.
        self.manager.clear_policy(gid)
        self._readers.pop(gid, None)
        self.dsm.stats.pol_demotions += 1
        self._emit("policy.demote",
                   f"gid={gid:#x} {current} -> invalidate "
                   f"(pattern={pattern or 'none'})")

    # ------------------------------------------------------------------
    # DSM hooks (home side)
    # ------------------------------------------------------------------
    def on_fetch_served(self, requester: int, gid: int,
                        region: Optional[int], obj: Any) -> None:
        """A demand fetch is being served from this home."""
        if region is not None or gid in self.dsm._regions:
            return
        if requester == self.node_id:
            return
        hdr = obj.header
        if hdr is None or hdr.state != ObjState.HOME:
            return
        self._readers.setdefault(gid, {})[requester] = hdr.version
        self._note_event(gid, FETCH, requester)

    def on_diff_applied(self, msg: Message) -> Optional[List[Dict[str, Any]]]:
        """A diff batch was applied at this home: feed the classifier
        and run the promoted units' write-time actions.  Returns
        migratory bootstrap grants to ride the M_DIFF_ACK (installed by
        ``LocalityAgent.install_grants``, exactly like locality
        migration grants)."""
        p = msg.payload
        writer = p["writer"]
        grants: List[Dict[str, Any]] = []
        for gid, _diff, region in p["entries"]:
            if region is not None or gid in self.dsm._regions:
                continue
            if writer != self.node_id:
                self._note_event(gid, DIFF, writer)
            obj = self.dsm.cache.get(gid)
            hdr = obj.header if obj is not None else None
            if hdr is None or hdr.state != ObjState.HOME:
                continue  # granted away mid-batch
            policy = self.manager.policy_of(gid)
            if policy == POLICY_UPDATE:
                self._push_unit(gid, exclude=writer, broadcast=False)
            elif policy == POLICY_BROADCAST:
                self._push_unit(gid, exclude=writer, broadcast=True)
            elif policy == POLICY_MIGRATORY and writer != self.node_id:
                grant = self._make_grant(gid, writer)
                if grant is not None:
                    grants.append(grant)
        return grants or None

    def on_home_advance(self, advanced: List[Tuple[Any, int]]) -> None:
        """The home itself published writes (release-time flush of
        ``_dirty_home``): push the fresh copies of promoted units."""
        for key, _version in advanced:
            if isinstance(key, tuple):
                continue
            policy = self.manager.policy_of(key)
            if policy == POLICY_UPDATE:
                self._push_unit(key, exclude=None, broadcast=False)
            elif policy == POLICY_BROADCAST:
                self._push_unit(key, exclude=None, broadcast=True)

    # ------------------------------------------------------------------
    # Write-update / read-mostly pushes
    # ------------------------------------------------------------------
    def publish_unit(self, gid: int) -> Optional[Dict[str, Any]]:
        """Serialize the local master for a push or broadcast.  The
        oracle wraps this per agent to record the golden snapshot being
        published, so every pushed install is checkable."""
        obj = self.dsm.cache.get(gid)
        if obj is None or obj.header is None \
                or obj.header.state != ObjState.HOME:
            return None
        return self.dsm.ft_serialize_unit(gid)

    def _push_unit(self, gid: int, exclude: Optional[int],
                   broadcast: bool) -> None:
        unit = self.publish_unit(gid)
        if unit is None:
            return
        version = unit["version"]
        if broadcast:
            targets = [n for n in self.manager.live_nodes()
                       if n != self.node_id and n != exclude
                       and n not in self.transport.dead_peers]
        else:
            readers = self._readers.get(gid)
            if not readers:
                return
            targets = [n for n in sorted(readers)
                       if n != self.node_id and n != exclude
                       and readers[n] < version
                       and n not in self.transport.dead_peers]
        if not targets:
            return
        payload = {
            "gid": gid,
            "class_name": unit["class_name"],
            "version": version,
            "data": unit["data"],
        }
        msg_type = M_POL_BCAST if broadcast else M_POL_PUSH
        kind = "policy.broadcast" if broadcast else "policy.push"
        size = HEADER_BYTES + 24 + len(unit["data"])
        delay = (
            self.dsm.cost_model[cm.PROTO_HANDLER_NS]
            + len(unit["data"]) * self.dsm.cost_model[cm.SERIALIZE_PER_BYTE_NS]
        )
        for dst in targets:
            if broadcast:
                self.dsm.stats.pol_bcasts += 1
            else:
                self.dsm.stats.pol_pushes += 1
                self._readers[gid][dst] = version
            self._emit(kind, f"gid={gid:#x} v{version} -> n{dst}")
            self.dsm.engine.schedule(
                delay,
                lambda d=dst: self.transport.send(
                    d, msg_type, dict(payload), size_bytes=size))

    # ------------------------------------------------------------------
    # Push / broadcast install (receiver side)
    # ------------------------------------------------------------------
    def _install_ok(self, gid: int, version: int) -> bool:
        if gid in self.dsm._regions:
            return False
        if (gid, None) in self.dsm._fetch_waiters:
            # A demand fetch is in flight; its reply must not find the
            # replica already ahead of it.
            return False
        obj = self.dsm.cache.get(gid)
        if obj is None or obj.header is None:
            return False  # never seen here: this node is not a reader
        hdr = obj.header
        if hdr.state == ObjState.HOME:
            return False
        if hdr.twin is not None or gid in self.dsm._dirty:
            return False  # pending local writes would be overwritten
        if version <= hdr.version:
            return False
        # Never resurrect a copy older than a notice already seen: the
        # next acquire's invalidation decision is version-based.
        return version >= self.dsm.notice_table.required_scalar(gid)

    def _on_push(self, msg: Message) -> None:
        p = msg.payload
        gid = p["gid"]
        if not self._install_ok(gid, p["version"]):
            return
        self.dsm._install_unit(p)
        if msg.msg_type == M_POL_BCAST:
            self.dsm.stats.pol_bcast_installs += 1
        else:
            self.dsm.stats.pol_push_installs += 1

    # ------------------------------------------------------------------
    # Migratory grants
    # ------------------------------------------------------------------
    def _make_grant(self, gid: int, grantee: int) -> Optional[Dict[str, Any]]:
        """Serialize + demote the local master into a bootstrap grant
        (same shape as a locality migration grant; installed by
        ``install_grants`` on the grantee)."""
        unit = self.dsm._loc_grant_unit(gid)
        if unit is None:
            return None
        epoch = self.dsm._loc_dir.epoch(gid) + 1
        grant = dict(unit)
        grant["epoch"] = epoch
        grant["lock_owner"] = self.dsm.lock_owner.get(gid, self.node_id)
        self.dsm.set_gid_home(gid, grantee, epoch)
        self.dsm.stats.pol_grants += 1
        self.profiler.reset(gid)
        self._readers.pop(gid, None)
        self._last_pattern.pop(gid, None)
        self.dsm.locality.manager.note_migration(gid, grantee, epoch)
        self._emit("policy.grant",
                   f"gid={gid:#x} home {self.node_id} -> {grantee} "
                   f"epoch {epoch}")
        return grant

    def on_token_send(self, gid: int, req: Any,
                      payload: Dict[str, Any]) -> int:
        """Steady state: when a migratory unit's token leaves its
        current home, the master travels with it.  Returns the extra
        wire bytes the grant adds to the token frame."""
        if self.manager.policy_of(gid) != POLICY_MIGRATORY:
            return 0
        if req.node == self.node_id or gid in self.dsm._regions:
            return 0
        if self.dsm.home_node(gid) != self.node_id:
            return 0
        unit = self.dsm._loc_grant_unit(gid)
        if unit is None:
            return 0
        epoch = self.dsm._loc_dir.epoch(gid) + 1
        grant = dict(unit)
        grant["epoch"] = epoch
        self.dsm.set_gid_home(gid, req.node, epoch)
        self.dsm.stats.pol_grants += 1
        self.profiler.reset(gid)
        self._last_pattern.pop(gid, None)
        self.dsm.locality.manager.note_migration(gid, req.node, epoch)
        payload["pol_grant"] = grant
        self._emit("policy.grant",
                   f"gid={gid:#x} home {self.node_id} -> {req.node} "
                   f"epoch {epoch} (token)")
        return 24 + len(grant["data"])

    def on_token_arrive(self, p: Dict[str, Any]) -> None:
        """Install a token-borne master BEFORE the token's notice delta
        is applied: the fresh master makes the unit's own notice a
        no-op, and the owner update resolves locally."""
        grant = p.get("pol_grant")
        if grant is None:
            return
        gid = grant["gid"]
        self.dsm.set_gid_home(gid, self.node_id, grant["epoch"])
        if self.dsm._loc_dir.get(gid) != self.node_id:
            return  # a strictly newer migration moved the unit onward
        # ft_install_master (not install_grants): this node is the
        # token GRANTEE, not the fenced writer — a VALID-fold of its
        # possibly-stale working copy would publish old data.  The
        # install overwrites clean replicas and merges any dirty twin
        # back on top as a pending home write.
        self.dsm.ft_install_master(grant)
        self.dsm.lock_owner[gid] = self.node_id
        self.dsm.stats.pol_grant_installs += 1
        self.dsm.locality.manager.note_migration(
            gid, self.node_id, grant["epoch"])
        if self.dsm.ft is not None:
            self.dsm.ft.note_adopted(gid)
            self.dsm.ft.on_home_advance([(gid, grant["version"])])
        self._emit("policy.grant_install",
                   f"gid={gid:#x} v{grant['version']} "
                   f"epoch {grant['epoch']}")

    # ------------------------------------------------------------------
    # Failure recovery
    # ------------------------------------------------------------------
    def on_recovery(self, dead: int) -> None:
        self._readers.clear()
        self._streak.clear()
        self._last_pattern.clear()
        self.profiler = AccessProfiler(self.manager.window)
