"""The JavaSplit runtime: worker pool, load balancing, class
distribution, and the public execution API."""

from .classreg import ClassRegistry, ClassShipment
from .config import ConfigError, RuntimeConfig
from .javasplit import (
    DeadlockError,
    JavaSplitRuntime,
    RunReport,
    run_distributed,
    run_original,
)
from .scheduler import (
    LeastLoadedScheduler,
    PinnedScheduler,
    PlacementTracker,
    RandomScheduler,
    RoundRobinScheduler,
    make_scheduler,
)
from .worker import WorkerNode, build_worker

__all__ = [
    "ClassRegistry", "ClassShipment",
    "ConfigError", "RuntimeConfig",
    "DeadlockError", "JavaSplitRuntime", "RunReport",
    "run_distributed", "run_original",
    "LeastLoadedScheduler", "PinnedScheduler", "PlacementTracker",
    "RandomScheduler", "RoundRobinScheduler", "make_scheduler",
    "WorkerNode", "build_worker",
]
