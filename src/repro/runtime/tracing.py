"""Protocol event tracing.

Attach a :class:`DsmTracer` to a :class:`JavaSplitRuntime` to record
every DSM protocol event (fetches, diffs, token transfers, spawns, ...)
with simulated timestamps — the tool that found both notice-propagation
bugs during development, promoted to a first-class debugging feature.

Usage::

    rt = JavaSplitRuntime(rewritten, config)
    tracer = DsmTracer.attach(rt)
    rt.run()
    print(tracer.format(limit=50))
    tracer.events_of_type("dsm.token")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from ..net.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from .javasplit import JavaSplitRuntime


@dataclass(frozen=True)
class TraceEvent:
    """One recorded protocol event with its simulated timestamp."""
    time_ns: int
    node: int
    kind: str           # message type, or 'promote' / 'invalidate' / ...
    detail: str

    def __str__(self) -> str:
        return f"{self.time_ns / 1e6:10.3f}ms  n{self.node}  {self.kind:<18} {self.detail}"


class DsmTracer:
    """Records protocol activity across all nodes of one runtime."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._limit: Optional[int] = None
        # Events refused once the max-events cap was hit: a truncated
        # trace must never read as a quiet run.
        self.dropped = 0

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, runtime: "JavaSplitRuntime",
               max_events: Optional[int] = None) -> "DsmTracer":
        """Wrap every worker of a runtime; returns the tracer.

        Idempotent per runtime: a second attach returns the tracer
        already in place (updating its event cap if one is given)
        instead of re-wrapping ``transport.send``/``promote`` — a
        double wrap would double-record every event."""
        existing = getattr(runtime, "_dsm_tracer", None)
        if existing is not None:
            if max_events is not None:
                existing._limit = max_events
            return existing
        tracer = cls()
        tracer._limit = max_events
        runtime._dsm_tracer = tracer
        for worker in runtime.workers:
            tracer._wrap_worker(worker)
        engine = runtime.engine
        if runtime.locality is not None:
            for agent in runtime.locality.agents.values():
                agent.event_sink = (
                    lambda node, kind, detail:
                    tracer.record(engine.now, node, kind, detail))
        if runtime.policy is not None:
            for agent in runtime.policy.agents.values():
                agent.event_sink = (
                    lambda node, kind, detail:
                    tracer.record(engine.now, node, kind, detail))
        if runtime.race is not None:
            for agent in runtime.race.agents.values():
                agent.event_sink = (
                    lambda node, kind, detail:
                    tracer.record(engine.now, node, kind, detail))
        if runtime.ft is not None:
            # Recovery milestones land in the same flat event log the
            # locality/race agents already feed.
            master = runtime.config.master_node
            runtime.ft.orchestrator.event_sink = (
                lambda time_ns, kind, detail:
                tracer.record(time_ns, master, kind, detail))
        return tracer

    def _wrap_worker(self, worker) -> None:
        dsm = worker.dsm
        engine = dsm.engine
        node_id = worker.node_id

        transport_send = dsm.transport.send

        def send(dst, msg_type, payload=None, size_bytes=0):
            msg = transport_send(dst, msg_type, payload, size_bytes)
            self.record(engine.now, node_id, msg_type,
                        f"-> n{dst} ({msg.size_bytes}B)")
            return msg

        dsm.transport.send = send

        promote = dsm.promote

        def traced_promote(ref):
            fresh = ref.header is None or not ref.header.gid
            gid = promote(ref)
            if fresh:
                self.record(engine.now, node_id, "promote",
                            f"{ref.class_name} gid={gid:#x}")
            return gid

        dsm.promote = traced_promote

    # ------------------------------------------------------------------
    def record(self, time_ns: int, node: int, kind: str, detail: str) -> None:
        """Append one event (respecting the max-events limit)."""
        if self._limit is not None and len(self.events) >= self._limit:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time_ns, node, kind, detail))

    @property
    def truncated(self) -> bool:
        """True when the max-events cap dropped at least one event."""
        return self.dropped > 0

    def events_of_type(self, kind: str) -> List[TraceEvent]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Event counts per kind."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def summary(self) -> Dict[str, int]:
        """Event counts by kind, sorted by kind name — the one-line
        answer to "what did the protocol (and the ``locality.*`` /
        ``policy.*`` / ``race.*`` subsystem events) actually do in this
        run?".  When
        the max-events cap dropped events, a ``truncated_dropped`` entry
        carries the drop count so a truncated trace cannot be mistaken
        for a quiet run."""
        out = dict(sorted(self.counts().items()))
        if self.truncated:
            out["truncated_dropped"] = self.dropped
        return out

    def as_dicts(self) -> List[Dict[str, Any]]:
        """Events as JSON-ready dicts (``repro trace --json``)."""
        return [
            {"time_ns": e.time_ns, "node": e.node, "kind": e.kind,
             "detail": e.detail}
            for e in self.events
        ]

    def format(self, limit: Optional[int] = None,
               kind: Optional[str] = None) -> str:
        """Human-readable listing, optionally filtered/limited."""
        events = self.events if kind is None else self.events_of_type(kind)
        if limit is not None:
            events = events[-limit:]
        lines = [str(e) for e in events]
        if self.truncated:
            lines.append(
                f"... trace truncated: {self.dropped} later events "
                f"dropped by the max-events cap")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
