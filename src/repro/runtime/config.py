"""Runtime configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..dsm.protocol import DsmConfig
from ..sim.node import DEFAULT_QUANTUM_NS


class ConfigError(ValueError):
    """A runtime operation is invalid under the active configuration."""


@dataclass
class RuntimeConfig:
    """Cluster + protocol configuration for one JavaSplit execution.

    Defaults model the paper's testbed: dual-processor nodes on a
    100 Mbit network (the bandwidth lives in the brand cost models).
    ``brands`` may name one brand for all nodes or one per node — the
    paper explicitly mixes JVM brands in a single execution (§6).
    """

    num_nodes: int = 1
    cpus_per_node: int = 2
    brands: Sequence[str] = ("sun",)
    dsm: DsmConfig = field(default_factory=DsmConfig)
    scheduler: str = "least-loaded"
    quantum_ns: int = DEFAULT_QUANTUM_NS
    net_jitter_ns: int = 0
    # TCP-like ARQ on every transport endpoint (acks + retransmission).
    # Required when the fault injector drops or duplicates raw frames;
    # off by default so clean runs keep exact message accounting.
    reliable_transport: bool = False
    seed: int = 0
    max_events: int = 200_000_000
    master_node: int = 0
    # Instruction-cost time dilation (see CostModel.scaled): lets small
    # simulated inputs reproduce the compute:communication ratio of the
    # paper's full-size workloads.
    time_dilation: int = 1
    # Cost calibration: "app" (default; §6.2 application-level slowdowns)
    # or "micro" (Table 1/2 repeated-access microbenchmark numbers).
    cost_profile: str = "app"
    # ----- transport backend (src/repro/net) ---------------------------
    # "sim" (default): in-process simulated network — deterministic, the
    # oracle/differential reference.  "proc": one OS process per node
    # with every frame relayed over real sockets (see net/procnet.py);
    # same schedule and message counts, but payloads genuinely cross a
    # wire-format encode/decode and node kills map to SIGKILL of the
    # worker process.
    transport_backend: str = "sim"
    # Socket family for the proc backend: "unix" (default) or "tcp"
    # (127.0.0.1, ephemeral ports).
    proc_socket_kind: str = "unix"
    # Master-side deadline waiting for a physical frame copy before the
    # run is declared wedged (WireError).
    proc_wait_timeout_s: float = 30.0
    # multiprocessing start method for workers; None picks "fork" when
    # available, else "spawn".
    proc_start_method: Optional[str] = None
    # Allow workers to join mid-run on the proc backend (a late OS
    # process is forked and handshaken on the still-open control
    # listener).  Off, ``schedule_join``/``add_worker`` raise a clear
    # ConfigError instead of silently assuming the sim backend.
    proc_late_spawn: bool = True
    # ----- fault tolerance (src/repro/ft) ------------------------------
    # Survive the loss of a single (non-master) worker: heartbeat failure
    # detection, buddy replication of home state, and node-failure
    # recovery.  Off by default — fault-free runs with ft_enabled=False
    # are byte-identical to a build without the subsystem.
    ft_enabled: bool = False
    # Heartbeat period (every worker pings the master node).
    ft_heartbeat_ns: int = 20_000_000  # 20 ms
    # Consecutive missed heartbeats before a worker is declared failed.
    # A transport-level ARQ give-up ("peer unreachable") lowers the bar
    # to max(1, ft_suspect_beats // 4) for the suspected peer.
    ft_suspect_beats: int = 3
    # "eager": mirror every home-state advance to the buddy as it
    # happens.  "lazy": mirror only units whose gid has crossed the wire
    # (nothing a survivor can name is ever lost; purely-local state dies
    # with the node, whose threads restart from scratch anyway).
    ft_replication: str = "eager"
    # ----- adaptive locality (src/repro/locality) ----------------------
    # Observe per-unit access patterns and adapt the protocol: re-home
    # units to their dominant writer, prefetch invalidated units in bulk
    # on acquire, and coalesce same-destination flush traffic at release.
    # All three default off — with every knob off, runs are byte-identical
    # to a build without the subsystem.
    locality_migration: bool = False
    locality_prefetch: bool = False
    locality_aggregation: bool = False
    # Sliding-window length (per-unit remote-access events remembered by
    # the profiler) used by the migration policy.
    locality_window: int = 8
    # Remote diffs from a single dominant writer, within the window,
    # before the unit is re-homed to that writer.
    locality_migration_threshold: int = 3
    # Max units batched into one bulk-fetch on acquire.
    locality_prefetch_depth: int = 8
    # ----- adaptive coherence policies (src/repro/policy) --------------
    # Classify each coherency unit's sharing pattern online (from the
    # same home-side fetch/diff signal the locality profiler sees) and
    # switch its coherence protocol per unit at runtime.  Each policy is
    # an independent knob; all default off — with every knob off no
    # agent is attached and runs are byte-identical to a build without
    # the subsystem.
    #
    # write-update: the home of a producer-consumer unit pushes fresh
    # copies eagerly to its stable reader set, so the readers' write
    # notices become no-ops instead of forcing re-fetches.
    policy_update: bool = False
    # migratory single-writer: ownership of a lock-protected unit
    # travels with the lock token, so the current holder writes its own
    # master (no twin, no diff, no fetch — the §4.4 fast path applies).
    policy_migratory: bool = False
    # read-mostly broadcast: a version-stamped full copy of a unit that
    # is read everywhere and written rarely is broadcast on the rare
    # write; reads stay free everywhere.
    policy_broadcast: bool = False
    # Sliding-window length for the policy classifier (events per unit).
    policy_window: int = 12
    # Events of the defining kind within the window before a pattern is
    # recognized (diffs for producer-consumer/migratory, fetches for
    # read-mostly).  2 promotes early enough to pay off on check-scale
    # app instances; raise it on long-running workloads where a
    # mis-promotion is more expensive than a slow start.
    policy_threshold: int = 2
    # Consecutive identical classifications before a unit is promoted
    # to a policy (demotion back to invalidate is immediate).
    policy_hysteresis: int = 2
    # ----- data-race detection (src/repro/race) ------------------------
    # Online distributed detector over the access checks: vector-clock
    # happens-before with FastTrack-style epoch compression, plus an
    # Eraser-style lockset engine.  Off by default — with race_detect
    # False no agent is attached, no payload field is added, and runs
    # are byte-identical to a build without the subsystem.
    race_detect: bool = False
    # "hb", "lockset", or "both" (HB verdicts annotated with the lockset
    # diagnosis, plus lockset-only findings).
    race_mode: str = "both"
    # Benign-race suppression patterns ("Class.field" or "Class[]"), in
    # the spirit of a ThreadSanitizer suppression file.  Suppressed
    # findings are counted but not reported.
    race_suppress: Sequence[str] = ()
    # Cap on retained race reports (each race is reported once; the
    # overflow count is surfaced in the summary).
    race_max_reports: int = 50
    # ----- tiered JIT (src/repro/jit) ----------------------------------
    # Tier-1 compilation: hot rewritten methods are translated to
    # specialized Python functions (codegen + exec) with the per-
    # instruction simulated costs pre-summed per straight-line run and
    # the §4.4 local-lock fast path inlined.  Off by default — with
    # jit_enable False no manager is attached and runs are byte-identical
    # to a build without the subsystem; with it on, results, protocol
    # traffic, and simulated time are still byte-identical (the compiler
    # only changes wall-clock speed), which the differential suite
    # verifies.
    jit_enable: bool = False
    # Invocations (plus one bump per scheduling quantum spent in a
    # method) before a method is promoted from tier 0 to tier 1.
    jit_threshold: int = 10
    # Access-check elimination level consumed by compiled code:
    # 0 = none, 1 = the straight-line §6.2 pass (same as
    # ``rewrite_application(optimize_checks=True)``), 2 = adds the
    # region-based dataflow + null-safe loop hoisting pass.  Levels 1/2
    # legally change simulated time (fewer checked accesses), so the
    # byte-identical differential harness runs with level 0.
    jit_check_elim: int = 0
    # Record a per-node trace of deopt events (method, pc, reason) in
    # the jit report; debugging aid, never affects execution.
    jit_deopt_trace: bool = False
    # ----- telemetry (src/repro/obs) -----------------------------------
    # Metrics registry: per-node counters/gauges/histograms sampled into
    # sim-time-bucketed series.  Traffic-passive.
    obs_metrics: bool = False
    # Causal span tracing: protocol transactions become span trees whose
    # ids piggyback on protocol payloads (the one obs knob that adds
    # wire bytes), exportable as Perfetto JSON / speedscope stacks.
    obs_spans: bool = False
    # Stall-attribution profiler: every thread wait charged to the
    # blocking bytecode site and coherency unit.  Traffic-passive.
    obs_profile: bool = False
    # Time-series bucket width for the metrics registry.
    obs_metrics_bucket_ns: int = 1_000_000  # 1 ms
    # Span cap: once reached, further spans are counted as dropped.
    obs_max_spans: int = 200_000
    # Rows in the hot-site / hot-unit profile reports.
    obs_top_n: int = 10
    # Wall-clock telemetry: monotonic-clock histograms for socket RTT,
    # wire encode/decode, worker event-loop lag, and JIT compile/quantum
    # time.  Passive: never adds payload bytes or sim events.
    obs_wallclock: bool = False
    # Per-worker flight recorder: bounded ring of recent protocol / jit /
    # serve events with paired (wall, sim) timestamps, dumped to JSON on
    # SIGKILL detection, oracle/monitor violation, or WireError.
    obs_flight_recorder: bool = False
    # Ring capacity (events per node) for the flight recorder.
    obs_flight_events: int = 256
    # Directory for flight dumps (None -> a fresh temp directory).
    obs_flight_dir: Optional[str] = None
    # Live stats streaming: proc workers ship compact metric deltas to
    # the master on a wall-clock cadence (``repro stats --live``).
    obs_live_stats: bool = False
    # Wall-clock period between live delta shipments.
    obs_live_period_s: float = 0.25

    @property
    def jit_enabled(self) -> bool:
        return self.jit_enable

    @property
    def obs_enabled(self) -> bool:
        """True when any telemetry collector is switched on."""
        return (self.obs_metrics or self.obs_spans or self.obs_profile
                or self.obs_wallclock or self.obs_flight_recorder
                or self.obs_live_stats)

    @property
    def race_enabled(self) -> bool:
        return self.race_detect

    @property
    def locality_enabled(self) -> bool:
        """True when any adaptive-locality component is switched on."""
        return (self.locality_migration or self.locality_prefetch
                or self.locality_aggregation)

    @property
    def policy_enabled(self) -> bool:
        """True when any adaptive coherence policy is switched on."""
        return (self.policy_update or self.policy_migratory
                or self.policy_broadcast)

    def brand_of(self, node_id: int) -> str:
        """JVM brand name for one node (single- or per-node list)."""
        if len(self.brands) == 1:
            return self.brands[0]
        if len(self.brands) != self.num_nodes:
            raise ValueError(
                f"brands must have 1 or num_nodes entries, got "
                f"{len(self.brands)} for {self.num_nodes} nodes"
            )
        return self.brands[node_id]

    def validate(self) -> None:
        """Reject inconsistent configurations early."""
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.cpus_per_node < 1:
            raise ValueError("cpus_per_node must be >= 1")
        if not (0 <= self.master_node < self.num_nodes):
            raise ValueError("master_node out of range")
        for i in range(self.num_nodes):
            self.brand_of(i)  # raises on mismatch
        if self.transport_backend not in ("sim", "proc"):
            raise ValueError(
                f"unknown transport_backend {self.transport_backend!r} "
                "(expected 'sim' or 'proc')"
            )
        if self.proc_socket_kind not in ("unix", "tcp"):
            raise ValueError(
                f"unknown proc_socket_kind {self.proc_socket_kind!r} "
                "(expected 'unix' or 'tcp')"
            )
        if self.proc_wait_timeout_s <= 0:
            raise ValueError("proc_wait_timeout_s must be positive")
        if self.proc_start_method not in (None, "fork", "spawn",
                                          "forkserver"):
            raise ValueError(
                f"unknown proc_start_method {self.proc_start_method!r}"
            )
        if self.ft_enabled:
            if self.num_nodes < 2:
                raise ValueError(
                    "ft_enabled requires num_nodes >= 2 (a buddy node)"
                )
            if not self.reliable_transport:
                raise ValueError(
                    "ft_enabled requires reliable_transport=True (the "
                    "failure detector rides on the ARQ layer)"
                )
            if self.dsm.timestamp_mode != "scalar":
                raise ValueError(
                    "ft_enabled supports only the scalar (MTS-HLRC) "
                    "timestamp mode"
                )
            if self.ft_replication not in ("eager", "lazy"):
                raise ValueError(
                    f"unknown ft_replication {self.ft_replication!r} "
                    "(expected 'eager' or 'lazy')"
                )
            if self.ft_heartbeat_ns <= 0 or self.ft_suspect_beats < 1:
                raise ValueError(
                    "ft_heartbeat_ns must be positive and "
                    "ft_suspect_beats >= 1"
                )
        if self.locality_enabled:
            if self.dsm.timestamp_mode != "scalar":
                raise ValueError(
                    "locality_* knobs support only the scalar (MTS-HLRC) "
                    "timestamp mode"
                )
            if self.locality_window < 1:
                raise ValueError("locality_window must be >= 1")
            if self.locality_migration_threshold < 1:
                raise ValueError(
                    "locality_migration_threshold must be >= 1")
            if self.locality_prefetch_depth < 1:
                raise ValueError("locality_prefetch_depth must be >= 1")
        if self.policy_enabled:
            if self.dsm.timestamp_mode != "scalar":
                raise ValueError(
                    "policy_* knobs support only the scalar (MTS-HLRC) "
                    "timestamp mode"
                )
            if self.policy_window < 1:
                raise ValueError("policy_window must be >= 1")
            if self.policy_threshold < 1:
                raise ValueError("policy_threshold must be >= 1")
            if self.policy_hysteresis < 1:
                raise ValueError("policy_hysteresis must be >= 1")
        if self.race_detect:
            if self.dsm.timestamp_mode != "scalar":
                raise ValueError(
                    "race_detect supports only the scalar (MTS-HLRC) "
                    "timestamp mode"
                )
            if self.race_mode not in ("hb", "lockset", "both"):
                raise ValueError(
                    f"unknown race_mode {self.race_mode!r} "
                    "(expected 'hb', 'lockset' or 'both')"
                )
            if self.race_max_reports < 1:
                raise ValueError("race_max_reports must be >= 1")
        if self.jit_enable:
            if self.jit_threshold < 1:
                raise ValueError("jit_threshold must be >= 1")
        if self.jit_check_elim not in (0, 1, 2):
            raise ValueError("jit_check_elim must be 0, 1 or 2")
        if self.obs_enabled:
            if self.obs_metrics_bucket_ns < 1:
                raise ValueError("obs_metrics_bucket_ns must be >= 1")
            if self.obs_max_spans < 1:
                raise ValueError("obs_max_spans must be >= 1")
            if self.obs_top_n < 1:
                raise ValueError("obs_top_n must be >= 1")
            if self.obs_flight_events < 1:
                raise ValueError("obs_flight_events must be >= 1")
            if self.obs_live_period_s <= 0:
                raise ValueError("obs_live_period_s must be positive")
