"""The JavaSplit runtime: public API for distributed execution.

Typical use::

    from repro.lang import compile_source
    from repro.rewriter import rewrite_application
    from repro.runtime import JavaSplitRuntime, RuntimeConfig

    classes = compile_source(SOURCE)              # "javac"
    rewritten = rewrite_application(classes)      # bytecode rewriter
    rt = JavaSplitRuntime(rewritten, RuntimeConfig(num_nodes=4))
    report = rt.run()
    print(report.simulated_seconds, report.console)

or the one-shot helpers :func:`run_distributed` /
:func:`run_original` (the un-instrumented single-JVM baseline used for
the paper's speedup numbers).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..dsm.protocol import DsmStats
from ..jvm.classfile import ClassFile
from ..jvm.intrinsics import bootstrap_classfiles
from ..jvm.jvm import JThread, JVM
from ..lang import compile_source
from ..net.simnet import SimNetwork
from ..net.stats import NetStats
from ..rewriter.rewriter import RewriteResult, rewrite_application
from ..sim.cost_model import get_brand
from ..sim.engine import NS_PER_SEC, SimEngine
from ..sim.node import Node, StreamState
from .classreg import ClassRegistry
from .config import ConfigError, RuntimeConfig
from .scheduler import PlacementTracker, make_scheduler
from .worker import WorkerNode, build_worker


class DeadlockError(RuntimeError):
    """The simulation quiesced with threads still blocked."""


@dataclass
class RunReport:
    """Everything a benchmark needs from one execution."""

    simulated_ns: int
    console: List[str]
    result: Any
    threads_run: int
    net: Optional[NetStats] = None
    dsm_stats: List[DsmStats] = field(default_factory=list)
    placements: Dict[int, int] = field(default_factory=dict)
    class_bytes: int = 0
    node_busy_ns: Dict[int, int] = field(default_factory=dict)
    events: int = 0
    # Fault-tolerance summary (None unless RuntimeConfig.ft_enabled):
    # failures detected, dead nodes, per-recovery repair counts.
    ft: Optional[Dict[str, Any]] = None
    # Adaptive-locality summary (None unless a locality_* knob is on):
    # migrated units, forwarded diffs, prefetch and aggregation counts.
    locality: Optional[Dict[str, Any]] = None
    # Adaptive-coherence summary (None unless a policy_* knob is on):
    # per-policy unit counts, promotions/demotions, push/broadcast/grant
    # traffic and install counts.
    policy: Optional[Dict[str, Any]] = None
    # Race-detector summary (None unless RuntimeConfig.race_detect):
    # mode, reports (with both access sites each), suppressed count,
    # event/promotion statistics.
    race: Optional[Dict[str, Any]] = None
    # Telemetry summary (None unless an obs_* knob is on): metrics
    # export, span counts, stall-attribution profile.
    obs: Optional[Dict[str, Any]] = None
    # Tiered-JIT summary (None unless RuntimeConfig.jit_enable): per-
    # method compile tier, exit/deopt reason histograms, blacklist.
    jit: Optional[Dict[str, Any]] = None
    # Which transport backend carried the run, its wall-clock duration,
    # and (proc backend only) the wire-plane summary: frame/byte counts
    # and per-worker relay statistics.
    backend: str = "sim"
    wall_seconds: float = 0.0
    proc: Optional[Dict[str, Any]] = None
    # Paths of flight-recorder postmortems written during the run
    # (empty unless obs_flight_recorder caught a death/violation/error).
    flight_dumps: List[str] = field(default_factory=list)

    @property
    def simulated_seconds(self) -> float:
        """Execution time in simulated seconds."""
        return self.simulated_ns / NS_PER_SEC

    def total_dsm(self) -> DsmStats:
        """Sum of all nodes' DSM statistics."""
        agg = DsmStats()
        for s in self.dsm_stats:
            for name in vars(agg):
                setattr(agg, name, getattr(agg, name) + getattr(s, name))
        return agg


class JavaSplitRuntime:
    """A pool of simulated worker nodes executing one rewritten app."""

    def __init__(
        self,
        rewritten: RewriteResult,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        self.rewritten = rewritten
        self.config = config or RuntimeConfig()
        self.config.validate()
        self.engine = SimEngine()
        if self.config.transport_backend == "proc":
            from ..net.procnet import ProcNetwork
            self.network: SimNetwork = ProcNetwork(
                self.engine,
                jitter_ns=self.config.net_jitter_ns,
                seed=self.config.seed,
                socket_kind=self.config.proc_socket_kind,
                wait_timeout_s=self.config.proc_wait_timeout_s,
                start_method=self.config.proc_start_method,
            )
            self.network.on_proc_death = self._proc_node_died
        else:
            self.network = SimNetwork(
                self.engine,
                jitter_ns=self.config.net_jitter_ns,
                seed=self.config.seed,
            )
        self.console: List[str] = []
        self.registry = ClassRegistry(rewritten.classfiles)
        self.scheduler = PlacementTracker(
            make_scheduler(self.config.scheduler)
        )
        self.workers: List[WorkerNode] = []
        # In-flight placements: a SPAWN decision raises a node's
        # effective load immediately, even though the shipped thread only
        # registers there after the message latency.  Without this, a
        # burst of spawns all lands on the same momentarily-idle node.
        self._pending_spawns: Dict[int, int] = {}
        choose = self._choose_spawn_node
        for i in range(self.config.num_nodes):
            self.workers.append(build_worker(
                engine=self.engine,
                network=self.network,
                registry=self.registry,
                node_id=i,
                brand=self.config.brand_of(i),
                cpus=self.config.cpus_per_node,
                quantum_ns=self.config.quantum_ns,
                specs=rewritten.specs,
                class_registry=rewritten.registry,
                dsm_config=self.config.dsm,
                choose_spawn_node=choose,
                static_gids=rewritten.static_gids,
                console=self.console,
                master_node=self.config.master_node,
                time_dilation=self.config.time_dilation,
                cost_profile=self.config.cost_profile,
                reliable_transport=self.config.reliable_transport,
            ))
        # Materialize the C_static holders on the master node; other
        # nodes fault them in on first access (§4.2).
        for w in self.workers:
            w.dsm.on_spawn_arrival = self._spawn_arrived
        master = self.workers[self.config.master_node]
        master.dsm.reserve_gids(rewritten.static_holder_count)
        for class_name, (gid, holder) in rewritten.static_gids.items():
            master.dsm.install_static_holder(class_name, gid, holder)
        self._main_thread: Optional[JThread] = None
        # Serving-workload manager (src/repro/serve); attached externally
        # like the oracle/fault injector, hooked here so late joiners get
        # the load feed too.
        self.serve = None
        # External attachments (oracle, invariant monitor, ...) register
        # here to instrument workers that join after they attached.
        self.worker_added_hooks: List[Any] = []
        self.ft = None
        if self.config.ft_enabled:
            from ..ft import FtManager
            self.ft = FtManager(self)
            self.ft.attach()
        self.locality = None
        if self.config.locality_enabled:
            from ..locality import LocalityManager
            self.locality = LocalityManager(self)
            self.locality.attach()
        # Policies attach after locality: they reuse its substrate
        # (directory redirects, grant installs), creating a knobs-off
        # LocalityManager themselves when none is configured.
        self.policy = None
        if self.config.policy_enabled:
            from ..policy import PolicyManager
            self.policy = PolicyManager(self)
            self.policy.attach()
        self.race = None
        if self.config.race_enabled:
            from ..race import RaceManager
            self.race = RaceManager(self)
            self.race.attach()
        # Telemetry last: it observes the other subsystems (ft recovery
        # spans need runtime.ft to exist before attach).
        self.obs = None
        if self.config.obs_enabled:
            from ..obs import ObsManager
            self.obs = ObsManager(self)
            self.obs.attach()
        # Tiered JIT attaches after obs so compile events hit metrics.
        self.jit = None
        if self.config.jit_enabled:
            from ..jit import JitManager
            self.jit = JitManager(self)
            self.jit.attach()

    # ------------------------------------------------------------------
    def _choose_spawn_node(self) -> int:
        class _LoadView:
            __slots__ = ("node_id", "load")

            def __init__(self, node_id: int, load: int) -> None:
                self.node_id = node_id
                self.load = load

        views = [
            _LoadView(w.node_id,
                      w.node.load + self._pending_spawns.get(w.node_id, 0))
            for w in self.workers
            if not w.dead
        ]
        node_id = self.scheduler.choose(views)
        self._pending_spawns[node_id] = self._pending_spawns.get(node_id, 0) + 1
        return node_id

    def _spawn_arrived(self, node_id: int) -> None:
        pending = self._pending_spawns.get(node_id, 0)
        if pending > 0:
            self._pending_spawns[node_id] = pending - 1

    def _proc_node_died(self, node_id: int) -> None:
        """A worker OS process died externally (proc backend): fail-stop
        the node, exactly like the fault injector's ``detach`` — the
        heartbeat detector and recovery then take over."""
        if not self.network.is_attached(node_id):
            return
        self.network.detach(node_id)
        self.workers[node_id].node.halt()

    def worker(self, node_id: int) -> WorkerNode:
        """The WorkerNode with the given id."""
        return self.workers[node_id]

    # ------------------------------------------------------------------
    # Dynamic join (§2): "During execution, new workers can join the
    # system and execute newly created threads."  Any machine with a
    # standard JVM can enlist — it receives the rewritten classes and
    # starts taking spawn placements; existing state is untouched
    # (it faults in shared objects on demand like any other node).
    # ------------------------------------------------------------------
    def _check_late_join(self) -> None:
        """Reject joins the active transport cannot honor, with a clear
        error instead of a silent sim-backend assumption."""
        if (self.config.transport_backend == "proc"
                and not self.config.proc_late_spawn):
            raise ConfigError(
                "dynamic join on the proc backend needs a late-forked "
                "worker process; set proc_late_spawn=True (default) or "
                "use transport_backend='sim'")

    def add_worker(self, brand: Optional[str] = None) -> WorkerNode:
        self._check_late_join()
        node_id = len(self.workers)
        worker = build_worker(
            engine=self.engine,
            network=self.network,
            registry=self.registry,
            node_id=node_id,
            brand=brand or self.config.brand_of(0),
            cpus=self.config.cpus_per_node,
            quantum_ns=self.config.quantum_ns,
            specs=self.rewritten.specs,
            class_registry=self.rewritten.registry,
            dsm_config=self.config.dsm,
            choose_spawn_node=self._choose_spawn_node,
            static_gids=self.rewritten.static_gids,
            console=self.console,
            master_node=self.config.master_node,
            time_dilation=self.config.time_dilation,
            cost_profile=self.config.cost_profile,
            reliable_transport=self.config.reliable_transport,
        )
        worker.dsm.on_spawn_arrival = self._spawn_arrived
        self.workers.append(worker)
        if self.ft is not None:
            self.ft.on_worker_added(worker)
        if self.locality is not None:
            self.locality.on_worker_added(worker)
        if self.policy is not None:
            self.policy.on_worker_added(worker)
        if self.race is not None:
            self.race.on_worker_added(worker)
        if self.obs is not None:
            self.obs.on_worker_added(worker)
        if self.jit is not None:
            self.jit.on_worker_added(worker)
        if self.serve is not None:
            self.serve.on_worker_added(worker)
        for hook in self.worker_added_hooks:
            hook(worker)
        return worker

    def schedule_join(self, at_ns: int, brand: Optional[str] = None) -> None:
        """Have a new worker join at a future simulated time.

        On the proc backend the join forks a real worker process mid-run
        (``ProcNetwork.attach``); with ``proc_late_spawn=False`` this
        raises :class:`ConfigError` up front instead of failing inside
        the event loop."""
        self._check_late_join()
        self.engine.schedule_at(at_ns, lambda: self.add_worker(brand))

    @property
    def main_thread(self) -> Optional[JThread]:
        """The application's main JThread, once started."""
        return self._main_thread

    # ------------------------------------------------------------------
    def start_main(self, args: Optional[List[Any]] = None) -> JThread:
        """Place the static main method on the master node."""
        main_class = self.rewritten.main_class
        if main_class is None:
            raise ValueError("application has no static main method")
        master = self.workers[self.config.master_node]
        self._main_thread = master.jvm.start_main(main_class, args)
        return self._main_thread

    def run(
        self,
        args: Optional[List[Any]] = None,
        max_events: Optional[int] = None,
        allow_blocked: bool = False,
    ) -> RunReport:
        """Execute main to completion and return the report."""
        if self._main_thread is None:
            self.start_main(args)
        wall_start = time.perf_counter()
        try:
            events = self.engine.run_until_idle(
                max_events=max_events or self.config.max_events
            )
        finally:
            wall_seconds = time.perf_counter() - wall_start
            # Disarm the module-level wire-codec probe before teardown
            # so it cannot observe into a dead registry (or leak into
            # the next run in this process).
            if self.obs is not None:
                self.obs.release_wire_timer()
            # Tear down the physical plane (proc backend) even on
            # failure, so no worker processes outlive the run.
            proc_summary = self.network.stop()
        for w in self.workers:
            if not w.dead:
                w.jvm.check_no_failures()
        blocked = [
            (w.node_id, t.name, t.block_reason)
            for w in self.workers
            if not w.dead
            for t in w.jvm.threads
            if t.state is StreamState.BLOCKED
        ]
        if blocked and not allow_blocked:
            raise DeadlockError(
                f"simulation quiesced with blocked threads: {blocked}"
            )
        if self.race is not None:
            # Analyze events still buffered on the accessor side (a
            # thread's trailing accesses never reach a release point).
            self.race.finalize()
        if self.jit is not None:
            self.jit.finalize_metrics()
        if self.obs is not None:
            self.obs.finalize()
        assert self._main_thread is not None
        return RunReport(
            simulated_ns=self.engine.now,
            console=list(self.console),
            result=self._main_thread.result,
            threads_run=sum(len(w.jvm.threads) for w in self.workers),
            net=self.network.stats,
            dsm_stats=[w.dsm.stats for w in self.workers],
            placements=self.scheduler.per_node_counts(),
            class_bytes=self.registry.total_bytes,
            node_busy_ns={w.node_id: w.node.busy_ns for w in self.workers},
            events=events,
            ft=None if self.ft is None else self.ft.report(),
            locality=(None if self.locality is None
                      else self.locality.report()),
            policy=None if self.policy is None else self.policy.report(),
            race=None if self.race is None else self.race.report(),
            obs=None if self.obs is None else self.obs.report(),
            jit=None if self.jit is None else self.jit.report(),
            backend=self.config.transport_backend,
            wall_seconds=wall_seconds,
            proc=proc_summary,
            flight_dumps=([] if self.obs is None
                          else list(self.obs.flight_dumps)),
        )


# ---------------------------------------------------------------------------
# One-shot helpers
# ---------------------------------------------------------------------------

def run_distributed(
    source: Optional[str] = None,
    classfiles: Optional[Sequence[ClassFile]] = None,
    config: Optional[RuntimeConfig] = None,
    args: Optional[List[Any]] = None,
    **config_kwargs,
) -> RunReport:
    """Compile (if needed), rewrite, and run on a simulated cluster."""
    if (source is None) == (classfiles is None):
        raise ValueError("pass exactly one of source / classfiles")
    if source is not None:
        classfiles = compile_source(source)
    if config is None:
        config = RuntimeConfig(**config_kwargs)
    elif config_kwargs:
        raise ValueError("pass either config or kwargs, not both")
    rewritten = rewrite_application(
        list(classfiles), master_node=config.master_node
    )
    return JavaSplitRuntime(rewritten, config).run(args=args)


def run_original(
    source: Optional[str] = None,
    classfiles: Optional[Sequence[ClassFile]] = None,
    brand: str = "sun",
    cpus: int = 2,
    main_class: Optional[str] = None,
    args: Optional[List[Any]] = None,
    max_events: int = 200_000_000,
    time_dilation: int = 1,
    cost_profile: str = "app",
) -> RunReport:
    """Run the *original* (un-instrumented) application on one simulated
    JVM — the baseline all the paper's speedups divide by."""
    if (source is None) == (classfiles is None):
        raise ValueError("pass exactly one of source / classfiles")
    if source is not None:
        classfiles = compile_source(source)
    classfiles = list(classfiles)
    engine = SimEngine()
    node = Node(
        engine, 0,
        get_brand(brand, cost_profile).scaled(time_dilation),
        num_cpus=cpus,
    )
    jvm = JVM(node)
    jvm.load_classes(bootstrap_classfiles())
    jvm.load_classes(classfiles)
    if main_class is None:
        for cf in classfiles:
            m = cf.methods.get("main")
            if m is not None and m.is_static:
                main_class = cf.name
                break
        if main_class is None:
            raise ValueError("no static main method found")
    thread = jvm.start_main(main_class, args)
    events = engine.run_until_idle(max_events=max_events)
    jvm.check_no_failures()
    blocked = [
        t for t in jvm.threads if t.state is StreamState.BLOCKED
    ]
    if blocked:
        raise DeadlockError(
            f"blocked threads remain: {[t.name for t in blocked]}"
        )
    return RunReport(
        simulated_ns=engine.now,
        console=list(jvm.output),
        result=thread.result,
        threads_run=len(jvm.threads),
        node_busy_ns={0: node.busy_ns},
        events=events,
    )
