"""Class registry: distributing rewritten classes to worker nodes (§2).

"The resulting rewritten classes are sent to one of the worker nodes
that starts executing the application's main method."  Rewriting and
class distribution happen before the timed execution in the paper's
methodology, so the registry loads classes at simulated t=0 and accounts
the shipped bytes in the run report rather than on the simulated wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..jvm.classfile import ClassFile
from ..jvm.jvm import JVM


@dataclass
class ClassShipment:
    """What one worker received: class count and bytes."""
    classes: int
    bytes: int


class ClassRegistry:
    """Holds the rewritten class files and installs them on worker JVMs."""

    def __init__(self, classfiles: Dict[str, ClassFile]) -> None:
        self.classfiles = dict(classfiles)
        self.total_bytes = sum(cf.wire_size() for cf in classfiles.values())

    def install(self, jvm: JVM) -> ClassShipment:
        """Load every rewritten class into one worker JVM."""
        jvm.load_classes(list(self.classfiles.values()))
        return ClassShipment(len(self.classfiles), self.total_bytes)

    def __len__(self) -> int:
        return len(self.classfiles)
