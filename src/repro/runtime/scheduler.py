"""Plug-in load balancing (§2).

"Each newly created application thread is placed for execution on one of
the worker nodes, according to a plug-in load balancing function.
Currently, we use the simplest load-balancing function, placing a new
thread on the least loaded worker."

Schedulers read node loads directly — a simulation shortcut for the load
reports a real deployment would gossip; the placement decisions are
identical as long as reports are fresh, and determinism is preserved.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Protocol, Sequence

import numpy as np

from ..sim.node import Node


class Scheduler(Protocol):
    """Plug-in load-balancing interface: choose(nodes) -> node id."""
    def choose(self, nodes: Sequence[Node]) -> int:
        """Pick the node id to place a new thread on."""
        ...


class LeastLoadedScheduler:
    """The paper's default: fewest live threads wins; ties go to the
    lowest node id (deterministic)."""

    def choose(self, nodes: Sequence[Node]) -> int:
        """Pick the node id to place a new thread on."""
        best = min(nodes, key=lambda n: (n.load, n.node_id))
        return best.node_id


class RoundRobinScheduler:
    """Cycles through the nodes in order."""
    def __init__(self) -> None:
        self._next = 0

    def choose(self, nodes: Sequence[Node]) -> int:
        """Pick the node id to place a new thread on."""
        node = nodes[self._next % len(nodes)]
        self._next += 1
        return node.node_id


class RandomScheduler:
    """Seeded random placement (useful as a load-balancing baseline)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def choose(self, nodes: Sequence[Node]) -> int:
        """Pick the node id to place a new thread on."""
        return nodes[int(self._rng.integers(0, len(nodes)))].node_id


class PinnedScheduler:
    """Places every thread on a fixed node (testing / ablation)."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def choose(self, nodes: Sequence[Node]) -> int:
        """Pick the node id to place a new thread on."""
        return self.node_id


SCHEDULERS: Dict[str, Callable[..., Scheduler]] = {
    "least-loaded": LeastLoadedScheduler,
    "round-robin": RoundRobinScheduler,
    "random": RandomScheduler,
}


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a scheduler by registry name."""
    try:
        factory = SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {sorted(SCHEDULERS)}"
        ) from None
    return factory(**kwargs)


class PlacementTracker:
    """Wraps a scheduler to record where threads were placed."""

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.placements: List[int] = []

    def choose(self, nodes: Sequence[Node]) -> int:
        """Pick the node id to place a new thread on."""
        node_id = self.inner.choose(nodes)
        self.placements.append(node_id)
        return node_id

    def per_node_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for node_id in self.placements:
            counts[node_id] = counts.get(node_id, 0) + 1
        return counts
