"""Worker-node assembly: simulated node + JVM + transport + DSM engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..dsm.protocol import DsmConfig, DsmEngine
from ..dsm.serialization import ClassSpec
from ..dsm.directory import ClassIdRegistry
from ..jvm.jvm import JVM
from ..net.simnet import SimNetwork
from ..net.transport import Transport
from ..rewriter.bootstrap import register_rewritten_natives
from ..sim.cost_model import get_brand
from ..sim.engine import SimEngine
from ..sim.node import Node
from .classreg import ClassRegistry


@dataclass
class WorkerNode:
    """One participating workstation."""

    node_id: int
    node: Node
    jvm: JVM
    transport: Transport
    dsm: DsmEngine
    # Declared failed by the fault-tolerance subsystem; the runtime
    # excludes dead workers from placement, failure checks and reports.
    dead: bool = False


def build_worker(
    engine: SimEngine,
    network: SimNetwork,
    registry: ClassRegistry,
    node_id: int,
    brand: str,
    cpus: int,
    quantum_ns: int,
    specs: Dict[str, ClassSpec],
    class_registry: ClassIdRegistry,
    dsm_config: DsmConfig,
    choose_spawn_node: Callable[[], int],
    static_gids: Dict[str, Tuple[int, str]],
    console: List[str],
    master_node: int,
    time_dilation: int = 1,
    cost_profile: str = "app",
    reliable_transport: bool = False,
) -> WorkerNode:
    """Bring up one worker: any machine with a standard JVM can join."""
    cost_model = get_brand(brand, cost_profile).scaled(time_dilation)
    node = Node(engine, node_id, cost_model, num_cpus=cpus, quantum_ns=quantum_ns)
    jvm = JVM(node)
    # The distributed execution runs only javasplit classes.
    jvm.object_class = "javasplit.Object"
    jvm.string_class = "javasplit.String"
    registry.install(jvm)
    register_rewritten_natives(jvm)
    transport = Transport(network, node_id, cost_model,
                          reliable=reliable_transport)
    dsm = DsmEngine(
        jvm,
        transport,
        specs=specs,
        class_registry=class_registry,
        config=dsm_config,
        choose_spawn_node=choose_spawn_node,
        static_gids=static_gids,
        console=console,
        master_node=master_node,
    )
    jvm.hooks = dsm
    return WorkerNode(node_id, node, jvm, transport, dsm)
