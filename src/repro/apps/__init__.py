"""The paper's benchmark applications (§6.2), written in MiniJava.

Each module exposes ``make_source(**params)`` (the program text) and a
``compile_*`` helper; the programs take their sizes as template
parameters so the benchmark harness can sweep them.
"""

from . import raytracer, series, tsp
from .raytracer import compile_raytracer
from .series import compile_series
from .tsp import compile_tsp

__all__ = [
    "raytracer", "series", "tsp",
    "compile_raytracer", "compile_series", "compile_tsp",
]
