"""3D Ray Tracer (§6.2) — renders a sphere scene at N×N pixels.

"The 3D Ray Tracer renders a scene containing 64 spheres at resolution
of N x N pixels.  The worker threads of this application independently
render different rows of the scene."  The paper notes Ray Tracer is its
*static-variable-heavy* workload, so the scene here lives in static
arrays of ``Scene`` — after rewriting, every scene access goes through a
``C_static`` holder object (§4.2), reproducing that access profile.

Rows are interleaved across threads (thread t renders rows t, t+k, ...),
each worker accumulates a JGF-style checksum into its own field, and
main sums the checksums after joining.
"""

from __future__ import annotations

from ..lang import compile_source

SOURCE_TEMPLATE = """
class Scene {{
    static double[] sx;
    static double[] sy;
    static double[] sz;
    static double[] sr;
    static double[] shade;
    static int count;
    static double lx;
    static double ly;
    static double lz;

    static void build(int nspheres, int seed) {{
        sx = new double[nspheres];
        sy = new double[nspheres];
        sz = new double[nspheres];
        sr = new double[nspheres];
        shade = new double[nspheres];
        count = nspheres;
        int s = seed;
        for (int i = 0; i < nspheres; i++) {{
            s = (s * 1103515245 + 12345) % 2147483648;
            if (s < 0) {{ s = -s; }}
            sx[i] = ((double) (s % 2000) - 1000.0) / 500.0;
            s = (s * 1103515245 + 12345) % 2147483648;
            if (s < 0) {{ s = -s; }}
            sy[i] = ((double) (s % 2000) - 1000.0) / 500.0;
            s = (s * 1103515245 + 12345) % 2147483648;
            if (s < 0) {{ s = -s; }}
            sz[i] = 1.0 + ((double) (s % 1000)) / 250.0;
            s = (s * 1103515245 + 12345) % 2147483648;
            if (s < 0) {{ s = -s; }}
            sr[i] = 0.15 + ((double) (s % 100)) / 400.0;
            s = (s * 1103515245 + 12345) % 2147483648;
            if (s < 0) {{ s = -s; }}
            shade[i] = 0.3 + ((double) (s % 100)) / 150.0;
        }}
        // Light direction (normalized-ish; exactness is irrelevant).
        lx = 0.577;
        ly = 0.577;
        lz = -0.577;
    }}
}}

class RtWorker extends Thread {{
    int width;
    int height;
    int yStart;
    int yStep;
    int checksum;

    RtWorker(int width, int height, int yStart, int yStep) {{
        this.width = width;
        this.height = height;
        this.yStart = yStart;
        this.yStep = yStep;
    }}

    // Trace one primary ray; returns pixel intensity in [0,1].
    double trace(double dx, double dy, double dz) {{
        double norm = Math.sqrt(dx * dx + dy * dy + dz * dz);
        dx = dx / norm;
        dy = dy / norm;
        dz = dz / norm;
        int hit = -1;
        double tBest = 1.0e30;
        int n = Scene.count;
        for (int i = 0; i < n; i++) {{
            // Ray origin is the camera at (0,0,-3).
            double ox = 0.0 - Scene.sx[i];
            double oy = 0.0 - Scene.sy[i];
            double oz = -3.0 - Scene.sz[i];
            double bq = ox * dx + oy * dy + oz * dz;
            double cq = ox * ox + oy * oy + oz * oz - Scene.sr[i] * Scene.sr[i];
            double disc = bq * bq - cq;
            if (disc > 0.0) {{
                double t = -bq - Math.sqrt(disc);
                if (t > 0.001 && t < tBest) {{ tBest = t; hit = i; }}
            }}
        }}
        if (hit < 0) {{ return 0.05; }}   // background
        // Lambertian shading at the hit point.
        double px = dx * tBest;
        double py = dy * tBest;
        double pz = -3.0 + dz * tBest;
        double nx = (px - Scene.sx[hit]) / Scene.sr[hit];
        double ny = (py - Scene.sy[hit]) / Scene.sr[hit];
        double nz = (pz - Scene.sz[hit]) / Scene.sr[hit];
        double diff = nx * Scene.lx + ny * Scene.ly + nz * Scene.lz;
        if (diff < 0.0) {{ diff = 0.0; }}
        double v = Scene.shade[hit] * (0.2 + 0.8 * diff);
        if (v > 1.0) {{ v = 1.0; }}
        return v;
    }}

    void run() {{
        int acc = 0;
        for (int y = yStart; y < height; y += yStep) {{
            for (int x = 0; x < width; x++) {{
                double fx = (2.0 * (double) x / (double) width) - 1.0;
                double fy = (2.0 * (double) y / (double) height) - 1.0;
                double v = trace(fx, fy, 3.0);
                acc += (int) (v * 255.0);
            }}
        }}
        checksum = acc;
    }}
}}

class RayTracer {{
    static int main() {{
        int n = {resolution};
        int nthreads = {n_threads};
        Scene.build({n_spheres}, {seed});
        RtWorker[] ts = new RtWorker[nthreads];
        for (int t = 0; t < nthreads; t++) {{
            ts[t] = new RtWorker(n, n, t, nthreads);
            ts[t].start();
        }}
        int total = 0;
        for (int t = 0; t < nthreads; t++) {{
            ts[t].join();
            total += ts[t].checksum;
        }}
        Sys.print("raytracer checksum = " + total);
        return total;
    }}
}}
"""

DEFAULT_RESOLUTION = 16
DEFAULT_SPHERES = 64
DEFAULT_SEED = 1234


def make_source(
    resolution: int = DEFAULT_RESOLUTION,
    n_threads: int = 2,
    n_spheres: int = DEFAULT_SPHERES,
    seed: int = DEFAULT_SEED,
) -> str:
    if resolution < n_threads:
        raise ValueError("need resolution >= n_threads (row distribution)")
    return SOURCE_TEMPLATE.format(
        resolution=resolution, n_threads=n_threads,
        n_spheres=n_spheres, seed=seed,
    )


def compile_raytracer(**kwargs):
    return compile_source(make_source(**kwargs))
