"""Series — Fourier coefficient analysis (Java Grande Forum suite).

Computes the first N Fourier coefficients of f(x) = (x+1)^x on [0,2]
by trapezoid integration; coefficient blocks are distributed across
threads exactly as in the JGF multithreaded kernel the paper runs (§6.2,
"the calculation is distributed between threads in a block manner").

The paper uses N=100000 on real hardware; our simulated runs default to
much smaller N (the *shape* of the scaling curve is what matters — per
coefficient the compute/communication ratio is unchanged).

Sharing profile: workers write disjoint blocks of the two shared result
arrays — a showcase for the DSM's multiple-writer twin/diff path.
"""

from __future__ import annotations

from ..lang import compile_source

SOURCE_TEMPLATE = """
class SeriesWorker extends Thread {{
    double[] a;
    double[] b;
    int lo;
    int hi;
    int steps;

    SeriesWorker(double[] a, double[] b, int lo, int hi, int steps) {{
        this.a = a;
        this.b = b;
        this.lo = lo;
        this.hi = hi;
        this.steps = steps;
    }}

    // f(x) = (x+1)^x = exp(x * ln(x+1))
    double f(double x) {{
        return Math.exp(x * Math.log(x + 1.0));
    }}

    // Trapezoid rule for integral of f(x)*cos(w x) or f(x)*sin(w x) on [0,2].
    double integrate(int k, int useSin) {{
        double pi = 3.141592653589793;
        double w = pi * (double) k;
        double dx = 2.0 / (double) steps;
        double first;
        double last;
        if (useSin == 0) {{
            first = f(0.0);
            last = f(2.0) * Math.cos(w * 2.0);
        }} else {{
            first = 0.0;
            last = f(2.0) * Math.sin(w * 2.0);
        }}
        double s = 0.5 * (first + last);
        for (int i = 1; i < steps; i++) {{
            double x = dx * (double) i;
            if (useSin == 0) {{
                s += f(x) * Math.cos(w * x);
            }} else {{
                s += f(x) * Math.sin(w * x);
            }}
        }}
        return s * dx * 0.5;   // 2/interval * 0.5 for [0,2]
    }}

    void run() {{
        for (int k = lo; k < hi; k++) {{
            a[k] = integrate(k, 0);
            b[k] = integrate(k, 1);
        }}
    }}
}}

class Series {{
    static int main() {{
        int n = {n_coeffs};
        int steps = {steps};
        int nthreads = {n_threads};
        double[] a = new double[n];
        double[] b = new double[n];
        SeriesWorker[] ts = new SeriesWorker[nthreads];
        for (int t = 0; t < nthreads; t++) {{
            int lo = t * n / nthreads;
            int hi = (t + 1) * n / nthreads;
            ts[t] = new SeriesWorker(a, b, lo, hi, steps);
            ts[t].start();
        }}
        for (int t = 0; t < nthreads; t++) {{ ts[t].join(); }}
        // JGF-style validation checksum.
        double check = 0.0;
        for (int k = 0; k < n; k++) {{
            check += Math.abs(a[k]) + Math.abs(b[k]);
        }}
        Sys.print("series checksum = " + check);
        return (int) (check * 1000.0);
    }}
}}
"""

DEFAULT_N = 48
DEFAULT_STEPS = 60


def make_source(
    n_coeffs: int = DEFAULT_N,
    steps: int = DEFAULT_STEPS,
    n_threads: int = 2,
) -> str:
    if n_threads < 1 or n_coeffs < n_threads:
        raise ValueError("need n_coeffs >= n_threads >= 1")
    return SOURCE_TEMPLATE.format(
        n_coeffs=n_coeffs, steps=steps, n_threads=n_threads
    )


def compile_series(**kwargs):
    return compile_source(make_source(**kwargs))
