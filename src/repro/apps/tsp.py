"""TSP — branch-and-bound Travelling Salesman (§6.2).

"The threads eliminate some permutations using the length of the minimal
path known so far.  A thread discovering a new minimal path propagates
its length to the rest of the threads.  During the execution the threads
also cooperate to ensure that no permutation is processed by more than
one thread by managing a global queue of jobs."

Implementation notes mirroring that description:

* the city distance matrix is generated in-program from a seeded LCG
  (deterministic, no external data) and shared read-only — TSP is the
  paper's array-access-heavy workload;
* the global job queue hands out (second-city) prefixes under a lock;
* the global bound is *read* unsynchronized — LRC makes the stale read
  safe for branch-and-bound (pruning with an old bound is merely less
  effective, never wrong) and fresh bounds arrive with each job-queue
  acquire — and *updated* under its lock, which is exactly how a thread
  "propagates its length to the rest of the threads" through the DSM.

The paper runs N=18 cities; simulated runs default far smaller.
"""

from __future__ import annotations

from ..lang import compile_source

SOURCE_TEMPLATE = """
class TspData {{
    int n;
    int[] dist;     // n*n, row-major

    TspData(int n, int seed) {{
        this.n = n;
        int[] xs = new int[n];
        int[] ys = new int[n];
        int s = seed;
        for (int i = 0; i < n; i++) {{
            s = (s * 1103515245 + 12345) % 2147483648;
            if (s < 0) {{ s = -s; }}
            xs[i] = s % 1000;
            s = (s * 1103515245 + 12345) % 2147483648;
            if (s < 0) {{ s = -s; }}
            ys[i] = s % 1000;
        }}
        dist = new int[n * n];
        for (int i = 0; i < n; i++) {{
            for (int j = 0; j < n; j++) {{
                int dx = xs[i] - xs[j];
                int dy = ys[i] - ys[j];
                double dd = Math.sqrt((double) (dx * dx + dy * dy));
                dist[i * n + j] = (int) dd;
            }}
        }}
    }}
}}

class MinTour {{
    int best;
    MinTour(int init) {{ best = init; }}
}}

class JobQueue {{
    int next;
    int total;
    JobQueue(int total) {{ this.total = total; next = 0; }}
}}

class TspWorker extends Thread {{
    TspData d;
    MinTour min;
    JobQueue q;
    int[] path;
    int[] visited;
    int n;
    int bound;

    TspWorker(TspData d, MinTour min, JobQueue q) {{
        this.d = d;
        this.min = min;
        this.q = q;
    }}

    void run() {{
        n = d.n;
        path = new int[n];
        visited = new int[n];
        while (true) {{
            int job;
            synchronized (q) {{
                if (q.next >= q.total) {{ job = -1; }}
                else {{ job = q.next; q.next += 1; }}
            }}
            if (job < 0) {{ break; }}
            // Jobs are depth-2 tour prefixes 0 -> second -> third, so the
            // queue holds (n-1)*(n-2) fine-grained work units.
            int second = job / (n - 2) + 1;
            int third = job % (n - 2) + 1;
            if (third >= second) {{ third = third + 1; }}
            for (int i = 0; i < n; i++) {{ visited[i] = 0; }}
            path[0] = 0;
            path[1] = second;
            path[2] = third;
            visited[0] = 1;
            visited[second] = 1;
            visited[third] = 1;
            bound = min.best;          // unsynchronized: stale is safe
            search(3, d.dist[second] + d.dist[second * n + third]);
        }}
    }}

    void search(int depth, int len) {{
        if (len >= bound) {{ return; }}
        if (depth == n) {{
            int total = len + d.dist[path[n - 1] * n];
            if (total < bound) {{
                synchronized (min) {{
                    if (total < min.best) {{ min.best = total; }}
                    bound = min.best;
                }}
            }}
            return;
        }}
        int last = path[depth - 1];
        for (int c = 1; c < n; c++) {{
            if (visited[c] == 0) {{
                int nl = len + d.dist[last * n + c];
                if (nl < bound) {{
                    path[depth] = c;
                    visited[c] = 1;
                    search(depth + 1, nl);
                    visited[c] = 0;
                }}
            }}
        }}
    }}
}}

class Tsp {{
    static int main() {{
        int n = {n_cities};
        int nthreads = {n_threads};
        TspData d = new TspData(n, {seed});
        MinTour min = new MinTour(1000000000);
        JobQueue q = new JobQueue((n - 1) * (n - 2));
        TspWorker[] ts = new TspWorker[nthreads];
        for (int t = 0; t < nthreads; t++) {{
            ts[t] = new TspWorker(d, min, q);
            ts[t].start();
        }}
        for (int t = 0; t < nthreads; t++) {{ ts[t].join(); }}
        Sys.print("tsp best tour = " + min.best);
        return min.best;
    }}
}}
"""

DEFAULT_CITIES = 9
DEFAULT_SEED = 42


def make_source(
    n_cities: int = DEFAULT_CITIES,
    n_threads: int = 2,
    seed: int = DEFAULT_SEED,
) -> str:
    if n_cities < 3:
        raise ValueError("need at least 3 cities")
    return SOURCE_TEMPLATE.format(
        n_cities=n_cities, n_threads=n_threads, seed=seed
    )


def compile_tsp(**kwargs):
    return compile_source(make_source(**kwargs))
