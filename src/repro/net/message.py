"""Typed network messages with wire-size accounting.

The paper's DSM exchanges messages "ranging from several bytes to several
thousands bytes" over standard Java sockets.  Communication cost in our
simulation is driven by message size, so every message carries an explicit
``size_bytes``; payloads that are real byte strings (serialized objects,
diffs) are accounted exactly, other payload fields are estimated with
:func:`estimate_size`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

# Fixed framing overhead per message: type tag, src/dst, length, seqno.
HEADER_BYTES = 40

# ---------------------------------------------------------------------------
# Canonical message-type registry.  Every frame that can cross the wire
# has its type named here so the wire codec (``net/wire.py``) and its
# round-trip tests can enumerate the full protocol surface.  Subsystem
# modules re-export the constants they own.
# ---------------------------------------------------------------------------

# Core MTS-HLRC coherence protocol (``repro.dsm.protocol``).
M_FETCH_REQ = "dsm.fetch_req"
M_FETCH_REPLY = "dsm.fetch_reply"
M_DIFF = "dsm.diff"
M_DIFF_ACK = "dsm.diff_ack"
M_LOCK_REQ = "dsm.lock_req"
M_LOCK_FWD = "dsm.lock_fwd"
M_TOKEN = "dsm.token"
M_OWNER_UPDATE = "dsm.owner_update"
M_SPAWN = "dsm.spawn"
M_CONSOLE = "dsm.console"

# Transport-level cumulative ack (ARQ reliable mode; never seq-numbered).
M_TRANSPORT_ACK = "transport.ack"

# Fault-tolerance subsystem (``repro.ft``): heartbeats, buddy
# replication, and the recovery-time diff redirect + notice burst.
M_FT_PING = "ft.ping"
M_FT_SUSPECT = "ft.suspect"
M_FT_REPL = "ft.repl"
M_FT_NOTICES = "ft.notices"
M_FT_REDIFF = "ft.rediff"
M_FT_REDIFF_ACK = "ft.rediff_ack"

# Adaptive-locality subsystem message types (``repro.locality``).  They
# live here — next to the framing constants — because the aggregate
# frame changes how sizes compose: an M_LOC_AGG carries several logical
# sub-frames but pays HEADER_BYTES only once.
M_LOC_HOME_UPDATE = "loc.home_update"   # lazy gid->home redirect gossip
M_LOC_FWD_DIFF = "loc.fwd_diff"         # old home forwards a diff entry
M_LOC_FWD_DIFF_ACK = "loc.fwd_diff_ack"  # new home acks a forwarded diff
M_LOC_BULK_FETCH = "loc.bulk_fetch"     # prefetcher: batched fetch request
M_LOC_BULK_REPLY = "loc.bulk_reply"     # prefetcher: batched unit reply
M_LOC_AGG = "loc.agg"                   # aggregator: coalesced frame

# Adaptive coherence policies (``repro.policy``): per-unit protocol
# switching driven by the locality profiler's sharing-pattern
# classifier.  The push carries a fresh full copy of one unit from its
# home to a stable reader (write-update policy); the broadcast is the
# same copy fanned out to every live node (read-mostly policy).  The
# migratory policy adds no type of its own — its ownership grant rides
# the existing lock token (``pol_grant`` payload field on M_TOKEN).
M_POL_PUSH = "pol.push"
M_POL_BCAST = "pol.bcast"

# Race-detection subsystem (``repro.race``): standalone access-event
# batch shipped to a unit's home at a release point when no diff to that
# home could carry it as a piggyback.
M_RACE_SYNC = "race.sync"

# Telemetry subsystem (``repro.obs``): payload key carrying the causal
# span id of the protocol transaction a message belongs to.  Only ever
# present when ``RuntimeConfig.obs_spans`` is on; locality forwarding
# preserves it (it is not a transport-owned field, cf. ``_strip``).
OBS_SPAN_KEY = "__obs_span__"

#: Every message type that can appear on the wire, for exhaustive
#: codec round-trip coverage (``tests/test_wire.py`` fails if a type is
#: added to the protocol without being registered here).
ALL_MESSAGE_TYPES = (
    M_FETCH_REQ, M_FETCH_REPLY, M_DIFF, M_DIFF_ACK, M_LOCK_REQ,
    M_LOCK_FWD, M_TOKEN, M_OWNER_UPDATE, M_SPAWN, M_CONSOLE,
    M_TRANSPORT_ACK,
    M_FT_PING, M_FT_SUSPECT, M_FT_REPL, M_FT_NOTICES, M_FT_REDIFF,
    M_FT_REDIFF_ACK,
    M_LOC_HOME_UPDATE, M_LOC_FWD_DIFF, M_LOC_FWD_DIFF_ACK,
    M_LOC_BULK_FETCH, M_LOC_BULK_REPLY, M_LOC_AGG,
    M_POL_PUSH, M_POL_BCAST,
    M_RACE_SYNC,
)

_msg_counter = itertools.count()


def estimate_size(value: Any) -> int:
    """Estimate the wire size of a payload value, in bytes.

    Integers and floats are billed at 8 bytes (the DSM ships 64-bit global
    ids and doubles), booleans/None at 1, strings and byte strings at their
    encoded length plus a 4-byte length prefix, and containers recursively.
    """
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int) or isinstance(value, float):
        return 8
    if isinstance(value, bytes):
        return 4 + len(value)
    if isinstance(value, str):
        return 4 + len(value.encode("utf-8"))
    if isinstance(value, (list, tuple, set, frozenset)):
        return 4 + sum(estimate_size(v) for v in value)
    if isinstance(value, dict):
        return 4 + sum(
            estimate_size(k) + estimate_size(v) for k, v in value.items()
        )
    if hasattr(value, "wire_size"):
        return int(value.wire_size())
    raise TypeError(f"cannot estimate wire size of {type(value).__name__}")


@dataclass
class Message:
    """One network message.

    ``payload`` is a dict of named fields; the DSM layers put serialized
    byte strings in it so sizes are exact where it matters.
    """

    msg_type: str
    src: int
    dst: int
    payload: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 0
    msg_id: int = field(default_factory=lambda: next(_msg_counter))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            self.size_bytes = HEADER_BYTES + estimate_size(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.msg_type}, {self.src}->{self.dst}, "
            f"{self.size_bytes}B, id={self.msg_id})"
        )
