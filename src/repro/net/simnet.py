"""Simulated IP network.

Models the paper's testbed interconnect (100 Mbit Ethernet between
workstations) as point-to-point delivery with

    one-way latency = (fixed(src) + fixed(dst)) / 2  +  size * per_byte

where the fixed term and per-byte term come from the endpoints' JVM-brand
cost models (the paper's Table 3 shows the communication stack cost differs
between JVM brands).  The per-byte term of a transfer is the slower of the
two endpoints'.

Delivery is reliable.  By default it is also FIFO per directed link; a
seeded jitter mode can reorder raw deliveries to exercise the transport
layer's sequence-number reassembly (failure-injection tests).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..sim.cost_model import COMM_FIXED_NS, COMM_PER_BYTE_NS, CostModel
from ..sim.engine import SimEngine
from .message import Message
from .stats import NetStats

Handler = Callable[[Message], None]


class SimNetwork:
    """Point-to-point simulated network between registered endpoints."""

    def __init__(
        self,
        engine: SimEngine,
        jitter_ns: int = 0,
        seed: int = 0,
    ) -> None:
        self.engine = engine
        self.stats = NetStats()
        self._handlers: Dict[int, Handler] = {}
        self._cost_models: Dict[int, CostModel] = {}
        self._last_delivery: Dict[tuple[int, int], int] = {}
        self._jitter_ns = jitter_ns
        self._rng = np.random.default_rng(seed)
        # Frames accepted but not yet delivered (or dropped), per type.
        # Recovery uses this to wait out in-flight lock tokens before
        # deciding a token was lost with a dead node.
        self._in_flight: Dict[str, int] = {}

    def in_flight(self, msg_type: str) -> int:
        """Number of frames of one type currently on the wire."""
        return self._in_flight.get(msg_type, 0)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def attach(self, node_id: int, cost_model: CostModel, handler: Handler) -> None:
        """Attach an endpoint: its brand cost model and delivery callback."""
        if node_id in self._handlers:
            raise ValueError(f"node {node_id} already attached")
        self._handlers[node_id] = handler
        self._cost_models[node_id] = cost_model

    def detach(self, node_id: int) -> None:
        """Remove an endpoint; in-flight messages to it are dropped."""
        self._handlers.pop(node_id, None)
        self._cost_models.pop(node_id, None)

    def is_attached(self, node_id: int) -> bool:
        """True while the endpoint is registered with the network."""
        return node_id in self._handlers

    @property
    def node_ids(self) -> list[int]:
        """The attached endpoints, sorted."""
        return sorted(self._handlers)

    # ------------------------------------------------------------------
    # Latency model
    # ------------------------------------------------------------------
    def latency_ns(self, src: int, dst: int, size_bytes: int) -> int:
        """One-way latency for a message of the given size."""
        cm_src = self._cost_models[src]
        cm_dst = self._cost_models[dst]
        fixed = (cm_src[COMM_FIXED_NS] + cm_dst[COMM_FIXED_NS]) // 2
        per_byte = max(cm_src[COMM_PER_BYTE_NS], cm_dst[COMM_PER_BYTE_NS])
        return fixed + size_bytes * per_byte

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, msg: Message) -> None:
        """Send a message; the destination handler fires after the modelled
        latency.  Same-node sends are delivered with a minimal loopback
        delay (still asynchronously, to keep handler re-entrancy simple).
        """
        if msg.dst not in self._handlers:
            raise KeyError(f"no endpoint attached for node {msg.dst}")
        if msg.src not in self._cost_models:
            raise KeyError(f"no endpoint attached for node {msg.src}")
        self.stats.record(msg)
        self._in_flight[msg.msg_type] = self._in_flight.get(msg.msg_type, 0) + 1
        if msg.src == msg.dst:
            delay = 500  # loopback
        else:
            delay = self.latency_ns(msg.src, msg.dst, msg.size_bytes)
            if self._jitter_ns:
                delay += int(self._rng.integers(0, self._jitter_ns))
        self._outbound(msg)
        self.engine.schedule(delay, lambda: self._deliver(msg))

    def _deliver(self, msg: Message) -> None:
        left = self._in_flight.get(msg.msg_type, 0) - 1
        if left > 0:
            self._in_flight[msg.msg_type] = left
        else:
            self._in_flight.pop(msg.msg_type, None)
        handler = self._handlers.get(msg.dst)
        if handler is None:
            # Endpoint detached while the message was in flight: drop it,
            # but keep the accounting consistent (the wire carried it).
            self._discard(msg)
            self.stats.dropped += 1
            return
        handler(self._resolve(msg))

    # ------------------------------------------------------------------
    # Physical-plane hooks.  The simulated network delivers the very
    # object that was sent; a real transport plane (``repro.net.procnet``)
    # overrides these to push every accepted frame onto actual sockets at
    # send time and to substitute the wire-decoded copy at delivery time.
    # All three are no-ops here, keeping sim behaviour byte-identical.
    # ------------------------------------------------------------------
    def _outbound(self, msg: Message) -> None:
        """Called once per accepted frame, after accounting."""

    def _resolve(self, msg: Message) -> Message:
        """Map an in-flight frame to the instance to deliver."""
        return msg

    def _discard(self, msg: Message) -> None:
        """Called instead of :meth:`_resolve` for dropped frames."""

    def stop(self) -> Optional[dict]:
        """Shut down the physical plane, returning its summary.  The
        simulated network has none; the proc backend overrides this."""
        return None
