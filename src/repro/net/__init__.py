"""Network substrate: simulated wire plus a real multiprocess plane.

Stands in for the paper's 100 Mbit Ethernet + Java sockets: typed messages
with exact wire-size accounting (:mod:`repro.net.message`), a latency/
bandwidth network model (:mod:`repro.net.simnet`), reliable ordered
endpoints (:mod:`repro.net.transport`) and traffic statistics
(:mod:`repro.net.stats`).  The ``proc`` backend adds a versioned binary
wire format (:mod:`repro.net.wire`) and a one-OS-process-per-node
physical plane over real sockets (:mod:`repro.net.procnet`).
"""

from .message import ALL_MESSAGE_TYPES, HEADER_BYTES, Message, estimate_size
from .procnet import ProcNetwork
from .simnet import SimNetwork
from .stats import NetStats
from .transport import Transport, TransportStats
from .wire import (FrameDecoder, WireError, decode_frame, encode_frame,
                   frame_with_prefix)

__all__ = [
    "ALL_MESSAGE_TYPES",
    "HEADER_BYTES",
    "Message",
    "estimate_size",
    "SimNetwork",
    "ProcNetwork",
    "NetStats",
    "Transport",
    "TransportStats",
    "WireError",
    "FrameDecoder",
    "encode_frame",
    "decode_frame",
    "frame_with_prefix",
]
