"""Simulated IP network substrate.

Stands in for the paper's 100 Mbit Ethernet + Java sockets: typed messages
with exact wire-size accounting (:mod:`repro.net.message`), a latency/
bandwidth network model (:mod:`repro.net.simnet`), reliable ordered
endpoints (:mod:`repro.net.transport`) and traffic statistics
(:mod:`repro.net.stats`).
"""

from .message import HEADER_BYTES, Message, estimate_size
from .simnet import SimNetwork
from .stats import NetStats
from .transport import Transport, TransportStats

__all__ = [
    "HEADER_BYTES",
    "Message",
    "estimate_size",
    "SimNetwork",
    "NetStats",
    "Transport",
    "TransportStats",
]
