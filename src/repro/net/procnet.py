"""Real-parallel multiprocess transport plane.

The ``proc`` backend runs one OS process per simulated node and pushes
every protocol frame through real sockets (Unix-domain by default, TCP
optional), while the *control plane* — the event schedule, the JVM
interpreters, the DSM protocol — stays in the master process exactly as
the ``sim`` backend runs it.  The division of labour:

- **Master** (this process): owns the :class:`~repro.sim.engine.SimEngine`
  and all protocol logic.  Every frame accepted by the network is encoded
  with the versioned wire codec (``repro.net.wire``) and relayed to the
  *source* node's worker process.
- **Worker** (one per node, :func:`worker_main`): a selector-based event
  loop that owns that node's listening socket.  It forwards relayed
  frames to the destination node's worker over a real peer-to-peer
  socket; frames arriving on its listening socket are handed back to the
  master over its control connection.
- At delivery time the master waits for the physical copy, verifies it
  is byte-identical to what was sent, and dispatches the *decoded*
  message — so every payload a handler sees on this backend has survived
  a real encode → socket → decode round trip.

Delivery *decisions* (ordering, latency, drops on detach) are made purely
from simulator state, which is what makes the backend differentially
testable: with identical configs, ``sim`` and ``proc`` produce identical
schedules, identical per-type message counts, and identical final heaps.
What ``proc`` adds is genuine process-level failure semantics —
``detach`` SIGKILLs the worker process, so the fault injector's
``--kill NODE@TIME`` exercises recovery against real process death, and
an externally killed worker is detected (control-socket EOF / waitpid)
and surfaced to the runtime via ``on_proc_death``.

If a relay becomes impossible because one endpoint's process is dead,
the master decodes its own encoded copy instead (counted as
``wire_fallback``) so delivery semantics never diverge from ``sim``.
"""

from __future__ import annotations

import multiprocessing
import os
import selectors
import shutil
import signal
import socket
import tempfile
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..obs.metrics import Histogram
from ..sim.engine import SimEngine
from .message import Message
from .simnet import SimNetwork
from .wire import (FrameDecoder, WireError, decode_frame, encode_frame,
                   frame_with_prefix, peek_msg_id, set_wire_timer)

# Control-plane frame types (master <-> worker only; never simulated).
CTRL_HELLO = "proc.hello"
CTRL_PEERS = "proc.peers"
CTRL_RELAY = "proc.relay"
CTRL_ARRIVED = "proc.arrived"
CTRL_SHUTDOWN = "proc.shutdown"
CTRL_STATS = "proc.stats"
# Telemetry-plane frames (only when obs knobs are on; msg_id 0 like all
# ctrl traffic, so they never perturb the sim schedule).
CTRL_FLIGHT = "proc.flight"
CTRL_DELTA = "proc.delta"

#: Master's node id on the control plane (never a simulated node).
MASTER_ID = -1

_RECV_CHUNK = 1 << 16


def _ctrl_msg(msg_type: str, src: int, payload: Dict[str, Any]) -> Message:
    """A control-plane frame.  ``msg_id=0`` is passed explicitly so the
    master's construction of control frames never advances the global
    message counter — keeping its evolution identical to the sim backend.
    """
    return Message(msg_type, src, MASTER_ID, payload, size_bytes=1, msg_id=0)


def _listen_socket(kind: str, path: Optional[str]) -> socket.socket:
    if kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(path)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
    sock.listen(64)
    return sock


def _dial(kind: str, addr: Any, timeout_s: float = 10.0) -> socket.socket:
    if kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        target: Any = addr
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        target = (addr[0], int(addr[1]))
    sock.settimeout(timeout_s)
    try:
        sock.connect(target)
    except OSError:
        sock.close()
        raise
    sock.settimeout(None)
    return sock


def _flush(sock: socket.socket, buf: bytearray) -> bool:
    """Write as much of ``buf`` as the socket accepts.  Returns False if
    the connection is gone (buffer is discarded)."""
    while buf:
        try:
            sent = sock.send(bytes(buf[:262144]))
        except (BlockingIOError, InterruptedError):
            return True
        except OSError:
            buf.clear()
            return False
        del buf[:sent]
    return True


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------

class _Peer:
    """One data-plane connection inside a worker (accepted or dialed)."""

    __slots__ = ("sock", "outbuf", "decoder")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.outbuf = bytearray()
        self.decoder = FrameDecoder()


def worker_main(node_id: int, kind: str, ctrl_addr: Any,
                data_addr: Optional[str],
                obs: Optional[Dict[str, Any]] = None) -> None:
    """Entry point of one node's worker process.

    Connects back to the master's control listener, binds this node's
    data listener, then loops: relay requests from the master go out to
    peer sockets, frames arriving from peers go back to the master.
    Runs until a ``proc.shutdown`` frame or control-socket EOF.

    ``obs`` (from the master's ``obs_plane``) switches on the wall-clock
    telemetry the worker collects locally: a flight-recorder ring
    (``flight``), event-loop lag + codec histograms (``wallclock``), and
    periodic ``CTRL_DELTA`` shipments (``live`` every ``period_s``).
    With ``obs=None`` the loop is byte-identical to the plain backend.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        ctrl = _dial(kind, ctrl_addr)
    except OSError:
        return
    listener = _listen_socket(kind, data_addr)
    my_addr: Any = data_addr if kind == "unix" else listener.getsockname()

    sel = selectors.DefaultSelector()
    ctrl.setblocking(False)
    listener.setblocking(False)
    ctrl_out = bytearray()
    ctrl_dec = FrameDecoder()
    peers_addr: Dict[int, Any] = {}
    conns: Dict[socket.socket, _Peer] = {}
    dialed: Dict[int, socket.socket] = {}
    stats = {"node": node_id, "frames_relayed": 0, "frames_received": 0,
             "bytes_out": 0, "bytes_in": 0, "relay_failures": 0}
    running = True

    # -- wall-clock telemetry (all off when obs is None) ----------------
    obs = obs or {}
    wallclock = bool(obs.get("wallclock"))
    flight_on = bool(obs.get("flight"))
    live_on = bool(obs.get("live"))
    obs_on = wallclock or flight_on or live_on
    flight_cap = int(obs.get("flight_events", 256))
    period_s = float(obs.get("period_s", 0.25))
    flight: Deque[Dict[str, Any]] = deque(maxlen=flight_cap)
    flight_pending: Deque[Dict[str, Any]] = deque(maxlen=4 * flight_cap)
    # Latest sim timestamp seen from the master (stamped on CTRL_RELAY
    # when the flight knob is on) — pairs every event with both clocks.
    last_sim = [0]
    hists: Dict[str, Histogram] = {}
    if wallclock:
        hists["loop_lag_ns"] = Histogram()
        hists["wire_encode_ns"] = Histogram()
        hists["wire_decode_ns"] = Histogram()
        set_wire_timer(lambda op, ns: hists[f"wire_{op}_ns"].observe(ns))

    def flight_note(event_kind: str, **detail: Any) -> None:
        event: Dict[str, Any] = {
            "kind": event_kind,
            "wall_ns": time.monotonic_ns(),
            "sim_ns": last_sim[0],
        }
        if detail:
            event.update(detail)
        flight.append(event)
        flight_pending.append(event)

    def flush_obs() -> None:
        """Ship flight events and (when live) a cumulative stats delta."""
        if flight_on and flight_pending:
            ctrl_send(CTRL_FLIGHT, {"events": list(flight_pending)})
            flight_pending.clear()
        if live_on:
            ctrl_send(CTRL_DELTA, {
                "stats": dict(stats),
                "hists": {name: h.as_dict() for name, h in hists.items()
                          if h.count},
            })

    def interest(sock: socket.socket, outbuf: bytearray) -> None:
        events = selectors.EVENT_READ
        if outbuf:
            events |= selectors.EVENT_WRITE
        try:
            sel.modify(sock, events)
        except KeyError:
            sel.register(sock, events)

    def ctrl_send(msg_type: str, payload: Dict[str, Any]) -> None:
        frame = encode_frame(_ctrl_msg(msg_type, node_id, payload))
        ctrl_out.extend(frame_with_prefix(frame))
        interest(ctrl, ctrl_out)

    def drop_peer(sock: socket.socket) -> None:
        conns.pop(sock, None)
        for nid, s in list(dialed.items()):
            if s is sock:
                del dialed[nid]
        try:
            sel.unregister(sock)
        except (KeyError, ValueError):
            pass
        sock.close()

    def relay(dst: int, frame: bytes) -> None:
        sock = dialed.get(dst)
        if sock is None:
            addr = peers_addr.get(dst)
            if addr is None:
                stats["relay_failures"] += 1
                if flight_on:
                    flight_note("relay.fail", dst=dst, why="no-addr")
                return
            try:
                sock = _dial(kind, addr)
            except OSError:
                stats["relay_failures"] += 1
                if flight_on:
                    flight_note("relay.fail", dst=dst, why="dial")
                return
            sock.setblocking(False)
            dialed[dst] = sock
            conns[sock] = _Peer(sock)
            sel.register(sock, selectors.EVENT_READ)
        peer = conns[sock]
        peer.outbuf.extend(frame_with_prefix(frame))
        stats["frames_relayed"] += 1
        stats["bytes_out"] += len(frame) + 4
        if flight_on:
            flight_note("relay", dst=dst, bytes=len(frame) + 4)
        if not _flush(sock, peer.outbuf):
            stats["relay_failures"] += 1
            if flight_on:
                flight_note("relay.fail", dst=dst, why="send")
            drop_peer(sock)
            return
        interest(sock, peer.outbuf)

    def on_ctrl_frame(raw: bytes) -> None:
        nonlocal running
        msg = decode_frame(raw)
        if msg.msg_type == CTRL_RELAY:
            sim = msg.payload.get("sim")
            if sim is not None:
                last_sim[0] = sim
            relay(msg.payload["dst"], msg.payload["frame"])
        elif msg.msg_type == CTRL_PEERS:
            peers_addr.update(msg.payload["peers"])
        elif msg.msg_type == CTRL_SHUTDOWN:
            if flight_on:
                flight_note("shutdown")
            running = False

    sel.register(ctrl, selectors.EVENT_READ)
    sel.register(listener, selectors.EVENT_READ)
    ctrl_send(CTRL_HELLO,
              {"node": node_id, "addr": my_addr, "pid": os.getpid()})

    next_flush = time.monotonic() + period_s
    try:
        while running:
            timeout = 1.0
            if obs_on:
                now = time.monotonic()
                if now >= next_flush:
                    flush_obs()
                    next_flush = now + period_s
                timeout = min(1.0, max(0.001, next_flush - now))
            ready = sel.select(timeout=timeout)
            t_iter = time.monotonic_ns() if (wallclock and ready) else 0
            for key, events in ready:
                sock = key.fileobj
                if sock is listener:
                    try:
                        accepted, _ = listener.accept()
                    except OSError:
                        continue
                    accepted.setblocking(False)
                    conns[accepted] = _Peer(accepted)
                    sel.register(accepted, selectors.EVENT_READ)
                    continue
                if sock is ctrl:
                    if events & selectors.EVENT_WRITE:
                        if not _flush(ctrl, ctrl_out):
                            running = False
                            break
                        interest(ctrl, ctrl_out)
                    if events & selectors.EVENT_READ:
                        try:
                            data = ctrl.recv(_RECV_CHUNK)
                        except (BlockingIOError, InterruptedError):
                            continue
                        except OSError:
                            data = b""
                        if not data:
                            running = False  # master is gone
                            break
                        for raw in ctrl_dec.feed(data):
                            on_ctrl_frame(raw)
                    continue
                peer = conns.get(sock)
                if peer is None:
                    continue
                if events & selectors.EVENT_WRITE:
                    if not _flush(sock, peer.outbuf):
                        drop_peer(sock)
                        continue
                    interest(sock, peer.outbuf)
                if events & selectors.EVENT_READ:
                    try:
                        data = sock.recv(_RECV_CHUNK)
                    except (BlockingIOError, InterruptedError):
                        continue
                    except OSError:
                        data = b""
                    if not data:
                        drop_peer(sock)
                        continue
                    for raw in peer.decoder.feed(data):
                        stats["frames_received"] += 1
                        stats["bytes_in"] += len(raw) + 4
                        if flight_on:
                            flight_note("recv", bytes=len(raw) + 4)
                        ctrl_send(CTRL_ARRIVED, {"frame": raw})
            if t_iter:
                hists["loop_lag_ns"].observe(time.monotonic_ns() - t_iter)
    except Exception:  # pragma: no cover - master detects death via EOF
        running = False

    # Graceful drain: push pending peer frames and the stats reply out
    # before exiting, bounded so a wedged peer cannot hang shutdown.
    if obs_on:
        flush_obs()
    stats_payload: Dict[str, Any] = dict(stats)
    if wallclock:
        stats_payload["hists"] = {name: h.as_dict()
                                  for name, h in hists.items() if h.count}
    ctrl_send(CTRL_STATS, stats_payload)
    deadline = time.monotonic() + 5.0
    pending: List[Tuple[socket.socket, bytearray]] = (
        [(ctrl, ctrl_out)] + [(p.sock, p.outbuf) for p in conns.values()])
    while time.monotonic() < deadline and any(b for _, b in pending):
        for sock, buf in pending:
            if buf:
                _flush(sock, buf)
        if any(b for _, b in pending):
            time.sleep(0.005)
    for sock in list(conns):
        sock.close()
    listener.close()
    ctrl.close()
    sel.close()
    if kind == "unix" and data_addr:
        try:
            os.unlink(data_addr)
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Master side
# ---------------------------------------------------------------------------

class ProcNetwork(SimNetwork):
    """The simulated network with a real multiprocess wire plane.

    Subclasses :class:`SimNetwork` and overrides only its three
    physical-plane hooks, so timing, ordering, accounting, and the jitter
    RNG stream are untouched — a run on this backend follows the exact
    event schedule of the sim backend while every frame crosses a real
    socket between worker processes.
    """

    def __init__(
        self,
        engine: SimEngine,
        jitter_ns: int = 0,
        seed: int = 0,
        socket_kind: str = "unix",
        wait_timeout_s: float = 30.0,
        start_method: Optional[str] = None,
    ) -> None:
        super().__init__(engine, jitter_ns=jitter_ns, seed=seed)
        if socket_kind not in ("unix", "tcp"):
            raise ValueError(f"unknown socket kind {socket_kind!r}")
        self.socket_kind = socket_kind
        self.wait_timeout_s = wait_timeout_s
        self.start_method = start_method
        # Runtime hook: called (from an engine event) when a worker
        # process is found dead without the simulator having detached it
        # — i.e. genuine external process death (SIGKILL from outside).
        self.on_proc_death: Optional[Callable[[int], None]] = None
        # -- telemetry plane (armed by ObsManager.attach) --------------
        # Knob dict forked into every worker ({"wallclock", "flight",
        # "flight_events", "live", "period_s"}); None = all off.
        self.obs_plane: Optional[Dict[str, Any]] = None
        # Master-side wall-clock registry (obs.wallclock.WallClockStats).
        self.wallclock: Optional[Any] = None
        # Called synchronously with (reason, detail) on external worker
        # death or wire corruption/timeouts to write a flight postmortem.
        self.on_flight_dump: Optional[
            Callable[[str, Dict[str, Any]], None]] = None
        # node -> ring of flight events shipped up from its worker.
        self._flight_mirror: Dict[int, Deque[Dict[str, Any]]] = {}
        # msg_id -> FIFO of relay-send timestamps (RTT measurement).
        self._relay_t0: Dict[int, Deque[int]] = {}
        self._stopping = False
        self._started = False
        self._stopped = False
        self._tmpdir: Optional[str] = None
        self._listener: Optional[socket.socket] = None
        self._ctrl_addr: Any = None
        self._procs: Dict[int, multiprocessing.process.BaseProcess] = {}
        self._addrs: Dict[int, Any] = {}
        self._ctrl: Dict[int, Optional[socket.socket]] = {}
        self._decoders: Dict[int, FrameDecoder] = {}
        self._dead_procs: set = set()
        self._worker_stats: Dict[int, Dict[str, Any]] = {}
        # msg_id -> [encoded frame, outstanding deliveries, relays afloat]
        self._sent: Dict[int, List[Any]] = {}
        # msg_id -> FIFO of physically arrived copies (bytes)
        self._arrived: Dict[int, Deque[bytes]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Fork one worker per attached node and complete the handshake.

        Idempotent; called lazily on the first outbound frame if the
        runtime has not called it explicitly.  All workers are forked
        *before* any control connection is accepted, so no worker
        inherits another's accepted-connection descriptor (which would
        defeat EOF-based death detection).
        """
        if self._started:
            return
        if self._stopped:
            raise RuntimeError("ProcNetwork already stopped")
        self._started = True
        nodes = self.node_ids
        self._tmpdir = tempfile.mkdtemp(prefix="repro-proc-")
        if self.socket_kind == "unix":
            ctrl_addr: Any = os.path.join(self._tmpdir, "ctrl.sock")
        else:
            ctrl_addr = None
        self._listener = _listen_socket(self.socket_kind, ctrl_addr)
        if self.socket_kind == "tcp":
            ctrl_addr = self._listener.getsockname()
        self._ctrl_addr = ctrl_addr
        for node in nodes:
            self._fork_worker(node)
        self._handshake(nodes)

    def _fork_worker(self, node: int) -> None:
        data_addr = (os.path.join(self._tmpdir, f"n{node}.sock")
                     if self.socket_kind == "unix" else None)
        proc = self._mp_context().Process(
            target=worker_main,
            args=(node, self.socket_kind, self._ctrl_addr, data_addr,
                  self.obs_plane),
            daemon=True,
            name=f"repro-node-{node}",
        )
        proc.start()
        self._procs[node] = proc

    # ------------------------------------------------------------------
    # Dynamic join: a node attached after start() gets a late-forked
    # worker process, handshaken on the still-open control listener and
    # announced to the existing workers via an incremental CTRL_PEERS
    # update (they dial new peers lazily).  With the "fork" start method
    # the late worker inherits the master's already-accepted control
    # descriptors, which can delay EOF-based death detection of *other*
    # workers — but `_pump` also polls waitpid per drain, and simulator-
    # driven kills go through `detach` (explicit `_dead_procs` entry),
    # so failure detection is unaffected.
    # ------------------------------------------------------------------
    def attach(self, node_id: int, cost_model, handler) -> None:
        super().attach(node_id, cost_model, handler)
        if self._started and not self._stopped and node_id not in self._procs:
            self._fork_worker(node_id)
            self._handshake([node_id])

    def _mp_context(self):
        method = self.start_method
        if method is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else "spawn"
        return multiprocessing.get_context(method)

    def _handshake(self, nodes: List[int]) -> None:
        addrs: Dict[int, Any] = {}
        self._listener.settimeout(self.wait_timeout_s)
        for _ in nodes:
            try:
                conn, _ = self._listener.accept()
            except (socket.timeout, OSError) as exc:
                raise WireError("worker handshake timed out") from exc
            conn.settimeout(self.wait_timeout_s)
            decoder = FrameDecoder()
            hello: Optional[Message] = None
            while hello is None:
                data = conn.recv(_RECV_CHUNK)
                if not data:
                    raise WireError("worker died during handshake")
                for raw in decoder.feed(data):
                    msg = decode_frame(raw)
                    if msg.msg_type == CTRL_HELLO:
                        hello = msg
                        break
            node = hello.payload["node"]
            self._ctrl[node] = conn
            self._decoders[node] = decoder
            addrs[node] = hello.payload["addr"]
        unknown = set(addrs) - set(nodes)
        if unknown or set(addrs) != set(nodes):
            raise WireError(f"handshake mismatch: got {sorted(addrs)}, "
                            f"expected {nodes}")
        self._addrs.update(addrs)
        # Fresh nodes learn the full peer map; everyone already running
        # learns just the newcomers (workers merge incrementally).
        for node in nodes:
            self._ctrl_send(node, CTRL_PEERS, {"peers": dict(self._addrs)})
        for other, conn in list(self._ctrl.items()):
            if other not in addrs and conn is not None:
                self._ctrl_send(other, CTRL_PEERS, {"peers": addrs})

    def stop(self) -> Dict[str, Any]:
        """Gracefully shut down all workers and collect their counters.

        Live workers get a ``proc.shutdown`` frame and a bounded window
        to drain and reply with their stats; stragglers are killed.
        Returns the wire-plane summary for the run report.  Idempotent.
        """
        self._stopping = True  # EOFs from here on are orderly, not deaths
        if self._started and not self._stopped:
            for node in list(self._ctrl):
                self._ctrl_send(node, CTRL_SHUTDOWN, {})
            deadline = time.monotonic() + min(10.0, self.wait_timeout_s)
            want = [n for n, c in self._ctrl.items() if c is not None]
            while (time.monotonic() < deadline
                   and any(n not in self._worker_stats for n in want)):
                self._pump(0.05)
                want = [n for n in want if self._ctrl.get(n) is not None]
            for node, proc in self._procs.items():
                proc.join(timeout=2.0)
                if proc.is_alive():
                    try:
                        os.kill(proc.pid, signal.SIGKILL)
                    except OSError:
                        pass
                    proc.join(timeout=2.0)
            for conn in self._ctrl.values():
                if conn is not None:
                    conn.close()
            self._ctrl.clear()
            if self._listener is not None:
                self._listener.close()
                self._listener = None
            if self._tmpdir is not None:
                shutil.rmtree(self._tmpdir, ignore_errors=True)
                self._tmpdir = None
        self._stopped = True
        return self.summary()

    def summary(self) -> Dict[str, Any]:
        """Wire-plane summary: master counters plus per-worker stats."""
        return {
            "backend": "proc",
            "socket_kind": self.socket_kind,
            "wire_frames": self.stats.wire_frames,
            "wire_bytes": self.stats.wire_bytes,
            "wire_delivered": self.stats.wire_delivered,
            "wire_fallback": self.stats.wire_fallback,
            "workers": {n: self._worker_stats.get(n)
                        for n in sorted(self._procs)},
        }

    @property
    def proc_pids(self) -> Dict[int, int]:
        """Worker process ids by node (for tests and diagnostics)."""
        return {n: p.pid for n, p in self._procs.items()}

    def proc_alive(self, node_id: int) -> bool:
        """True while the node's worker process is running."""
        proc = self._procs.get(node_id)
        return proc is not None and proc.is_alive()

    # ------------------------------------------------------------------
    # Detach = genuine process death
    # ------------------------------------------------------------------
    def detach(self, node_id: int) -> None:
        """Detach the endpoint *and* SIGKILL its worker process, so the
        fault injector's ``detach:NODE@TIME`` (the ``--kill`` flag) maps
        to real process death on this backend."""
        self._dead_procs.add(node_id)  # before close: no death callback
        proc = self._procs.get(node_id)
        if proc is not None and proc.is_alive():
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except OSError:
                pass
            proc.join(timeout=5.0)
        super().detach(node_id)
        self._close_ctrl(node_id)

    # ------------------------------------------------------------------
    # Physical-plane hooks (called by SimNetwork.send / _deliver)
    # ------------------------------------------------------------------
    def _outbound(self, msg: Message) -> None:
        if not self._started:
            self.start()
        self._pump(0)
        entry = self._sent.get(msg.msg_id)
        if entry is None:
            # Encode once per msg_id: retransmissions of the same frame
            # (ARQ, injected duplicates) relay the original bytes.
            entry = self._sent[msg.msg_id] = [encode_frame(msg), 0, 0]
        entry[1] += 1
        frame = entry[0]
        self.stats.wire_frames += 1
        self.stats.wire_bytes += len(frame) + 4
        if self.wallclock is not None:
            self.wallclock.sample(self.engine.now)
        if msg.src == msg.dst:
            return  # loopback: no physical hop, decode-proved at delivery
        if self._proc_ok(msg.src) and self._proc_ok(msg.dst):
            relay_payload = {"dst": msg.dst, "frame": frame}
            if self.obs_plane is not None and self.obs_plane.get("flight"):
                # Stamp sim time so the worker's flight events carry
                # both clocks.  Ctrl-plane only: data frames untouched.
                relay_payload["sim"] = self.engine.now
            if self._ctrl_send(msg.src, CTRL_RELAY, relay_payload):
                entry[2] += 1
                if self.wallclock is not None:
                    self._relay_t0.setdefault(
                        msg.msg_id, deque()).append(time.monotonic_ns())
        # A dead endpoint means no relay: delivery falls back to the
        # master's copy so the schedule never diverges from sim.

    def _resolve(self, msg: Message) -> Message:
        entry = self._sent.get(msg.msg_id)
        if entry is None:  # not ours (never outbound); deliver as-is
            return msg
        frame = entry[0]
        data: Optional[bytes] = None
        queue = self._arrived.get(msg.msg_id)
        if queue:
            data = queue.popleft()
        elif entry[2] > 0:
            data = self._await_frame(msg)
        if data is None:
            if msg.src != msg.dst:
                self.stats.wire_fallback += 1
            data = frame
        else:
            entry[2] -= 1
            self.stats.wire_delivered += 1
            if data != frame:
                raise self._wire_error(
                    f"wire corruption: frame {msg.msg_id} arrived "
                    f"{len(data)}B, sent {len(frame)}B")
        decoded = decode_frame(data)
        self._consume(msg.msg_id, entry)
        return decoded

    def _discard(self, msg: Message) -> None:
        entry = self._sent.get(msg.msg_id)
        if entry is None:
            return
        queue = self._arrived.get(msg.msg_id)
        if queue:
            queue.popleft()
            entry[2] -= 1
        self._consume(msg.msg_id, entry)

    def _consume(self, msg_id: int, entry: List[Any]) -> None:
        entry[1] -= 1
        if entry[1] <= 0:
            del self._sent[msg_id]
            self._arrived.pop(msg_id, None)
            self._relay_t0.pop(msg_id, None)

    def _wire_error(self, detail: str) -> WireError:
        """Build a WireError, dumping the flight rings first (the error
        is about to unwind the run — this is the last coherent look)."""
        if self.on_flight_dump is not None:
            try:
                self.on_flight_dump("wire-error", {"detail": detail})
            except Exception:  # pragma: no cover - dump must not mask
                pass
        return WireError(detail)

    def _await_frame(self, msg: Message) -> Optional[bytes]:
        """Block until the physical copy of ``msg`` lands, an endpoint
        process dies (→ fallback), or the wait deadline expires."""
        deadline = time.monotonic() + self.wait_timeout_s
        queue = self._arrived.setdefault(msg.msg_id, deque())
        while True:
            if queue:
                return queue.popleft()
            if not (self._proc_ok(msg.src) and self._proc_ok(msg.dst)):
                self._pump(0)  # drain anything racing the death notice
                return queue.popleft() if queue else None
            if time.monotonic() > deadline:
                raise self._wire_error(
                    f"timed out after {self.wait_timeout_s}s waiting for "
                    f"physical copy of {msg}")
            self._pump(0.05)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _proc_ok(self, node_id: int) -> bool:
        return (node_id not in self._dead_procs
                and self._ctrl.get(node_id) is not None)

    def _ctrl_send(self, node_id: int, msg_type: str,
                   payload: Dict[str, Any]) -> bool:
        conn = self._ctrl.get(node_id)
        if conn is None:
            return False
        frame = encode_frame(_ctrl_msg(msg_type, MASTER_ID, payload))
        try:
            conn.sendall(frame_with_prefix(frame))
            return True
        except OSError:
            self._note_dead(node_id)
            return False

    def _pump(self, timeout: float) -> None:
        """Drain worker control sockets and poll process liveness."""
        if not self._started:
            return
        import select as _select
        while True:
            by_sock = {conn: node for node, conn in self._ctrl.items()
                       if conn is not None}
            if not by_sock:
                break
            try:
                readable, _, _ = _select.select(list(by_sock), [], [],
                                                timeout)
            except OSError:
                break
            for conn in readable:
                node = by_sock[conn]
                try:
                    data = conn.recv(_RECV_CHUNK)
                except OSError:
                    data = b""
                if not data:
                    self._note_dead(node)
                    continue
                for raw in self._decoders[node].feed(data):
                    self._on_ctrl_frame(node, decode_frame(raw))
            if not readable:
                break
            timeout = 0  # keep draining what is already queued
        for node, proc in self._procs.items():
            if node not in self._dead_procs and not proc.is_alive():
                self._note_dead(node)

    def _on_ctrl_frame(self, node: int, msg: Message) -> None:
        if msg.msg_type == CTRL_ARRIVED:
            raw = msg.payload["frame"]
            msg_id = peek_msg_id(raw)
            if self.wallclock is not None:
                queue = self._relay_t0.get(msg_id)
                if queue:
                    t0 = queue.popleft()
                    self.wallclock.observe(
                        "net.rtt_ns", node, time.monotonic_ns() - t0)
                    if not queue:
                        del self._relay_t0[msg_id]
            if msg_id in self._sent:
                self._arrived.setdefault(msg_id, deque()).append(raw)
            # else: a copy whose deliveries were all discarded — expired.
        elif msg.msg_type == CTRL_STATS:
            self._worker_stats[node] = dict(msg.payload)
            self._ingest_hists(node, msg.payload.get("hists"))
        elif msg.msg_type == CTRL_DELTA:
            if self.wallclock is not None:
                for name, value in msg.payload.get("stats", {}).items():
                    if name != "node" and isinstance(value, int):
                        self.wallclock.set_counter(
                            f"worker.{name}", node, value)
            self._ingest_hists(node, msg.payload.get("hists"))
        elif msg.msg_type == CTRL_FLIGHT:
            cap = (self.obs_plane or {}).get("flight_events", 256)
            ring = self._flight_mirror.get(node)
            if ring is None:
                ring = self._flight_mirror[node] = deque(maxlen=cap)
            ring.extend(msg.payload.get("events", ()))

    def _ingest_hists(self, node: int, hists: Optional[Dict[str, Any]]
                      ) -> None:
        """Merge worker-shipped cumulative histograms (replace per node)."""
        if self.wallclock is None or not hists:
            return
        for name, doc in hists.items():
            self.wallclock.set_hist(f"worker.{name}", node, doc)

    def flight_worker_events(self, node: int) -> List[Dict[str, Any]]:
        """The flight events last shipped up from one node's worker."""
        return list(self._flight_mirror.get(node, ()))

    def _close_ctrl(self, node_id: int) -> None:
        conn = self._ctrl.get(node_id)
        if conn is not None:
            conn.close()
            self._ctrl[node_id] = None

    def _note_dead(self, node_id: int) -> None:
        """A worker process died under us (EOF / waitpid): close its
        control lane and, if the simulator still considers the node
        alive, surface genuine external death to the runtime."""
        if node_id in self._dead_procs:
            return
        self._dead_procs.add(node_id)
        self._close_ctrl(node_id)
        if (self.on_flight_dump is not None and not self._stopping
                and self.is_attached(node_id)):
            try:
                self.on_flight_dump("sigkill", {"node": node_id})
            except Exception:  # pragma: no cover - dump must not mask
                pass
        if self.on_proc_death is not None and self.is_attached(node_id):
            self.engine.schedule(
                0, lambda: self._fire_death(node_id))

    def _fire_death(self, node_id: int) -> None:
        if self.on_proc_death is not None and self.is_attached(node_id):
            self.on_proc_death(node_id)
