"""Socket-like transport endpoints over the simulated network.

The paper's nodes talk over the standard Java socket interface (reliable,
ordered byte streams).  :class:`Transport` provides that contract to the
DSM layer: per-link FIFO ordering is enforced with sequence numbers and a
reassembly buffer, so it holds even when the raw network jitters
deliveries out of order (failure-injection mode).

Messages are dispatched to handlers registered by message type; unknown
types raise, because a protocol that silently drops messages deadlocks in
ways that are miserable to debug.

Reliability (``reliable=True``) adds a lightweight ARQ layer modelling
what TCP gives the paper's sockets on a lossy Ethernet: senders buffer
frames until a cumulative ack arrives, retransmit on timeout (go-back-N),
and receivers tolerate duplicates by dropping already-delivered sequence
numbers.  With a perfectly reliable network the layer adds only the ack
frames; under the fault injector it masks seeded drop / duplicate /
delay / reorder faults.  The default (``reliable=False``) keeps the
strict behaviour — a duplicate delivery raises, because the plain
simulated net never duplicates and silence would hide protocol bugs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..sim.cost_model import CostModel
from ..sim.engine import NS_PER_MS, EventHandle, SimEngine
from .message import M_TRANSPORT_ACK, Message
from .simnet import SimNetwork

Handler = Callable[[Message], None]

#: Control frame type for cumulative acks (never seq-numbered).
ACK_TYPE = M_TRANSPORT_ACK
#: Retransmission timeout.  Must exceed the worst one-way latency plus
#: any injected jitter/delay, or spurious (harmless but noisy)
#: retransmissions occur.
DEFAULT_RTO_NS = 25 * NS_PER_MS
#: Give-up bound: after this many consecutive timeouts without ack
#: progress the unacked frames are dropped (peer presumed detached).
DEFAULT_MAX_RETRIES = 20


@dataclass
class TransportStats:
    """Per-endpoint reliability counters (all zero on a clean network)."""

    acks_sent: int = 0
    dup_dropped: int = 0         # re-deliveries suppressed by seq check
    retransmissions: int = 0     # frames re-sent after an RTO
    gave_up: int = 0             # frames abandoned after max retries
    to_dead_dropped: int = 0     # sends/retransmits to a detached peer
    unreachable_events: int = 0  # peer_unreachable notifications fired
    stale_dropped: int = 0       # frames from a dead peer / dead epoch


class Transport:
    """One node's network endpoint with FIFO reassembly and type dispatch."""

    def __init__(
        self,
        network: SimNetwork,
        node_id: int,
        cost_model: CostModel,
        reliable: bool = False,
        rto_ns: int = DEFAULT_RTO_NS,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ) -> None:
        self.network = network
        self.node_id = node_id
        self.reliable = reliable
        self.rto_ns = rto_ns
        self.max_retries = max_retries
        self.stats = TransportStats()
        # Called (once per peer, until reset by mark_dead) when the ARQ
        # give-up bound is reached for a destination: the frames were
        # abandoned and the runtime should treat the peer as suspect.
        self.on_peer_unreachable: Optional[Callable[[int], None]] = None
        self._unreachable_reported: set = set()
        # Telemetry delivery context (``repro.obs``): called with the
        # message before its handler runs and with None after, so span
        # parents survive handler nesting (aggregate sub-frames).
        self.obs_on_deliver: Optional[Callable[[Optional[Message]], None]] \
            = None
        # Failure-recovery epoch machinery: frames from declared-dead
        # peers are discarded, and (when stamping is enabled) frames
        # carrying an epoch below a peer's floor are late packets from a
        # dead epoch and are likewise discarded.
        self.epoch = 0
        self.stamp_epoch = False
        self.dead_peers: set = set()
        self._min_epoch: Dict[int, int] = {}
        self._handlers: Dict[str, Handler] = {}
        self._send_seq: Dict[int, int] = {}      # dst -> next seq
        self._recv_next: Dict[int, int] = {}     # src -> next expected seq
        self._reassembly: Dict[int, Dict[int, Message]] = {}
        # ARQ sender state (reliable mode only).
        self._unacked: Dict[int, Dict[int, Message]] = {}   # dst -> seq -> msg
        self._retrans_timer: Dict[int, EventHandle] = {}
        self._retries: Dict[int, int] = {}
        network.attach(node_id, cost_model, self._on_raw)

    # ------------------------------------------------------------------
    # Dispatch registration
    # ------------------------------------------------------------------
    def on(self, msg_type: str, handler: Handler) -> None:
        """Register the handler for one message type."""
        if msg_type in self._handlers:
            raise ValueError(f"handler for {msg_type!r} already registered")
        self._handlers[msg_type] = handler

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        dst: int,
        msg_type: str,
        payload: Optional[Dict[str, Any]] = None,
        size_bytes: int = 0,
    ) -> Message:
        """Send a typed message; FIFO per destination via sequence numbers."""
        seq = self._send_seq.get(dst, 0)
        self._send_seq[dst] = seq + 1
        msg = Message(
            msg_type=msg_type,
            src=self.node_id,
            dst=dst,
            payload=dict(payload or {}),
            size_bytes=size_bytes,
        )
        msg.payload["__seq__"] = seq
        if self.stamp_epoch:
            msg.payload["__epoch__"] = self.epoch
        if dst in self.dead_peers:
            # Declared dead by recovery: don't buffer, don't retransmit.
            self.stats.to_dead_dropped += 1
            return msg
        if self.reliable and dst != self.node_id:
            # Buffer until cumulatively acked; loopback cannot be lost.
            self._unacked.setdefault(dst, {})[seq] = msg
            self._ensure_timer(dst)
        if not self._net_send(msg):
            # Peer already detached: the buffered copy (if any) will be
            # dropped by the give-up path; unreliable mode re-raises.
            pass
        return msg

    def _net_send(self, msg: Message) -> bool:
        """Hand a frame to the network; tolerate detached peers when
        reliable (sockets see a reset, not an exception storm)."""
        try:
            self.network.send(msg)
            return True
        except KeyError:
            if not self.reliable:
                raise
            self.stats.to_dead_dropped += 1
            return False

    # ------------------------------------------------------------------
    # ARQ sender side
    # ------------------------------------------------------------------
    def _ensure_timer(self, dst: int) -> None:
        timer = self._retrans_timer.get(dst)
        if timer is not None and not timer.cancelled:
            return
        self._retrans_timer[dst] = self.network.engine.schedule(
            self.rto_ns, lambda: self._on_rto(dst)
        )

    def _on_rto(self, dst: int) -> None:
        self._retrans_timer.pop(dst, None)
        pending = self._unacked.get(dst)
        if not pending:
            self._retries.pop(dst, None)
            return
        retries = self._retries.get(dst, 0) + 1
        self._retries[dst] = retries
        if retries > self.max_retries:
            # Peer presumed gone: abandon, do not wedge the event loop.
            self.stats.gave_up += len(pending)
            pending.clear()
            self._retries.pop(dst, None)
            self._report_unreachable(dst)
            return
        for seq in sorted(pending):      # go-back-N, in order
            self.stats.retransmissions += 1
            if not self._net_send(pending[seq]):
                # Peer detached: everything else would fail too.
                self.stats.gave_up += len(pending)
                pending.clear()
                self._retries.pop(dst, None)
                self._report_unreachable(dst)
                return
        self._ensure_timer(dst)

    def _report_unreachable(self, dst: int) -> None:
        """Surface an ARQ give-up to the runtime (at most once per peer)."""
        self.stats.unreachable_events += 1
        if self.on_peer_unreachable is None:
            return
        if dst in self._unreachable_reported:
            return
        self._unreachable_reported.add(dst)
        self.on_peer_unreachable(dst)

    def _on_ack(self, msg: Message) -> None:
        nxt = msg.payload["next"]
        pending = self._unacked.get(msg.src)
        if not pending:
            return
        acked = [seq for seq in pending if seq < nxt]
        for seq in acked:
            del pending[seq]
        if acked:
            self._retries.pop(msg.src, None)     # progress: reset backoff
        if not pending:
            timer = self._retrans_timer.pop(msg.src, None)
            if timer is not None:
                timer.cancel()

    def _send_ack(self, dst: int) -> None:
        self.stats.acks_sent += 1
        self._net_send(Message(
            ACK_TYPE, self.node_id, dst, {"next": self._recv_next[dst]}
        ))

    # ------------------------------------------------------------------
    # Failure epochs
    # ------------------------------------------------------------------
    def mark_dead(self, peer: int) -> None:
        """Declare a peer dead: abandon its unacked frames, stop its
        retransmission timer, and discard anything it still has in
        flight.  Bumps this endpoint's epoch so post-recovery traffic is
        distinguishable from dead-epoch stragglers."""
        self.dead_peers.add(peer)
        self._unreachable_reported.discard(peer)
        pending = self._unacked.pop(peer, None)
        if pending:
            self.stats.gave_up += len(pending)
        timer = self._retrans_timer.pop(peer, None)
        if timer is not None:
            timer.cancel()
        self._retries.pop(peer, None)
        self._reassembly.pop(peer, None)
        self.epoch += 1

    def quarantine_epoch(self, peer: int, min_epoch: int) -> None:
        """Discard frames from ``peer`` stamped below ``min_epoch``."""
        self._min_epoch[peer] = min_epoch

    def _stale(self, msg: Message) -> bool:
        if msg.src in self.dead_peers:
            return True
        floor = self._min_epoch.get(msg.src)
        if floor is not None and msg.payload.get("__epoch__", 0) < floor:
            return True
        return False

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _on_raw(self, msg: Message) -> None:
        if self._stale(msg):
            self.stats.stale_dropped += 1
            return
        if msg.msg_type == ACK_TYPE:
            self._on_ack(msg)
            return
        seq = msg.payload.get("__seq__")
        if seq is None:
            self._dispatch(msg)
            return
        src = msg.src
        expected = self._recv_next.get(src, 0)
        if seq == expected:
            self._recv_next[src] = expected + 1
            self._dispatch(msg)
            # Drain any buffered successors.
            buf = self._reassembly.get(src)
            while buf:
                nxt = self._recv_next[src]
                queued = buf.pop(nxt, None)
                if queued is None:
                    break
                self._recv_next[src] = nxt + 1
                self._dispatch(queued)
            if self.reliable and src != self.node_id:
                self._send_ack(src)
        elif seq > expected:
            self._reassembly.setdefault(src, {})[seq] = msg
        elif self.reliable:
            # Duplicate (retransmission or injected dup): drop silently,
            # but re-ack so the sender stops retransmitting.
            self.stats.dup_dropped += 1
            if src != self.node_id:
                self._send_ack(src)
        # seq < expected without reliability would be a duplicate; the
        # plain simulated net never duplicates, so treat it as a bug.
        else:
            raise RuntimeError(
                f"duplicate delivery: {msg} (seq {seq} < expected {expected})"
            )

    def deliver_inner(self, outer: Message, frames) -> None:
        """Dispatch the logical sub-frames of an aggregate message.

        The outer frame already went through sequencing / ARQ / epoch
        checks, so the inner messages are delivered directly to the
        registered handlers: no ``__seq__`` is assigned (FIFO order is
        inherited from the outer frame) and each inner message keeps the
        explicit size it was billed at by the aggregator.
        """
        for msg_type, payload, size in frames:
            inner = Message(
                msg_type=msg_type,
                src=outer.src,
                dst=outer.dst,
                payload=dict(payload),
                size_bytes=max(1, int(size)),
            )
            self._dispatch(inner)

    def _dispatch(self, msg: Message) -> None:
        handler = self._handlers.get(msg.msg_type)
        if handler is None:
            raise RuntimeError(
                f"node {self.node_id}: no handler for message type "
                f"{msg.msg_type!r}"
            )
        if self.obs_on_deliver is None:
            handler(msg)
            return
        self.obs_on_deliver(msg)
        try:
            handler(msg)
        finally:
            self.obs_on_deliver(None)

    # ------------------------------------------------------------------
    def quiesced(self) -> bool:
        """True when no frames await ack and no gaps await reassembly."""
        return (
            not any(self._unacked.get(d) for d in self._unacked)
            and not any(self._reassembly.get(s) for s in self._reassembly)
        )

    def close(self) -> None:
        """Detach this endpoint from the network."""
        for timer in self._retrans_timer.values():
            timer.cancel()
        self._retrans_timer.clear()
        self.network.detach(self.node_id)
