"""Socket-like transport endpoints over the simulated network.

The paper's nodes talk over the standard Java socket interface (reliable,
ordered byte streams).  :class:`Transport` provides that contract to the
DSM layer: per-link FIFO ordering is enforced with sequence numbers and a
reassembly buffer, so it holds even when the raw network jitters
deliveries out of order (failure-injection mode).

Messages are dispatched to handlers registered by message type; unknown
types raise, because a protocol that silently drops messages deadlocks in
ways that are miserable to debug.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..sim.cost_model import CostModel
from ..sim.engine import SimEngine
from .message import Message
from .simnet import SimNetwork

Handler = Callable[[Message], None]


class Transport:
    """One node's network endpoint with FIFO reassembly and type dispatch."""

    def __init__(
        self,
        network: SimNetwork,
        node_id: int,
        cost_model: CostModel,
    ) -> None:
        self.network = network
        self.node_id = node_id
        self._handlers: Dict[str, Handler] = {}
        self._send_seq: Dict[int, int] = {}      # dst -> next seq
        self._recv_next: Dict[int, int] = {}     # src -> next expected seq
        self._reassembly: Dict[int, Dict[int, Message]] = {}
        network.attach(node_id, cost_model, self._on_raw)

    # ------------------------------------------------------------------
    # Dispatch registration
    # ------------------------------------------------------------------
    def on(self, msg_type: str, handler: Handler) -> None:
        """Register the handler for one message type."""
        if msg_type in self._handlers:
            raise ValueError(f"handler for {msg_type!r} already registered")
        self._handlers[msg_type] = handler

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        dst: int,
        msg_type: str,
        payload: Optional[Dict[str, Any]] = None,
        size_bytes: int = 0,
    ) -> Message:
        """Send a typed message; FIFO per destination via sequence numbers."""
        seq = self._send_seq.get(dst, 0)
        self._send_seq[dst] = seq + 1
        msg = Message(
            msg_type=msg_type,
            src=self.node_id,
            dst=dst,
            payload=dict(payload or {}),
            size_bytes=size_bytes,
        )
        msg.payload["__seq__"] = seq
        self.network.send(msg)
        return msg

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _on_raw(self, msg: Message) -> None:
        seq = msg.payload.get("__seq__")
        if seq is None:
            self._dispatch(msg)
            return
        src = msg.src
        expected = self._recv_next.get(src, 0)
        if seq == expected:
            self._recv_next[src] = expected + 1
            self._dispatch(msg)
            # Drain any buffered successors.
            buf = self._reassembly.get(src)
            while buf:
                nxt = self._recv_next[src]
                queued = buf.pop(nxt, None)
                if queued is None:
                    break
                self._recv_next[src] = nxt + 1
                self._dispatch(queued)
        elif seq > expected:
            self._reassembly.setdefault(src, {})[seq] = msg
        # seq < expected would be a duplicate; the simulated net never
        # duplicates, so treat it as a protocol bug.
        else:
            raise RuntimeError(
                f"duplicate delivery: {msg} (seq {seq} < expected {expected})"
            )

    def _dispatch(self, msg: Message) -> None:
        handler = self._handlers.get(msg.msg_type)
        if handler is None:
            raise RuntimeError(
                f"node {self.node_id}: no handler for message type "
                f"{msg.msg_type!r}"
            )
        handler(msg)

    def close(self) -> None:
        """Detach this endpoint from the network."""
        self.network.detach(self.node_id)
