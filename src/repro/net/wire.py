"""Versioned binary wire format for protocol frames.

The sim backend hands :class:`~repro.net.message.Message` objects
between endpoints as live Python objects; the proc backend has to put
them on real sockets.  This module is the codec: a compact
length-prefixed frame with a fixed ``struct`` header followed by the
message type and a tagged encoding of the payload dict.  Message bodies
that are already real byte strings (serialized objects and diffs
produced by :mod:`repro.dsm.serialization`) pass through verbatim.

Design constraints, in order:

* **Round-trip fidelity.**  The decoded message must be *semantically
  identical* to the encoded one — including the tuple/list/set
  distinctions and the dict insertion order the protocol relies on —
  because the differential harness asserts that a run whose every frame
  goes through this codec behaves byte-for-byte like the sim backend.
* **Hostile-input safety.**  Frames arrive from a socket; a truncated
  or corrupt frame must raise :class:`WireError`, never an unbounded
  allocation or a silent mis-parse (the version byte exists so a future
  layout change is detected instead of mis-decoded).
* **Relay cheapness.**  The per-node worker processes route frames by
  destination without decoding payloads, so ``src``/``dst`` live at
  fixed offsets readable with one ``struct`` call (:func:`peek_route`).

Frame layout (all integers big-endian)::

    u32   length of the rest of the frame (stream framing prefix)
    2s    magic  b"JW"
    u8    version (currently 1)
    u8    flags   (reserved, 0)
    u64   msg_id
    i32   src
    i32   dst
    u32   size_bytes        (simulated wire-size accounting)
    u16   len(msg_type) + utf-8 bytes
    ...   tagged payload value (a dict at the top level)
"""

from __future__ import annotations

import struct
import time
from typing import Any, Callable, Iterator, List, Optional, Tuple

from .message import Message

MAGIC = b"JW"
VERSION = 1

#: Hard cap on a single frame (prefix value).  The biggest legitimate
#: frames are whole-object fetch replies and bulk prefetch replies —
#: tens of kilobytes at benchmark scale; 64 MiB leaves three orders of
#: magnitude of headroom while bounding what a corrupt length prefix
#: can make a receiver buffer.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_PREFIX = struct.Struct(">I")
_HEADER = struct.Struct(">2sBBQiiIH")   # magic ver flags msg_id src dst size typelen
_U32 = struct.Struct(">I")
_S64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

#: Offset of (src, dst) within a frame (after the length prefix).
_ROUTE = struct.Struct(">ii")
_ROUTE_OFFSET = 2 + 1 + 1 + 8

# Value tags.  One byte each; containers carry a u32 element count.
_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"i"        # fits a signed 64-bit integer
_T_BIGINT = b"I"     # arbitrary precision, length-prefixed two's complement
_T_FLOAT = b"d"
_T_STR = b"s"
_T_BYTES = b"b"
_T_LIST = b"l"
_T_TUPLE = b"t"
_T_SET = b"e"
_T_FROZENSET = b"z"
_T_DICT = b"m"

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class WireError(ValueError):
    """A frame could not be encoded or decoded."""


# ---------------------------------------------------------------------------
# Value codec
# ---------------------------------------------------------------------------
def _encode_value(out: List[bytes], value: Any) -> None:
    # bool before int: bool is an int subclass.
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(_T_INT)
            out.append(_S64.pack(value))
        else:
            raw = value.to_bytes(
                (value.bit_length() + 8) // 8, "big", signed=True)
            out.append(_T_BIGINT)
            out.append(_U32.pack(len(raw)))
            out.append(raw)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out.append(_F64.pack(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out.append(_U32.pack(len(raw)))
        out.append(raw)
    elif isinstance(value, (bytes, bytearray)):
        out.append(_T_BYTES)
        out.append(_U32.pack(len(value)))
        out.append(bytes(value))
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST if isinstance(value, list) else _T_TUPLE)
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, (set, frozenset)):
        out.append(_T_SET if isinstance(value, set) else _T_FROZENSET)
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out.append(_U32.pack(len(value)))
        for k, v in value.items():
            _encode_value(out, k)
            _encode_value(out, v)
    else:
        raise WireError(
            f"cannot encode {type(value).__name__} on the wire "
            f"(payloads must be flattened to plain data first)")


class _Cursor:
    """Bounds-checked sequential reader over one frame's bytes."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > len(self.data):
            raise WireError(
                f"truncated frame: need {n} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos}")
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]


def _decode_value(cur: _Cursor) -> Any:
    tag = cur.take(1)
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return _S64.unpack(cur.take(8))[0]
    if tag == _T_BIGINT:
        return int.from_bytes(cur.take(cur.u32()), "big", signed=True)
    if tag == _T_FLOAT:
        return _F64.unpack(cur.take(8))[0]
    if tag == _T_STR:
        raw = cur.take(cur.u32())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"invalid utf-8 in string: {exc}") from None
    if tag == _T_BYTES:
        return cur.take(cur.u32())
    if tag in (_T_LIST, _T_TUPLE, _T_SET, _T_FROZENSET):
        n = cur.u32()
        items = [_decode_value(cur) for _ in range(n)]
        if tag == _T_LIST:
            return items
        if tag == _T_TUPLE:
            return tuple(items)
        if tag == _T_SET:
            return set(items)
        return frozenset(items)
    if tag == _T_DICT:
        n = cur.u32()
        out = {}
        for _ in range(n):
            k = _decode_value(cur)
            out[k] = _decode_value(cur)
        return out
    raise WireError(f"unknown value tag {tag!r} at offset {cur.pos - 1}")


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------
#: Optional wall-clock probe: ``cb(kind, elapsed_ns)`` with kind
#: "encode" or "decode".  Module-level on purpose — the codec has no
#: instance to hang state on, and only one observer (the active
#: ObsManager, or a proc worker's local timer) ever arms it.  ``None``
#: keeps the fast path at a single falsy check.
_timer: Optional[Callable[[str, int], None]] = None


def set_wire_timer(cb: Optional[Callable[[str, int], None]]) -> None:
    """Arm (or with ``None`` disarm) the codec wall-clock probe."""
    global _timer
    _timer = cb


def encode_frame(msg: Message) -> bytes:
    """Encode one message as a frame (*without* the length prefix).

    The prefix is stream framing, attached at socket-write time with
    :func:`frame_with_prefix`; everything else — storage, comparison,
    :func:`decode_frame` — works on the bare frame.
    """
    if _timer is not None:
        t0 = time.monotonic_ns()
        body = _encode_frame(msg)
        _timer("encode", time.monotonic_ns() - t0)
        return body
    return _encode_frame(msg)


def _encode_frame(msg: Message) -> bytes:
    type_raw = msg.msg_type.encode("utf-8")
    if len(type_raw) > 0xFFFF:
        raise WireError(f"message type too long ({len(type_raw)} bytes)")
    parts: List[bytes] = [
        _HEADER.pack(MAGIC, VERSION, 0, msg.msg_id, msg.src, msg.dst,
                     msg.size_bytes, len(type_raw)),
        type_raw,
    ]
    _encode_value(parts, msg.payload)
    body = b"".join(parts)
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame too large ({len(body)} bytes)")
    return body


def decode_frame(data: bytes) -> Message:
    """Decode one frame (*without* its length prefix) to a Message.

    Raises :class:`WireError` for bad magic, an unsupported version,
    truncation anywhere, or trailing garbage after the payload.
    """
    if _timer is not None:
        t0 = time.monotonic_ns()
        msg = _decode_frame(data)
        _timer("decode", time.monotonic_ns() - t0)
        return msg
    return _decode_frame(data)


def _decode_frame(data: bytes) -> Message:
    if len(data) < _HEADER.size:
        raise WireError(f"frame too short for header ({len(data)} bytes)")
    magic, version, _flags, msg_id, src, dst, size_bytes, type_len = \
        _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r}")
    if version != VERSION:
        raise WireError(f"unsupported wire version {version}")
    cur = _Cursor(data)
    cur.pos = _HEADER.size
    try:
        type_raw = cur.take(type_len)
        msg_type = type_raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"invalid utf-8 in message type: {exc}") from None
    payload = _decode_value(cur)
    if not isinstance(payload, dict):
        raise WireError(
            f"frame payload must be a dict, got {type(payload).__name__}")
    if cur.pos != len(data):
        raise WireError(
            f"{len(data) - cur.pos} trailing bytes after payload")
    return Message(msg_type=msg_type, src=src, dst=dst, payload=payload,
                   size_bytes=size_bytes, msg_id=msg_id)


def peek_route(frame: bytes) -> Tuple[int, int]:
    """(src, dst) of a frame (without prefix), without decoding it."""
    if len(frame) < _ROUTE_OFFSET + _ROUTE.size:
        raise WireError("frame too short to carry a route")
    return _ROUTE.unpack_from(frame, _ROUTE_OFFSET)


def peek_msg_id(frame: bytes) -> int:
    """The msg_id of a frame (without prefix), without decoding it."""
    if len(frame) < _ROUTE_OFFSET:
        raise WireError("frame too short to carry a msg_id")
    return struct.unpack_from(">Q", frame, 4)[0]


def frame_with_prefix(frame: bytes) -> bytes:
    """Re-attach the stream length prefix to a decoded-out frame."""
    return _PREFIX.pack(len(frame)) + frame


class FrameDecoder:
    """Incremental stream reassembler: feed socket bytes, get frames.

    Yields complete frames *without* their length prefix, in order.
    State survives arbitrary chunking (a frame may arrive one byte at a
    time or many frames may arrive in one ``recv``).
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> Iterator[bytes]:
        """Absorb ``data``; yield every frame completed by it."""
        self._buf.extend(data)
        while True:
            if len(self._buf) < _PREFIX.size:
                return
            (length,) = _PREFIX.unpack_from(self._buf, 0)
            if length > MAX_FRAME_BYTES:
                raise WireError(
                    f"frame length {length} exceeds cap {MAX_FRAME_BYTES}")
            if len(self._buf) < _PREFIX.size + length:
                return
            frame = bytes(self._buf[_PREFIX.size:_PREFIX.size + length])
            del self._buf[:_PREFIX.size + length]
            yield frame

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a complete frame."""
        return len(self._buf)
