"""Network traffic accounting.

Tracks message and byte counts globally, per message type and per directed
link, so benchmarks can report communication volume alongside time.
``dropped`` counts in-flight messages discarded because the destination
detached before delivery (they are still billed to the totals — the wire
carried them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .message import Message


@dataclass
class NetStats:
    messages: int = 0
    bytes: int = 0
    dropped: int = 0
    by_type: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    by_link: Dict[Tuple[int, int], Tuple[int, int]] = field(default_factory=dict)

    def record(self, msg: Message) -> None:
        """Account one sent message (totals, per type, per link)."""
        self.messages += 1
        self.bytes += msg.size_bytes
        n, b = self.by_type.get(msg.msg_type, (0, 0))
        self.by_type[msg.msg_type] = (n + 1, b + msg.size_bytes)
        link = (msg.src, msg.dst)
        n, b = self.by_link.get(link, (0, 0))
        self.by_link[link] = (n + 1, b + msg.size_bytes)

    def reset(self) -> None:
        """Zero every counter, including the per-type/per-link breakdowns
        (a reset that left those populated would double-count on reuse)."""
        self.messages = 0
        self.bytes = 0
        self.dropped = 0
        self.by_type.clear()
        self.by_link.clear()

    def merge(self, other: "NetStats") -> "NetStats":
        """Accumulate another run's counters into this one (multi-run /
        multi-seed aggregation); returns self for chaining."""
        self.messages += other.messages
        self.bytes += other.bytes
        self.dropped += other.dropped
        for mtype, (n, b) in other.by_type.items():
            cn, cb = self.by_type.get(mtype, (0, 0))
            self.by_type[mtype] = (cn + n, cb + b)
        for link, (n, b) in other.by_link.items():
            cn, cb = self.by_link.get(link, (0, 0))
            self.by_link[link] = (cn + n, cb + b)
        return self

    def prefix_totals(self, prefix: str) -> Tuple[int, int]:
        """(messages, bytes) summed over types with the given prefix."""
        n_total, b_total = 0, 0
        for mtype, (n, b) in self.by_type.items():
            if mtype.startswith(prefix):
                n_total += n
                b_total += b
        return n_total, b_total

    def ft_overhead(self) -> Dict[str, Tuple[int, int]]:
        """Fault-tolerance traffic grouped by purpose, for benchmark
        tables: heartbeat (ping/suspect), replication (buddy mirroring),
        recovery (rediff/notice/thread re-ship control traffic)."""
        hb_n, hb_b = self.prefix_totals("ft.ping")
        sus_n, sus_b = self.prefix_totals("ft.suspect")
        repl = self.prefix_totals("ft.repl")
        rec_n, rec_b = 0, 0
        for prefix in ("ft.rediff", "ft.notices", "ft.thread"):
            n, b = self.prefix_totals(prefix)
            rec_n += n
            rec_b += b
        return {
            "heartbeat": (hb_n + sus_n, hb_b + sus_b),
            "replication": repl,
            "recovery": (rec_n, rec_b),
        }

    def summary(self) -> str:
        """Multi-line human-readable totals."""
        lines = [f"total: {self.messages} msgs, {self.bytes} bytes"]
        if self.dropped:
            lines[0] += f" ({self.dropped} dropped in flight)"
        for mtype in sorted(self.by_type):
            n, b = self.by_type[mtype]
            lines.append(f"  {mtype}: {n} msgs, {b} bytes")
        ft = self.ft_overhead()
        if any(n for n, _ in ft.values()):
            lines.append("  ft overhead:")
            for group in ("heartbeat", "replication", "recovery"):
                n, b = ft[group]
                lines.append(f"    {group}: {n} msgs, {b} bytes")
        return "\n".join(lines)
