"""Network traffic accounting.

Tracks message and byte counts globally, per message type and per directed
link, so benchmarks can report communication volume alongside time.
``dropped`` counts in-flight messages discarded because the destination
detached before delivery (they are still billed to the totals — the wire
carried them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .message import Message


@dataclass
class NetStats:
    messages: int = 0
    bytes: int = 0
    dropped: int = 0
    by_type: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    by_link: Dict[Tuple[int, int], Tuple[int, int]] = field(default_factory=dict)
    # Physical wire plane (``proc`` backend only; all zero under sim).
    # ``wire_bytes`` counts real encoded bytes-on-wire (frame + length
    # prefix), so subsystem overhead stays meaningful against genuine
    # serialization cost rather than the estimate in ``size_bytes``.
    wire_frames: int = 0      # frames encoded by the master
    wire_bytes: int = 0       # encoded bytes (incl. 4B length prefix)
    wire_delivered: int = 0   # copies that physically crossed sockets
    wire_fallback: int = 0    # deliveries decoded from the master copy

    def record(self, msg: Message) -> None:
        """Account one sent message (totals, per type, per link)."""
        self.messages += 1
        self.bytes += msg.size_bytes
        n, b = self.by_type.get(msg.msg_type, (0, 0))
        self.by_type[msg.msg_type] = (n + 1, b + msg.size_bytes)
        link = (msg.src, msg.dst)
        n, b = self.by_link.get(link, (0, 0))
        self.by_link[link] = (n + 1, b + msg.size_bytes)

    def reset(self) -> None:
        """Zero every counter, including the per-type/per-link breakdowns
        (a reset that left those populated would double-count on reuse)."""
        self.messages = 0
        self.bytes = 0
        self.dropped = 0
        self.wire_frames = 0
        self.wire_bytes = 0
        self.wire_delivered = 0
        self.wire_fallback = 0
        self.by_type.clear()
        self.by_link.clear()

    def merge(self, other: "NetStats") -> "NetStats":
        """Accumulate another run's counters into this one (multi-run /
        multi-seed aggregation); returns self for chaining."""
        self.messages += other.messages
        self.bytes += other.bytes
        self.dropped += other.dropped
        self.wire_frames += other.wire_frames
        self.wire_bytes += other.wire_bytes
        self.wire_delivered += other.wire_delivered
        self.wire_fallback += other.wire_fallback
        for mtype, (n, b) in other.by_type.items():
            cn, cb = self.by_type.get(mtype, (0, 0))
            self.by_type[mtype] = (cn + n, cb + b)
        for link, (n, b) in other.by_link.items():
            cn, cb = self.by_link.get(link, (0, 0))
            self.by_link[link] = (cn + n, cb + b)
        return self

    def prefix_totals(self, prefix: str) -> Tuple[int, int]:
        """(messages, bytes) summed over types with the given prefix."""
        n_total, b_total = 0, 0
        for mtype, (n, b) in self.by_type.items():
            if mtype.startswith(prefix):
                n_total += n
                b_total += b
        return n_total, b_total

    def _grouped(self, groups: Dict[str, Tuple[str, ...]]
                 ) -> Dict[str, Tuple[int, int]]:
        out: Dict[str, Tuple[int, int]] = {}
        for name, prefixes in groups.items():
            n_total, b_total = 0, 0
            for prefix in prefixes:
                n, b = self.prefix_totals(prefix)
                n_total += n
                b_total += b
            out[name] = (n_total, b_total)
        return out

    def subsystem_overhead(self) -> Dict[str, Dict[str, Tuple[int, int]]]:
        """Opt-in subsystem traffic grouped by purpose, for benchmark
        tables: the ``ft.*`` (heartbeat / replication / recovery),
        ``loc.*`` (migration / prefetch / aggregation), ``pol.*``
        (write-update pushes / read-mostly broadcasts) and ``race.*``
        (event sync) message families."""
        return {
            "ft": self._grouped({
                "heartbeat": ("ft.ping", "ft.suspect"),
                "replication": ("ft.repl",),
                "recovery": ("ft.rediff", "ft.notices", "ft.thread"),
            }),
            "locality": self._grouped({
                "migration": ("loc.home_update", "loc.fwd_diff"),
                "prefetch": ("loc.bulk_fetch", "loc.bulk_reply"),
                "aggregation": ("loc.agg",),
            }),
            "policy": self._grouped({
                "push": ("pol.push",),
                "broadcast": ("pol.bcast",),
            }),
            "race": self._grouped({
                "sync": ("race.sync",),
            }),
        }

    def ft_overhead(self) -> Dict[str, Tuple[int, int]]:
        """Fault-tolerance traffic grouped by purpose (the ``ft`` slice
        of :meth:`subsystem_overhead`, kept for compatibility)."""
        return self.subsystem_overhead()["ft"]

    def summary(self) -> str:
        """Multi-line human-readable totals."""
        lines = [f"total: {self.messages} msgs, {self.bytes} bytes"]
        if self.dropped:
            lines[0] += f" ({self.dropped} dropped in flight)"
        if self.wire_frames:
            lines.append(
                f"  wire: {self.wire_frames} frames, {self.wire_bytes} "
                f"bytes on wire, {self.wire_delivered} delivered, "
                f"{self.wire_fallback} fallback")
        for mtype in sorted(self.by_type):
            n, b = self.by_type[mtype]
            lines.append(f"  {mtype}: {n} msgs, {b} bytes")
        for subsystem, groups in self.subsystem_overhead().items():
            if not any(n for n, _ in groups.values()):
                continue
            lines.append(f"  {subsystem} overhead:")
            for group, (n, b) in groups.items():
                lines.append(f"    {group}: {n} msgs, {b} bytes")
        return "\n".join(lines)
