"""Machine-readable benchmark runs behind ``python -m repro bench``.

One invocation executes every requested app on the simulated cluster
with the adaptive-locality subsystem off and on (and, with
``ablation=True``, each locality component alone), and emits the
numbers a trend dashboard needs — simulated time, ``NetStats``
messages/bytes, DSM fetch/diff counts, and the locality subsystem's own
report — as JSON under ``benchmarks/results/``.  Everything measured is
simulated and seed-deterministic, so the output is reproducible
bit-for-bit and safe to diff across commits (``BENCH_3.json`` at the
repo root is exactly such a committed snapshot).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..check.runner import app_source, parse_locality, parse_policy
from ..lang import compile_source
from ..rewriter import rewrite_application
from ..runtime import JavaSplitRuntime, RuntimeConfig

#: Default output directory, relative to the repo root / cwd.
RESULTS_DIR = Path("benchmarks/results")

#: Locality modes measured by default (off vs everything on) and the
#: extra single-component modes an ablation run adds.  ``policy-*``
#: modes run with the coherence-policy subsystem instead of the
#: locality subsystem (``policy-all`` = all three policies at once).
BASE_MODES: Tuple[str, ...] = ("off", "all")
POLICY_MODES: Tuple[str, ...] = (
    "off", "policy-update", "policy-migratory", "policy-broadcast",
    "policy-all")
ABLATION_MODES: Tuple[str, ...] = (
    "off", "migration", "prefetch", "aggregation", "all",
    "policy-update", "policy-migratory", "policy-broadcast", "policy-all")

#: Apps benched by default (the ``repro check``-scale instances, so a
#: full bench stays CI-cheap).
DEFAULT_APPS: Tuple[str, ...] = ("series", "tsp", "raytracer")


def _measure(rewritten, nodes: int, mode: str,
             include_metrics: bool = False,
             backend: str = "sim") -> Dict[str, Any]:
    """One simulated run; ``mode`` is a locality spec ('' = off) or a
    ``policy-<spec>`` coherence-policy spec.

    ``include_metrics`` additionally runs with the telemetry metrics
    registry on and embeds its compact summary.  Off by default so the
    committed ``BENCH_3.json`` snapshots stay byte-comparable across
    commits that only touch telemetry (the registry itself never
    perturbs traffic, so the other numbers are identical either way).

    ``backend="proc"`` runs on the multiprocess transport; the entry
    then additionally carries wall-clock and wire-plane numbers (those
    are inherently non-deterministic, which is why they only appear on
    the proc backend — sim entries stay byte-comparable).
    """
    if mode.startswith("policy-"):
        knobs = parse_policy(mode[len("policy-"):])
    else:
        knobs = parse_locality("" if mode == "off" else mode)
    config = RuntimeConfig(num_nodes=nodes, obs_metrics=include_metrics,
                           transport_backend=backend,
                           obs_wallclock=(backend != "sim"), **knobs)
    runtime = JavaSplitRuntime(rewritten, config)
    report = runtime.run()
    total = report.total_dsm()
    assert report.net is not None
    out: Dict[str, Any] = {
        "simulated_ms": round(report.simulated_ns / 1e6, 6),
        "messages": report.net.messages,
        "bytes": report.net.bytes,
        "fetches": total.fetches,
        "diffs_sent": total.diffs_sent,
        "token_transfers": total.token_transfers,
        "result": repr(report.result),
    }
    if backend != "sim":
        out["backend"] = backend
        out["wall_ms"] = round(report.wall_seconds * 1e3, 3)
        if report.proc is not None:
            out["wire"] = {
                "frames": report.proc["wire_frames"],
                "bytes": report.proc["wire_bytes"],
                "delivered": report.proc["wire_delivered"],
                "fallback": report.proc["wire_fallback"],
            }
        if runtime.obs is not None and runtime.obs.wallclock is not None:
            out["wallclock"] = runtime.obs.wallclock.by_node()
    if report.locality is not None:
        out["locality"] = report.locality
    if report.policy is not None:
        out["policy"] = report.policy
    if include_metrics and runtime.obs is not None:
        out["metrics"] = runtime.obs.metrics.compact()
    return out


def _cluster_meta(nodes: int, backend: str = "sim") -> Dict[str, Any]:
    """Cluster-shape metadata embedded in every bench document, so a
    number can never be read without knowing what cluster produced it.
    The bench always runs the RuntimeConfig default shape: homogeneous
    sun-brand nodes, two CPUs each."""
    config = RuntimeConfig(num_nodes=nodes)
    return {
        "nodes": nodes,
        "brands": [config.brand_of(i) for i in range(nodes)],
        "cpus_per_node": config.cpus_per_node,
        "backend": backend,
    }


def _pct(off: float, on: float) -> Optional[float]:
    """Signed percentage change on→off baseline (negative = reduction)."""
    if not off:
        return None
    return round(100.0 * (on - off) / off, 2)


def bench_app(app: str, nodes: int = 3,
              modes: Iterable[str] = BASE_MODES,
              include_metrics: bool = False,
              backend: str = "sim") -> Dict[str, Any]:
    """Bench one app across the given locality modes."""
    rewritten = rewrite_application(compile_source(app_source(app)))
    runs = {mode: _measure(rewritten, nodes, mode, include_metrics,
                           backend=backend)
            for mode in modes}
    off = runs["off"]
    entry: Dict[str, Any] = {"runs": runs}
    entry["result_matches"] = all(
        r["result"] == off["result"] for r in runs.values())
    if "all" in runs:
        on = runs["all"]
        entry["delta_all_vs_off"] = {
            "messages_pct": _pct(off["messages"], on["messages"]),
            "bytes_pct": _pct(off["bytes"], on["bytes"]),
            "fetches_pct": _pct(off["fetches"], on["fetches"]),
            "simulated_ms_pct": _pct(off["simulated_ms"],
                                     on["simulated_ms"]),
        }
    return entry


def run_bench(apps: Iterable[str] = DEFAULT_APPS, nodes: int = 3,
              ablation: bool = False,
              include_metrics: bool = False,
              backend: str = "sim") -> Dict[str, Any]:
    """The full bench document (what the JSON files serialize)."""
    modes = ABLATION_MODES if ablation else BASE_MODES
    doc: Dict[str, Any] = {
        "bench": "locality",
        "schema": 1,
        "nodes": nodes,
        "cluster": _cluster_meta(nodes, backend),
        "modes": list(modes),
    }
    if backend != "sim":
        doc["backend"] = backend
    doc["apps"] = {app: bench_app(app, nodes, modes, include_metrics,
                                  backend=backend)
                   for app in apps}
    return doc


#: Node count for the dedicated policy bench.  Wider than the default
#: because push/broadcast policies pay per *extra reader*: with only two
#: worker peers the per-write push cost roughly cancels the saved
#: fetches, and the policies look artificially neutral.
POLICY_BENCH_NODES = 5


def _policy_sources() -> Dict[str, str]:
    """App instances for the dedicated policy bench.  tsp is sized up
    (9 cities / 4 threads vs the check-scale 7 / 3) so the global bound
    improves several times *after* the workers hold replicas — the
    check-scale instance converges so fast that a read-mostly broadcast
    has nothing left to short-circuit."""
    from ..apps import tsp

    return {
        "series": app_source("series"),
        "tsp": tsp.make_source(n_cities=9, n_threads=4, seed=42),
        "raytracer": app_source("raytracer"),
    }


def run_policy_bench(nodes: int = POLICY_BENCH_NODES) -> Dict[str, Any]:
    """Per-policy ablation document (what ``BENCH_7.json`` snapshots):
    every app across off / each coherence policy alone / all three."""
    doc: Dict[str, Any] = {
        "bench": "policy",
        "schema": 1,
        "nodes": nodes,
        "cluster": _cluster_meta(nodes),
        "modes": list(POLICY_MODES),
        "app_instances": {
            "series": "check-scale",
            "tsp": "n_cities=9 n_threads=4 seed=42",
            "raytracer": "check-scale",
        },
        "apps": {},
    }
    for app, src in _policy_sources().items():
        rewritten = rewrite_application(compile_source(src))
        runs = {mode: _measure(rewritten, nodes, mode)
                for mode in POLICY_MODES}
        off = runs["off"]
        entry: Dict[str, Any] = {"runs": runs}
        entry["result_matches"] = all(
            r["result"] == off["result"] for r in runs.values())
        entry["delta_vs_off"] = {
            mode: {
                "messages": runs[mode]["messages"] - off["messages"],
                "bytes": runs[mode]["bytes"] - off["bytes"],
                "messages_pct": _pct(off["messages"],
                                     runs[mode]["messages"]),
                "bytes_pct": _pct(off["bytes"], runs[mode]["bytes"]),
            }
            for mode in POLICY_MODES if mode != "off"
        }
        doc["apps"][app] = entry
    return doc


def run_backend_bench(apps: Iterable[str] = DEFAULT_APPS,
                      nodes: int = 3) -> Dict[str, Any]:
    """Sim-vs-proc comparison: every app once per backend, identical
    configs.  The document shows the differential guarantee (identical
    simulated time / message counts / results) next to what only the
    proc backend can measure — wall-clock and real bytes-on-wire.
    """
    out: Dict[str, Any] = {
        "bench": "backends",
        "schema": 1,
        "nodes": nodes,
        # One document covers a run per backend, hence "sim+proc".
        "cluster": _cluster_meta(nodes, backend="sim+proc"),
        "apps": {},
    }
    for app in apps:
        rewritten = rewrite_application(compile_source(app_source(app)))
        sim = _measure(rewritten, nodes, "off")
        proc = _measure(rewritten, nodes, "off", backend="proc")
        deterministic = ("simulated_ms", "messages", "bytes", "fetches",
                         "diffs_sent", "token_transfers", "result")
        out["apps"][app] = {
            "sim": sim,
            "proc": proc,
            "identical": all(sim[k] == proc[k] for k in deterministic),
        }
    return out


#: Instances for the jit bench — scaled up from check size so compiled-
#: method throughput (not compile latency or protocol chatter) dominates
#: the wall clock, matching how a tiered JIT is actually used.
def _jit_sources() -> Dict[str, str]:
    from ..apps import raytracer, series, tsp

    return {
        "series": series.make_source(n_coeffs=60, steps=300),
        "tsp": tsp.make_source(n_cities=9, n_threads=4, seed=42),
        "raytracer": raytracer.make_source(resolution=20),
    }


JIT_MODES: Tuple[str, ...] = ("interp", "jit", "jit-elim2")


def run_jit_bench(nodes: int = 3,
                  apps: Optional[Iterable[str]] = None) -> Dict[str, Any]:
    """Tiered-JIT ablation document (what ``BENCH_9.json`` snapshots).

    Three modes per app: ``interp`` (tier 0), ``jit`` (tier 1 on the
    same bytecode — every deterministic observable must be identical,
    only the wall clock may move), and ``jit-elim2`` (tier 1 on level-2
    check-eliminated bytecode — fewer checks change the simulated
    numbers, which is the point; the mode shows what the JIT+elim stack
    buys end to end).  Wall-clock fields are inherently machine- and
    load-dependent; the deterministic fields are byte-comparable across
    commits like every other bench document.
    """
    import time

    doc: Dict[str, Any] = {
        "bench": "jit",
        "schema": 1,
        "nodes": nodes,
        "cluster": _cluster_meta(nodes),
        "modes": list(JIT_MODES),
        "jit_threshold": 10,
        "app_instances": {
            "series": "n_coeffs=60 steps=300",
            "tsp": "n_cities=9 n_threads=4 seed=42",
            "raytracer": "resolution=20",
        },
        "apps": {},
    }
    sources = _jit_sources()
    for app in (apps or DEFAULT_APPS):
        src = sources[app]
        plain = rewrite_application(compile_source(src))
        elim2 = rewrite_application(compile_source(src), check_elim=2)
        runs: Dict[str, Any] = {}
        for mode, rewritten, jit in (("interp", plain, False),
                                     ("jit", plain, True),
                                     ("jit-elim2", elim2, True)):
            config = RuntimeConfig(num_nodes=nodes, jit_enable=jit,
                                   jit_check_elim=2 if "elim" in mode
                                   else 0)
            runtime = JavaSplitRuntime(rewritten, config)
            t0 = time.perf_counter()
            report = runtime.run()
            wall = time.perf_counter() - t0
            total = report.total_dsm()
            entry: Dict[str, Any] = {
                "simulated_ms": round(report.simulated_ns / 1e6, 6),
                "messages": report.net.messages,
                "bytes": report.net.bytes,
                "fetches": total.fetches,
                "result": repr(report.result),
                "wall_seconds": round(wall, 3),
            }
            if report.jit is not None:
                compiled_entries = sum(
                    report.jit["exit_reasons"].values())
                entry["jit"] = {
                    "compiles": report.jit["compiles"],
                    "compiled_methods": report.jit["compiled_methods"],
                    "deopts": report.jit["deopts"],
                    "blacklisted": sorted(report.jit["blacklisted"]),
                    "exit_reasons": report.jit["exit_reasons"],
                    "deopt_rate": round(
                        report.jit["deopts"] / compiled_entries, 6)
                    if compiled_entries else 0.0,
                }
            runs[mode] = entry
        interp, jit_run = runs["interp"], runs["jit"]
        deterministic = ("simulated_ms", "messages", "bytes", "fetches",
                         "result")
        doc["apps"][app] = {
            "runs": runs,
            "identical": all(interp[k] == jit_run[k]
                             for k in deterministic),
            "speedup_wall": round(
                interp["wall_seconds"] / jit_run["wall_seconds"], 2)
            if jit_run["wall_seconds"] else None,
        }
    return doc


def write_results(doc: Dict[str, Any],
                  out_dir: Path = RESULTS_DIR) -> List[Path]:
    """Write one JSON file per app plus the combined document; returns
    the paths written."""
    out_dir.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for app, entry in doc["apps"].items():
        per_app = {k: v for k, v in doc.items() if k != "apps"}
        per_app["app"] = app
        per_app.update(entry)
        path = out_dir / f"bench_{app}.json"
        path.write_text(json.dumps(per_app, indent=2) + "\n")
        paths.append(path)
    combined = out_dir / "bench_locality.json"
    combined.write_text(json.dumps(doc, indent=2) + "\n")
    paths.append(combined)
    return paths
