"""Table/figure formatting and result emission.

Each benchmark regenerates its paper artefact as a text table, printed
and also written under ``benchmarks/results/`` so a ``--benchmark-only``
run leaves the full set of reproduced tables on disk.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

from .harness import FigureResult
from .micro import AccessLatencyRow, AcquireCostRow

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
    "benchmarks", "results")


def emit(name: str, text: str) -> str:
    """Print a reproduced table and persist it under benchmarks/results."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as fh:
        fh.write(text + "\n")
    return banner


def format_table1(rows_by_brand: dict[str, List[AccessLatencyRow]]) -> str:
    """Heap data access latency, original vs rewritten (paper Table 1)."""
    brands = list(rows_by_brand)
    lines = [
        f"{'':<14}" + "".join(
            f"{b:>12}{'':>12}{'':>10}" for b in brands
        ),
        f"{'access':<14}" + "".join(
            f"{'orig ns':>12}{'rewr ns':>12}{'slowdn':>10}" for _ in brands
        ),
    ]
    kinds = [r.kind for r in rows_by_brand[brands[0]]]
    for i, kind in enumerate(kinds):
        cells = ""
        for b in brands:
            r = rows_by_brand[b][i]
            cells += f"{r.original_ns:>12.1f}{r.rewritten_ns:>12.1f}{r.slowdown:>10.2f}"
        lines.append(f"{kind:<14}" + cells)
    return "\n".join(lines)


def format_table2(rows_by_brand: dict[str, List[AcquireCostRow]]) -> str:
    """Local acquire cost (paper Table 2; acquire+release pair)."""
    brands = list(rows_by_brand)
    variants = [r.variant for r in rows_by_brand[brands[0]]]
    lines = [f"{'variant':<16}" + "".join(f"{b + ' ns/op':>16}" for b in brands)]
    for i, variant in enumerate(variants):
        cells = "".join(
            f"{rows_by_brand[b][i].per_op_ns:>16.1f}" for b in brands
        )
        lines.append(f"{variant:<16}" + cells)
    return "\n".join(lines)


def format_table3(rows_by_brand: dict[str, list]) -> str:
    """Communication latency vs message size (paper Table 3)."""
    brands = list(rows_by_brand)
    lines = [f"{'size (bytes)':<14}" + "".join(f"{b + ' (ms)':>14}" for b in brands)]
    sizes = [size for size, _ in rows_by_brand[brands[0]]]
    for i, size in enumerate(sizes):
        cells = "".join(f"{rows_by_brand[b][i][1]:>14.4f}" for b in brands)
        lines.append(f"{size:<14}" + cells)
    return "\n".join(lines)


def format_figure(results: Sequence[FigureResult]) -> str:
    """Execution times and speedups (paper Table 4 charts)."""
    lines = []
    for res in results:
        lines.append(
            f"{res.app} / {res.brand}: original (1 node, 2 threads) = "
            f"{res.baseline_time_s:.3f}s, result = {res.baseline_result}"
        )
        lines.append(f"{'nodes':>8}{'time (s)':>12}{'speedup':>10}")
        for p in res.points:
            lines.append(f"{p.nodes:>8}{p.time_s:>12.3f}{p.speedup:>10.2f}")
        lines.append("")
    return "\n".join(lines).rstrip()
