"""Figure sweeps (§6.2, Table 4) and ablation runners.

``figure_sweep`` reproduces one application's execution-time/speedup
curve: the baseline is the *original* (un-instrumented) program with two
threads on one simulated dual-CPU machine, exactly the paper's
methodology ("To calculate the speedup, we divide the execution time of
the original Java application with two threads on a single
dual-processor machine by the execution time in JavaSplit"); each
JavaSplit point runs two application threads per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..dsm import DsmConfig
from ..runtime import RunReport, RuntimeConfig, run_distributed, run_original

DEFAULT_NODE_COUNTS = (1, 2, 4, 8, 16)
THREADS_PER_NODE = 2  # dual-processor nodes, as in §6


@dataclass
class SweepPoint:
    nodes: int
    time_s: float
    speedup: float
    report: RunReport = field(repr=False, default=None)


@dataclass
class FigureResult:
    app: str
    brand: str
    baseline_time_s: float
    baseline_result: object
    points: List[SweepPoint]

    def speedup_at(self, nodes: int) -> float:
        for p in self.points:
            if p.nodes == nodes:
                return p.speedup
        raise KeyError(nodes)


def figure_sweep(
    app: str,
    make_source: Callable[[int], str],
    brand: str,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    time_dilation: int = 1,
    dsm: Optional[DsmConfig] = None,
    check_results: bool = True,
) -> FigureResult:
    """Run one app's full scaling curve for one JVM brand.

    ``make_source(n_threads)`` builds the program sized for a thread
    count; every run's application-level result is checked against the
    original execution (the reproduction's correctness gate).
    """
    baseline = run_original(
        source=make_source(THREADS_PER_NODE),
        brand=brand,
        cpus=THREADS_PER_NODE,
        time_dilation=time_dilation,
    )
    points = []
    for nodes in node_counts:
        config = RuntimeConfig(
            num_nodes=nodes,
            cpus_per_node=THREADS_PER_NODE,
            brands=(brand,),
            time_dilation=time_dilation,
            dsm=dsm or DsmConfig(),
        )
        report = run_distributed(
            source=make_source(nodes * THREADS_PER_NODE),
            config=config,
        )
        # Every app in this suite partitions identical per-item work, so
        # its result is thread-count independent; any deviation from the
        # original execution is a coherence bug.
        if check_results and report.result != baseline.result:
            raise AssertionError(
                f"{app}/{brand}/{nodes} nodes: result {report.result} "
                f"differs from the original execution {baseline.result}"
            )
        points.append(SweepPoint(
            nodes=nodes,
            time_s=report.simulated_seconds,
            speedup=baseline.simulated_ns / report.simulated_ns,
            report=report,
        ))
    return FigureResult(app, brand, baseline.simulated_seconds,
                        baseline.result, points)
