"""Micro-benchmark programs and measurement for Tables 1-3.

Methodology mirrors §6.1: each micro-program runs a tight loop whose body
performs one heap access (or synchronization operation); an otherwise
identical baseline loop is subtracted, and the difference divided by the
iteration count gives the per-operation latency.  "Original" numbers come
from the un-instrumented program on one simulated JVM; "rewritten"
numbers from the same program pushed through the full rewriter and run on
a single-node JavaSplit runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..net import SimNetwork
from ..runtime import RuntimeConfig, run_distributed, run_original
from ..sim import SimEngine, get_brand

DEFAULT_ITERS = 20_000

# body / baseline-body pairs; the loop index is `i`, scratch locals are
# `s` (int accumulator) and `u` (int).
_ACCESS_BODIES: Dict[str, Tuple[str, str]] = {
    "field read": ("s += p.x;", "s += u;"),
    "field write": ("p.x = i;", "s = i;"),
    "static read": ("s += Cfg.c;", "s += u;"),
    "static write": ("Cfg.c = i;", "s = i;"),
    "array read": ("s += a[5];", "s += u;"),
    "array write": ("a[5] = i;", "s = i;"),
}

_TEMPLATE = """
class P {{ int x; }}
class Cfg {{ static int c; }}
class Main {{
    static int main() {{
        P p = new P();
        int[] a = new int[16];
        int s = 0;
        int u = 1;
        for (int i = 0; i < {iters}; i++) {{
            {body}
        }}
        return s;
    }}
}}
"""


def access_micro_source(kind: str, iters: int = DEFAULT_ITERS,
                        baseline: bool = False) -> str:
    body, base = _ACCESS_BODIES[kind]
    return _TEMPLATE.format(iters=iters, body=base if baseline else body)


def _sim_ns(source: str, brand: str, rewritten: bool) -> int:
    # Micro-benchmarks are repeated-access loops: bill the "micro"
    # calibration (Table 1/2), not the application profile.
    if rewritten:
        report = run_distributed(
            source=source,
            config=RuntimeConfig(
                num_nodes=1, brands=(brand,), cost_profile="micro"
            ),
        )
    else:
        report = run_original(source=source, brand=brand,
                              cost_profile="micro")
    return report.simulated_ns


@dataclass
class AccessLatencyRow:
    kind: str
    brand: str
    original_ns: float
    rewritten_ns: float

    @property
    def slowdown(self) -> float:
        return self.rewritten_ns / self.original_ns


def measure_access_latency(
    brand: str,
    kinds: List[str] | None = None,
    iters: int = DEFAULT_ITERS,
) -> List[AccessLatencyRow]:
    """Reproduce one brand's half of Table 1."""
    rows = []
    for kind in kinds or list(_ACCESS_BODIES):
        out: Dict[bool, float] = {}
        for rewritten in (False, True):
            t_access = _sim_ns(access_micro_source(kind, iters), brand, rewritten)
            t_base = _sim_ns(
                access_micro_source(kind, iters, baseline=True), brand, rewritten
            )
            out[rewritten] = (t_access - t_base) / iters
        rows.append(AccessLatencyRow(kind, brand, out[False], out[True]))
    return rows


# ---------------------------------------------------------------------------
# Table 2: local acquire cost
# ---------------------------------------------------------------------------
_SYNC_TEMPLATE = """
class Dummy extends Thread {{ void run() {{ }} }}
class Main {{
    static int main() {{
        Object o = new Object();
        Dummy t = new Dummy();
        t.start();
        t.join();
        int s = 0;
        for (int i = 0; i < {iters}; i++) {{
            {body}
        }}
        return s;
    }}
}}
"""


def sync_micro_source(body: str, iters: int) -> str:
    return _SYNC_TEMPLATE.format(iters=iters, body=body)


@dataclass
class AcquireCostRow:
    variant: str   # 'original' | 'local object' | 'shared object'
    brand: str
    per_op_ns: float


def measure_acquire_cost(brand: str, iters: int = 5_000) -> List[AcquireCostRow]:
    """Reproduce one brand's row of Table 2.

    Reported cost is the acquire+release *pair* per loop iteration (the
    paper reports acquire alone; the pair preserves all the orderings and
    ratios the table demonstrates).  Variants:

    * original — plain monitorenter/exit on an un-instrumented JVM;
    * local object — rewritten, lock never contended: the §4.4 counter;
    * shared object — rewritten, lock on a promoted (shared) object
      whose token is locally cached: the full DSM handler.
    """
    sync_body = "synchronized (o) { s += 1; }"
    shared_body = "synchronized (t) { s += 1; }"  # t was started: shared
    plain_body = "s += 1;"
    rows = []
    # original
    t_sync = _sim_ns(sync_micro_source(sync_body, iters), brand, rewritten=False)
    t_plain = _sim_ns(sync_micro_source(plain_body, iters), brand, rewritten=False)
    rows.append(AcquireCostRow("original", brand, (t_sync - t_plain) / iters))
    # rewritten: local object
    t_sync = _sim_ns(sync_micro_source(sync_body, iters), brand, rewritten=True)
    t_plain = _sim_ns(sync_micro_source(plain_body, iters), brand, rewritten=True)
    rows.append(AcquireCostRow("local object", brand, (t_sync - t_plain) / iters))
    # rewritten: shared object
    t_shared = _sim_ns(sync_micro_source(shared_body, iters), brand, rewritten=True)
    rows.append(AcquireCostRow("shared object", brand, (t_shared - t_plain) / iters))
    return rows


# ---------------------------------------------------------------------------
# Table 3: communication latency
# ---------------------------------------------------------------------------
MESSAGE_SIZES = (65, 650, 6_500, 65_000)


def measure_comm_latency(brand: str, sizes=MESSAGE_SIZES) -> List[Tuple[int, float]]:
    """One-way message latency (ms) between two nodes of one brand."""
    engine = SimEngine()
    net = SimNetwork(engine)
    cm = get_brand(brand)
    net.attach(0, cm, lambda m: None)
    net.attach(1, cm, lambda m: None)
    return [
        (size, net.latency_ns(0, 1, size) / 1e6)
        for size in sizes
    ]
