"""Benchmark harness: workload generators, sweeps, table formatters.

One module per concern: :mod:`~repro.bench.micro` (Tables 1-3
micro-benchmarks), :mod:`~repro.bench.harness` (figure sweeps),
:mod:`~repro.bench.tables` (formatting + persistence under
``benchmarks/results/``), :mod:`~repro.bench.jsonbench`
(machine-readable locality on/off runs behind ``repro bench --json``).
"""

from .harness import (
    DEFAULT_NODE_COUNTS,
    THREADS_PER_NODE,
    FigureResult,
    SweepPoint,
    figure_sweep,
)
from .micro import (
    AccessLatencyRow,
    AcquireCostRow,
    MESSAGE_SIZES,
    access_micro_source,
    measure_access_latency,
    measure_acquire_cost,
    measure_comm_latency,
)
from .jsonbench import (DEFAULT_APPS, bench_app, run_backend_bench,
                        run_bench, run_jit_bench, run_policy_bench,
                        write_results)
from .tables import emit, format_figure, format_table1, format_table2, format_table3

__all__ = [
    "DEFAULT_NODE_COUNTS", "THREADS_PER_NODE", "FigureResult", "SweepPoint",
    "figure_sweep",
    "AccessLatencyRow", "AcquireCostRow", "MESSAGE_SIZES",
    "access_micro_source", "measure_access_latency", "measure_acquire_cost",
    "measure_comm_latency",
    "DEFAULT_APPS", "bench_app", "run_bench", "run_backend_bench",
    "run_jit_bench", "run_policy_bench", "write_results",
    "emit", "format_figure", "format_table1", "format_table2",
    "format_table3",
]
