"""Causal span tracing: spans, recorder, and trace exporters.

A *span* is one timed piece of a protocol transaction (a fetch
round-trip, one forwarding hop of a lock request, a recovery phase...).
Spans carry a ``parent_id`` so the hops of a transaction chain into a
tree rooted at the transaction that started it; the root's id doubles
as the Chrome trace-event async ``id``, which is what makes Perfetto
nest the whole tree on one track.

Span ids are plain integers from a deterministic counter, so traces of
the same seeded run are identical byte-for-byte. Ids travel between
nodes piggybacked on existing protocol payloads (see
:data:`repro.net.message.OBS_SPAN_KEY`); this module knows nothing
about the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass
class Span:
    span_id: int
    name: str
    node: int
    start_ns: int
    parent_id: Optional[int] = None
    end_ns: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> Optional[int]:
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    def as_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "attrs": dict(self.attrs),
        }


class SpanRecorder:
    """Collects spans with a deterministic id sequence and a hard cap.

    Once ``max_spans`` spans have been opened, further opens are
    counted in :attr:`dropped` and return id 0 (a sentinel no span ever
    gets; closing or parenting on it is a silent no-op), so a hot run
    degrades to truncated output instead of unbounded memory.
    """

    def __init__(self, now: Callable[[], int],
                 max_spans: int = 200_000) -> None:
        self._now = now
        self._next_id = 1
        self.max_spans = max_spans
        self.spans: Dict[int, Span] = {}
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.spans)

    # ------------------------------------------------------------------
    def open(self, name: str, node: int, parent: Optional[int] = None,
             **attrs: Any) -> int:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return 0
        span_id = self._next_id
        self._next_id += 1
        self.spans[span_id] = Span(span_id, name, node, self._now(),
                                   parent_id=parent or None, attrs=attrs)
        return span_id

    def close(self, span_id: int, **attrs: Any) -> Optional[Span]:
        span = self.spans.get(span_id)
        if span is None or span.end_ns is not None:
            return None
        span.end_ns = self._now()
        if attrs:
            span.attrs.update(attrs)
        return span

    def complete(self, name: str, node: int, start_ns: int, end_ns: int,
                 parent: Optional[int] = None, **attrs: Any) -> int:
        """Record a span whose interval is already known (e.g. a handler
        that schedules its reply ``delay`` in the future)."""
        span_id = self.open(name, node, parent=parent, **attrs)
        if span_id:
            span = self.spans[span_id]
            span.start_ns = start_ns
            span.end_ns = end_ns
        return span_id

    def instant(self, name: str, node: int, parent: Optional[int] = None,
                **attrs: Any) -> int:
        t = self._now()
        return self.complete(name, node, t, t, parent=parent, **attrs)

    # ------------------------------------------------------------------
    def root_of(self, span_id: int) -> int:
        """Walk parents to the root id (cycle-safe)."""
        seen = set()
        while True:
            span = self.spans.get(span_id)
            if span is None or span.parent_id is None or span_id in seen:
                return span_id
            seen.add(span_id)
            span_id = span.parent_id

    def depth_of(self, span_id: int) -> int:
        """Number of ancestors above this span (root -> 0)."""
        depth = 0
        seen = set()
        while True:
            span = self.spans.get(span_id)
            if span is None or span.parent_id is None or span_id in seen:
                return depth
            seen.add(span_id)
            span_id = span.parent_id
            depth += 1

    def ancestry(self, span_id: int) -> List[str]:
        """Span names from root down to (and including) this span."""
        names: List[str] = []
        seen = set()
        while span_id and span_id not in seen:
            span = self.spans.get(span_id)
            if span is None:
                break
            seen.add(span_id)
            names.append(span.name)
            span_id = span.parent_id or 0
        return list(reversed(names))

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [self.spans[k].as_dict() for k in sorted(self.spans)]

    # ------------------------------------------------------------------
    # Chrome trace-event / Perfetto export
    # ------------------------------------------------------------------
    def to_chrome_trace(self, wall_samples: Optional[List[Tuple[int, int]]]
                        = None) -> Dict[str, Any]:
        """Async-nestable trace-event JSON (load in Perfetto or
        chrome://tracing). All spans of one transaction share the root
        span id as their async ``id``, so the viewer nests them; the
        recording node is exposed as the tid so hops across nodes stay
        on visibly distinct rows inside the nest.

        ``wall_samples`` — (sim_ns, wall_ns) correlation points from
        :class:`~repro.obs.wallclock.WallClockStats` — adds a counter
        lane plotting elapsed wall-clock milliseconds on the same
        sim-time axis as the spans, so sim-cheap / wall-expensive
        stretches (JIT compiles, socket stalls) are visible."""
        events: List[Dict[str, Any]] = []
        for sim_ns, wall_ns in wall_samples or ():
            events.append({
                "name": "wallclock_ms",
                "cat": "wallclock",
                "ph": "C",
                "ts": sim_ns / 1000.0,
                "pid": 0,
                "tid": 0,
                "args": {"wall_ms": wall_ns / 1e6},
            })
        for key in sorted(self.spans):
            span = self.spans[key]
            end_ns = span.end_ns if span.end_ns is not None else span.start_ns
            root = self.root_of(span.span_id)
            args = {"node": span.node, "span_id": span.span_id,
                    "parent_id": span.parent_id}
            args.update(span.attrs)
            base = {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "id": root,
                "pid": 0,
                "tid": span.node,
            }
            if end_ns == span.start_ns:
                events.append({**base, "ph": "n",
                               "ts": span.start_ns / 1000.0, "args": args})
                continue
            events.append({**base, "ph": "b",
                           "ts": span.start_ns / 1000.0, "args": args})
            events.append({**base, "ph": "e", "ts": end_ns / 1000.0,
                           "args": {}})
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"clock": "simulated-ns",
                          "dropped_spans": self.dropped},
        }

    # ------------------------------------------------------------------
    # Speedscope collapsed-stack export
    # ------------------------------------------------------------------
    def to_collapsed(self) -> str:
        """Brendan-Gregg collapsed stacks (speedscope/flamegraph.pl
        input): one ``root;child;leaf weight`` line per span, weighted
        by self time (duration minus closed children)."""
        child_time: Dict[int, int] = {}
        for span in self.spans.values():
            if span.parent_id and span.duration_ns is not None:
                child_time[span.parent_id] = (
                    child_time.get(span.parent_id, 0) + span.duration_ns)
        weights: Dict[str, int] = {}
        for key in sorted(self.spans):
            span = self.spans[key]
            dur = span.duration_ns
            if dur is None:
                continue
            self_ns = max(0, dur - child_time.get(span.span_id, 0))
            if self_ns == 0:
                continue
            names = self.ancestry(span.span_id)
            names[-1] = f"{names[-1]}@n{span.node}"
            stack = ";".join(names)
            weights[stack] = weights.get(stack, 0) + self_ns
        return "".join(f"{stack} {w}\n"
                       for stack, w in sorted(weights.items()))


# ---------------------------------------------------------------------------
# Trace-event validation (CI smoke; no jsonschema dependency available)
# ---------------------------------------------------------------------------
def validate_chrome_trace(doc: Any) -> List[str]:
    """Check a document against the trace-event format rules we rely
    on. Returns a list of problems (empty = valid)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    open_async: Dict[Any, int] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        for req in ("name", "ph", "ts", "pid", "tid"):
            if req not in ev:
                errors.append(f"event {i}: missing required key {req!r}")
        if not isinstance(ev.get("ts"), (int, float)):
            errors.append(f"event {i}: ts is not a number")
        if ph not in ("b", "e", "n", "B", "E", "X", "i", "M", "C"):
            errors.append(f"event {i}: unknown phase {ph!r}")
        if ph in ("b", "e", "n"):
            if "id" not in ev:
                errors.append(f"event {i}: async event missing id")
                continue
            key = (ev.get("name"), ev.get("id"))
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
            elif ph == "e":
                if open_async.get(key, 0) <= 0:
                    errors.append(
                        f"event {i}: 'e' with no matching 'b' for {key}")
                else:
                    open_async[key] -= 1
    for key, n in sorted(open_async.items(), key=repr):
        if n:
            errors.append(f"unclosed async span(s): {key} x{n}")
    return errors
