"""Telemetry subsystem (`obs`): metrics registry, causal span tracing,
and stall-attribution profiling for the MTS-HLRC runtime.

Three independent knobs on :class:`~repro.runtime.config.RuntimeConfig`:

``obs_metrics``
    Per-node counters/gauges/log-bucketed histograms sampled into
    sim-time-bucketed series (`repro stats --json`).  Traffic-passive.
``obs_spans``
    Protocol transactions become causal span trees (span ids piggyback
    on protocol payloads), exported as Chrome trace-event / Perfetto
    JSON and speedscope collapsed stacks (`repro profile --trace`).
    Adds measured wire bytes — the only obs knob with traffic presence.
``obs_profile``
    Every thread wait (fetch stall, lock wait, monitor wait) is charged
    to the blocking bytecode site and coherency unit; top-N hot-site /
    hot-unit reports (`repro profile`).  Traffic-passive.

All off (the default): byte-identical runs, no obs object constructed.
"""

from .flight import (FlightRecorder, build_dump, validate_flight_dump,
                     write_dump)
from .manager import ObsAgent, ObsManager, current_site
from .metrics import Histogram, MetricsRegistry
from .profiler import StallProfiler, site_label
from .spans import Span, SpanRecorder, validate_chrome_trace
from .wallclock import WallClockStats

__all__ = [
    "ObsManager",
    "ObsAgent",
    "current_site",
    "MetricsRegistry",
    "Histogram",
    "StallProfiler",
    "site_label",
    "Span",
    "SpanRecorder",
    "validate_chrome_trace",
    "WallClockStats",
    "FlightRecorder",
    "build_dump",
    "write_dump",
    "validate_flight_dump",
]
