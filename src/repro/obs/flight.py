"""Flight recorder: bounded rings of recent events, dumped on failure.

Each node (master-side worker object *and* proc-backend OS worker)
keeps a ``deque(maxlen=N)`` of its last protocol / jit / serve events,
every event stamped with both clocks::

    {"kind": "dsm.fetch", "wall_ns": ..., "sim_ns": ..., **detail}

On SIGKILL detection, oracle/monitor violation, or ``WireError`` the
rings are merged into one JSON postmortem — turning "exitcode ==
-SIGKILL" into an ordered record of what every node was doing when the
run died.  Recording is passive (append to an in-memory deque); the
proc workers ship their rings over the ctrl channel with msg_id 0, so
the sim schedule is untouched.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = [
    "FlightRecorder",
    "build_dump",
    "write_dump",
    "validate_flight_dump",
]

#: Schema version stamped into every dump.
FLIGHT_SCHEMA = 1

_dump_seq = 0


class FlightRecorder:
    """Bounded ring of recent events for one node."""

    __slots__ = ("node", "ring")

    def __init__(self, node: int, maxlen: int = 256) -> None:
        self.node = node
        self.ring: Deque[Dict[str, Any]] = deque(maxlen=maxlen)

    def record(self, kind: str, sim_ns: int, **detail: Any) -> None:
        event: Dict[str, Any] = {
            "kind": kind,
            "wall_ns": time.monotonic_ns(),
            "sim_ns": sim_ns,
        }
        if detail:
            event.update(detail)
        self.ring.append(event)

    def snapshot(self) -> List[Dict[str, Any]]:
        return list(self.ring)

    def __len__(self) -> int:
        return len(self.ring)


def build_dump(
    reason: str,
    detail: Optional[Dict[str, Any]],
    nodes: Dict[int, Dict[str, List[Dict[str, Any]]]],
    sim_ns: int,
    backend: str,
) -> Dict[str, Any]:
    """Assemble the postmortem document.

    ``nodes`` maps node id -> {"events": [...], "worker_events": [...]}
    where ``events`` is the master-side ring and ``worker_events`` the
    ring shipped from the proc-backend OS worker (empty on sim).
    """
    return {
        "flight": FLIGHT_SCHEMA,
        "reason": reason,
        "detail": detail or {},
        "sim_ns": sim_ns,
        "wall_ns": time.monotonic_ns(),
        "backend": backend,
        "nodes": {
            str(node): {
                "events": rings.get("events", []),
                "worker_events": rings.get("worker_events", []),
            }
            for node, rings in sorted(nodes.items())
        },
    }


def write_dump(doc: Dict[str, Any], directory: str) -> str:
    """Write one dump to ``directory`` and return its path."""
    global _dump_seq
    _dump_seq += 1
    os.makedirs(directory, exist_ok=True)
    name = f"flight-{doc['reason']}-{os.getpid()}-{_dump_seq}.json"
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def validate_flight_dump(doc: Dict[str, Any]) -> List[str]:
    """Schema check for a flight dump; returns a list of problems."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["dump is not an object"]
    if doc.get("flight") != FLIGHT_SCHEMA:
        errors.append(f"bad flight schema version: {doc.get('flight')!r}")
    for key, kind in (("reason", str), ("sim_ns", int), ("wall_ns", int),
                      ("backend", str), ("detail", dict), ("nodes", dict)):
        if not isinstance(doc.get(key), kind):
            errors.append(f"missing or mistyped key {key!r}")
    for node, rings in (doc.get("nodes") or {}).items():
        if not isinstance(rings, dict):
            errors.append(f"node {node}: entry is not an object")
            continue
        for ring_name in ("events", "worker_events"):
            events = rings.get(ring_name)
            if not isinstance(events, list):
                errors.append(f"node {node}: {ring_name} is not a list")
                continue
            for i, event in enumerate(events):
                if not isinstance(event, dict):
                    errors.append(
                        f"node {node}: {ring_name}[{i}] not an object")
                    continue
                if not isinstance(event.get("kind"), str):
                    errors.append(
                        f"node {node}: {ring_name}[{i}] missing kind")
                if not isinstance(event.get("wall_ns"), int):
                    errors.append(
                        f"node {node}: {ring_name}[{i}] missing wall_ns")
                if not isinstance(event.get("sim_ns"), int):
                    errors.append(
                        f"node {node}: {ring_name}[{i}] missing sim_ns")
    return errors
