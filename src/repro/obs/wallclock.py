"""Wall-clock telemetry: monotonic-time histograms per node.

Everything simulated in this repo runs on the deterministic sim clock;
this module is the one place that reads the *real* clock.  It is
strictly passive — observations never touch message payloads or
schedule simulation events, so turning ``obs_wallclock`` on leaves the
sim schedule byte-identical (verified by test).

Metric names in play:

- ``net.rtt_ns``          master relay -> CTRL_ARRIVED round trip
- ``wire.encode_ns``      frame encode time (master codec)
- ``wire.decode_ns``      frame decode time (master codec)
- ``worker.loop_lag_ns``  proc-worker event-loop iteration time
- ``worker.wire_*_ns``    proc-worker ctrl-plane codec time
- ``jit.compile_ns``      per-method bytecode -> Python compile time
- ``jit.quantum.*_ns``    per-quantum interpreter vs JIT wall time
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Tuple

from .metrics import Histogram

__all__ = ["WallClockStats"]

#: Cap on (sim_ns, wall_ns) correlation samples kept for trace export.
MAX_SAMPLES = 20_000


class WallClockStats:
    """Per-node monotonic-clock counters + histograms.

    The registry half mirrors :class:`MetricsRegistry` but deliberately
    has no sim-time series (wall metrics have no meaningful sim bucket)
    and supports *replace* semantics (:meth:`set_counter`,
    :meth:`set_hist`) because proc workers ship cumulative snapshots,
    not increments.
    """

    def __init__(self) -> None:
        self.t0_ns = time.monotonic_ns()
        self._counters: Dict[Tuple[str, int], int] = {}
        self._hists: Dict[Tuple[str, int], Histogram] = {}
        # (sim_ns, wall_ns) pairs for the Perfetto wall-clock lane.
        self.samples: List[Tuple[int, int]] = []

    # -- recording -----------------------------------------------------
    def inc(self, name: str, node: int, n: int = 1) -> None:
        key = (name, node)
        self._counters[key] = self._counters.get(key, 0) + n

    def set_counter(self, name: str, node: int, value: int) -> None:
        """Replace a counter with a worker-shipped cumulative value."""
        self._counters[(name, node)] = int(value)

    def observe(self, name: str, node: int, ns: int) -> None:
        key = (name, node)
        hist = self._hists.get(key)
        if hist is None:
            hist = self._hists[key] = Histogram()
        hist.observe(ns)

    def set_hist(self, name: str, node: int, doc: Dict[str, Any]) -> None:
        """Replace a histogram with a worker-shipped cumulative dump."""
        self._hists[(name, node)] = Histogram.from_dict(doc)

    def sample(self, sim_ns: int) -> None:
        """Record one (sim, wall) correlation point."""
        if len(self.samples) >= MAX_SAMPLES:
            return
        if self.samples and self.samples[-1][0] == sim_ns:
            return
        self.samples.append((sim_ns, time.monotonic_ns() - self.t0_ns))

    # -- querying ------------------------------------------------------
    def nodes(self) -> List[int]:
        seen = {n for _, n in self._counters} | {n for _, n in self._hists}
        return sorted(seen)

    def histogram(self, name: str) -> Histogram:
        """Cluster-wide view: the named histogram merged over nodes."""
        merged = Histogram()
        for (n, _node), hist in self._hists.items():
            if n == name:
                merged.merge(hist)
        return merged

    def counter_total(self, name: str) -> int:
        return sum(v for (n, _), v in self._counters.items() if n == name)

    def as_dict(self) -> Dict[str, Any]:
        counters: Dict[str, Dict[str, Any]] = {}
        for (name, node), value in sorted(self._counters.items()):
            entry = counters.setdefault(name, {"total": 0, "by_node": {}})
            entry["total"] += value
            entry["by_node"][str(node)] = value
        hists: Dict[str, Dict[str, Any]] = {}
        for (name, node), hist in sorted(self._hists.items()):
            entry = hists.setdefault(name, {"merged": None, "by_node": {}})
            entry["by_node"][str(node)] = hist.as_dict()
        for name in hists:
            hists[name]["merged"] = self.histogram(name).as_dict()
        return {
            "wall_elapsed_ns": time.monotonic_ns() - self.t0_ns,
            "counters": counters,
            "histograms": hists,
            "samples": len(self.samples),
        }

    def by_node(self) -> Dict[str, Dict[str, Any]]:
        """Compact per-node export for the bench JSON: counter values
        plus count/mean/max per histogram."""
        out: Dict[str, Dict[str, Any]] = {}
        for (name, node), value in sorted(self._counters.items()):
            out.setdefault(str(node), {})[name] = value
        for (name, node), hist in sorted(self._hists.items()):
            out.setdefault(str(node), {})[name] = {
                "count": hist.count,
                "mean": round(hist.mean, 1),
                "max": hist.max,
            }
        return out
