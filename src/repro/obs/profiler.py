"""Stall-attribution profiler.

Whenever a JVM thread blocks on the protocol (fetch miss, lock
acquire, monitor wait, barrier), the DSM opens a *stall* charged to the
bytecode site that blocked (class/method/pc/line) and the coherency
unit involved; when the thread resumes, the elapsed simulated time is
added to that (kind, site, unit) bucket. The reports answer "where did
the simulated time go?" — top-N hot bytecode sites and hot units.

Attribution is first-blocker-wins: re-executed access checks (the
interpreter re-runs the faulting instruction after a miss) hit
``open_stall`` again for the same tid and are ignored until the stall
closes, so one logical wait is charged exactly once.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

# (class, method, pc, line) — the idiom the race detector also uses.
Site = Tuple[str, str, int, int]


def site_label(site: Optional[Site]) -> str:
    if site is None:
        return "<unknown>"
    klass, method, pc, line = site
    return f"{klass}.{method}:{line}(pc={pc})"


class StallProfiler:
    def __init__(self, now: Callable[[], int]) -> None:
        self._now = now
        # tid -> (start_ns, kind, site, unit)
        self._open: Dict[int, Tuple[int, str, Optional[Site], str]] = {}
        # (kind, site, unit) -> [total_ns, count]
        self._charges: Dict[Tuple[str, Optional[Site], str], List[int]] = {}
        self.stalls = 0

    # ------------------------------------------------------------------
    def open_stall(self, tid: int, kind: str, site: Optional[Site],
                   unit: str) -> None:
        if tid in self._open:
            return
        self._open[tid] = (self._now(), kind, site, unit)

    def close_stall(self, tid: int) -> int:
        entry = self._open.pop(tid, None)
        if entry is None:
            return 0
        start_ns, kind, site, unit = entry
        elapsed = self._now() - start_ns
        bucket = self._charges.setdefault((kind, site, unit), [0, 0])
        bucket[0] += elapsed
        bucket[1] += 1
        self.stalls += 1
        return elapsed

    def close_all(self) -> None:
        """Charge anything still open (threads parked at exit)."""
        for tid in list(self._open):
            self.close_stall(tid)

    # ------------------------------------------------------------------
    @property
    def total_stall_ns(self) -> int:
        return sum(v[0] for v in self._charges.values())

    def by_kind(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for (kind, _site, _unit), (ns, count) in self._charges.items():
            entry = out.setdefault(kind, {"stall_ns": 0, "stalls": 0})
            entry["stall_ns"] += ns
            entry["stalls"] += count
        return out

    def _top(self, key_of: Callable[[Tuple[str, Optional[Site], str]], Any],
             n: int) -> List[Tuple[Any, int, int]]:
        agg: Dict[Any, List[int]] = {}
        for full_key, (ns, count) in self._charges.items():
            bucket = agg.setdefault(key_of(full_key), [0, 0])
            bucket[0] += ns
            bucket[1] += count
        ranked = sorted(agg.items(), key=lambda kv: (-kv[1][0], repr(kv[0])))
        return [(key, ns, count) for key, (ns, count) in ranked[:n]]

    def top_sites(self, n: int = 10) -> List[Tuple[Optional[Site], int, int]]:
        """[(site, stall_ns, stalls)] sorted by time, heaviest first."""
        return self._top(lambda key: key[1], n)

    def top_units(self, n: int = 10) -> List[Tuple[str, int, int]]:
        """[(unit_label, stall_ns, stalls)] sorted by time."""
        return self._top(lambda key: key[2], n)

    # ------------------------------------------------------------------
    def report(self, top_n: int = 10) -> Dict[str, Any]:
        return {
            "total_stall_ns": self.total_stall_ns,
            "stalls": self.stalls,
            "by_kind": self.by_kind(),
            "hot_sites": [
                {"site": site_label(site), "class": site[0] if site else None,
                 "method": site[1] if site else None,
                 "pc": site[2] if site else None,
                 "line": site[3] if site else None,
                 "stall_ns": ns, "stalls": count}
                for site, ns, count in self.top_sites(top_n)
            ],
            "hot_units": [
                {"unit": unit, "stall_ns": ns, "stalls": count}
                for unit, ns, count in self.top_units(top_n)
            ],
        }

    def format(self, top_n: int = 10) -> str:
        lines = [f"total stall time: {self.total_stall_ns / 1e6:.3f} ms "
                 f"across {self.stalls} stalls"]
        for kind, entry in sorted(self.by_kind().items()):
            lines.append(f"  {kind:<10} {entry['stall_ns'] / 1e6:>10.3f} ms"
                         f"  ({entry['stalls']} stalls)")
        lines.append("hot units:")
        for unit, ns, count in self.top_units(top_n):
            lines.append(f"  {ns / 1e6:>10.3f} ms  {count:>6}  {unit}")
        lines.append("hot sites:")
        for site, ns, count in self.top_sites(top_n):
            lines.append(f"  {ns / 1e6:>10.3f} ms  {count:>6}  "
                         f"{site_label(site)}")
        return "\n".join(lines)
