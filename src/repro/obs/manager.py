"""ObsManager: wires the telemetry subsystem into a runtime.

One manager per :class:`~repro.runtime.javasplit.JavaSplitRuntime`
(when any ``obs_*`` knob is on).  It owns the shared collectors —
:class:`~repro.obs.metrics.MetricsRegistry`,
:class:`~repro.obs.spans.SpanRecorder`,
:class:`~repro.obs.profiler.StallProfiler` — and attaches one
:class:`ObsAgent` per worker as ``worker.dsm.obs``, the hook surface
the protocol calls at every transaction boundary.

Passivity contract: with only ``obs_metrics``/``obs_profile`` on,
nothing here touches a message payload, adds a byte, or schedules an
event, so traffic and simulated time are identical to a bare run.
``obs_spans`` is the one knob with wire presence: it piggybacks span
ids on protocol payloads (:data:`~repro.net.message.OBS_SPAN_KEY`) so
causal trees survive forwarding across nodes, and bills those bytes
explicitly (see :data:`SPAN_KEY_BYTES`) — that cost is what
EXPERIMENTS.md measures.
"""

from __future__ import annotations

import tempfile
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..net.message import OBS_SPAN_KEY, Message
from ..net.wire import set_wire_timer
from .flight import FlightRecorder, build_dump, write_dump
from .metrics import MetricsRegistry
from .profiler import StallProfiler, site_label
from .spans import SpanRecorder
from .wallclock import WallClockStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.javasplit import JavaSplitRuntime
    from ..runtime.worker import WorkerNode

# Wire cost of one piggybacked span id: key tag + 64-bit id.  Billed on
# every stamped payload whose message size is computed explicitly (the
# auto-estimated payloads pick the key up through estimate_size).
SPAN_KEY_BYTES = 12
# Extra wire bytes per queue/waitq entry shipped inside a lock token
# (the 6th, obs_span tuple element).
TOKEN_ENTRY_BYTES = 8


def current_site(thread: Any) -> Optional[Tuple[str, str, int, int]]:
    """(class, method, pc, line) of the instruction the thread is
    blocked on — same idiom the race detector uses for access sites."""
    frames = getattr(thread, "frames", None)
    if not frames:
        return None
    frame = frames[-1]
    method = frame.method
    if not (0 <= frame.pc < len(method.code)):
        return None
    instr = method.code[frame.pc]
    return (method.klass, method.name, frame.pc, instr.line)


class ObsManager:
    """Telemetry subsystem root, attached to one runtime."""

    def __init__(self, runtime: "JavaSplitRuntime") -> None:
        self.runtime = runtime
        cfg = runtime.config
        now = lambda: runtime.engine.now  # noqa: E731 - tiny closure
        self.metrics: Optional[MetricsRegistry] = None
        if cfg.obs_metrics:
            self.metrics = MetricsRegistry(now, cfg.obs_metrics_bucket_ns)
        self.spans: Optional[SpanRecorder] = None
        if cfg.obs_spans:
            self.spans = SpanRecorder(now, cfg.obs_max_spans)
        self.profiler: Optional[StallProfiler] = None
        if cfg.obs_profile:
            self.profiler = StallProfiler(now)
        self.top_n = cfg.obs_top_n
        self.agents: Dict[int, ObsAgent] = {}
        # -- wall-clock plane ------------------------------------------
        self.wallclock: Optional[WallClockStats] = None
        if cfg.obs_wallclock:
            self.wallclock = WallClockStats()
        self._flight_enabled = cfg.obs_flight_recorder
        self._flight_events = cfg.obs_flight_events
        self._live = cfg.obs_live_stats
        # node -> master-side flight ring (protocol/jit/serve events).
        self.flight: Dict[int, FlightRecorder] = {}
        # Paths of postmortems written during this run.
        self.flight_dumps: List[str] = []
        self._flight_dir: Optional[str] = cfg.obs_flight_dir
        self._violation_dumped = False
        self._wire_timer_armed = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self) -> None:
        for worker in self.runtime.workers:
            self._attach_worker(worker)
        ft = self.runtime.ft
        if ft is not None:
            ft.orchestrator.on_recovered = self._on_ft_recovered
        # Arm the proc backend's telemetry plane (no-op on sim: plain
        # SimNetwork has no obs_plane attribute).
        net = self.runtime.network
        if (hasattr(net, "obs_plane")
                and (self.wallclock is not None or self._flight_enabled
                     or self._live)):
            net.obs_plane = {
                "wallclock": self.wallclock is not None,
                "flight": self._flight_enabled,
                "flight_events": self._flight_events,
                "live": self._live,
                "period_s": self.runtime.config.obs_live_period_s,
            }
            net.wallclock = self.wallclock
            net.on_flight_dump = self.dump_flight
        if self.wallclock is not None:
            set_wire_timer(self._wire_cb)
            self._wire_timer_armed = True

    def _wire_cb(self, kind: str, elapsed_ns: int) -> None:
        """Codec probe (master process): attribute to the master node."""
        self.wallclock.observe(f"wire.{kind}_ns",
                               self.runtime.config.master_node, elapsed_ns)

    def release_wire_timer(self) -> None:
        """Disarm the module-level codec probe (run() finally block —
        the probe must never outlive the run that armed it)."""
        if self._wire_timer_armed:
            set_wire_timer(None)
            self._wire_timer_armed = False

    def _attach_worker(self, worker: "WorkerNode") -> None:
        agent = ObsAgent(self, worker)
        worker.dsm.obs = agent
        if self.spans is not None:
            worker.transport.obs_on_deliver = agent.on_deliver
        if self._flight_enabled:
            recorder = FlightRecorder(worker.node_id, self._flight_events)
            self.flight[worker.node_id] = recorder
            agent.flight = recorder
        self.agents[worker.node_id] = agent

    def on_worker_added(self, worker: "WorkerNode") -> None:
        self._attach_worker(worker)

    # ------------------------------------------------------------------
    # FT recovery: the orchestrator runs phases 2-7 synchronously at
    # one simulated instant, so the record's timestamps bound the whole
    # transaction: detection -> drain -> repair.
    # ------------------------------------------------------------------
    def _on_ft_recovered(self, record: Dict[str, Any]) -> None:
        master = self.runtime.config.master_node
        if self.metrics is not None:
            self.metrics.inc("ft.recoveries", master)
        if self.spans is None:
            return
        start = record.get("detected_ns", 0)
        end = record.get("recovered_ns", start)
        root = self.spans.complete(
            "ft.recovery", master, start, end,
            dead=record.get("dead"), buddy=record.get("buddy"))
        for phase in ("units_adopted", "tokens_reissued",
                      "diffs_redirected", "fetches_reissued",
                      "lock_requests_reissued", "threads_respawned"):
            self.spans.complete(f"ft.{phase}", master, end, end, parent=root,
                                count=record.get(phase, 0))

    # ------------------------------------------------------------------
    # Flight recorder
    # ------------------------------------------------------------------
    @property
    def flight_enabled(self) -> bool:
        return self._flight_enabled

    def flight_record(self, node: int, kind: str, **detail: Any) -> None:
        """Append one event to a node's master-side flight ring (no-op
        when the recorder is off or the node is unknown)."""
        recorder = self.flight.get(node)
        if recorder is not None:
            recorder.record(kind, self.runtime.engine.now, **detail)

    def dump_flight(self, reason: str,
                    detail: Optional[Dict[str, Any]] = None) -> Optional[str]:
        """Write a postmortem merging every node's master-side ring with
        the events its proc worker last shipped; returns the path (None
        when the recorder is off)."""
        if not self._flight_enabled:
            return None
        net = self.runtime.network
        worker_events = getattr(net, "flight_worker_events", None)
        nodes: Dict[int, Dict[str, List[Dict[str, Any]]]] = {}
        node_ids = set(self.flight) | set(
            getattr(net, "_flight_mirror", {}) or {})
        for node in node_ids:
            recorder = self.flight.get(node)
            nodes[node] = {
                "events": recorder.snapshot() if recorder else [],
                "worker_events": (worker_events(node)
                                  if worker_events is not None else []),
            }
        doc = build_dump(reason, detail, nodes, self.runtime.engine.now,
                         self.runtime.config.transport_backend)
        if self._flight_dir is None:
            self._flight_dir = tempfile.mkdtemp(prefix="repro-flight-")
        path = write_dump(doc, self._flight_dir)
        self.flight_dumps.append(path)
        return path

    def dump_on_violation(self, node: int, kind: str, detail: Any) -> None:
        """Oracle/monitor callback: one postmortem per run, on the
        first violation (later ones would dump near-identical rings)."""
        if self._violation_dumped:
            return
        self._violation_dumped = True
        self.dump_flight("violation",
                         {"node": node, "kind": kind, "detail": str(detail)})

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """End of run: charge stalls still open (threads parked at
        exit) so the report accounts for every blocked nanosecond."""
        if self.profiler is not None:
            self.profiler.close_all()

    def report(self) -> Dict[str, Any]:
        """Telemetry summary for RunReport (JSON-serializable)."""
        out: Dict[str, Any] = {}
        if self.metrics is not None:
            out["metrics"] = self.metrics.as_dict()
        if self.spans is not None:
            out["spans"] = {"count": len(self.spans),
                            "dropped": self.spans.dropped}
        if self.profiler is not None:
            out["profile"] = self.profiler.report(self.top_n)
        if self.wallclock is not None:
            out["wallclock"] = self.wallclock.as_dict()
        if self.flight_dumps:
            out["flight_dumps"] = list(self.flight_dumps)
        return out


class ObsAgent:
    """Per-node hook surface (``dsm.obs``).  Every method is a no-op
    for whichever collectors are off, so the protocol needs exactly one
    guard: ``if self.obs is not None``."""

    def __init__(self, manager: ObsManager, worker: "WorkerNode") -> None:
        self.manager = manager
        self.worker = worker
        self.node_id = worker.node_id
        self.dsm = worker.dsm
        self.metrics = manager.metrics
        self.spans = manager.spans
        self.profiler = manager.profiler
        self.wall = manager.wallclock
        self.flight = None  # set by _attach_worker when the knob is on
        self._now = lambda: worker.dsm.engine.now
        # Delivery context: span ids of the messages currently being
        # dispatched (a stack — aggregated frames dispatch nested).
        self._ctx: List[Optional[int]] = []
        # Open transaction spans keyed by what closes them.
        self._fetch_spans: Dict[Tuple[int, Optional[int]], int] = {}
        self._flush_spans: Dict[int, int] = {}
        self._fence_spans: Dict[int, int] = {}
        self._lock_spans: Dict[int, int] = {}  # tid -> acquire/wait span
        # Transaction start times for the latency histograms, kept
        # independently of spans so a metrics-only run still gets
        # fetch/flush/lock latency distributions.
        self._fetch_t0: Dict[Tuple[int, Optional[int]], int] = {}
        self._flush_t0: Dict[int, int] = {}
        self._lock_t0: Dict[int, int] = {}  # tid -> block time

    # ------------------------------------------------------------------
    def on_deliver(self, msg: Optional[Message]) -> None:
        """Transport dispatch context (push on entry, pop on exit)."""
        if msg is None:
            if self._ctx:
                self._ctx.pop()
            return
        payload = msg.payload
        parent = payload.get(OBS_SPAN_KEY) if isinstance(payload, dict) \
            else None
        self._ctx.append(parent)

    def _parent(self) -> Optional[int]:
        return self._ctx[-1] if self._ctx else None

    def _unit(self, gid: int) -> str:
        obj = self.dsm.cache.get(gid)
        name = getattr(obj, "class_name", None) or "?"
        return f"{name}@{gid:#x}"

    def _stall(self, thread: Any, kind: str, gid: int) -> None:
        if self.profiler is not None:
            self.profiler.open_stall(thread.tid, kind,
                                     current_site(thread), self._unit(gid))

    def _unstall(self, tid: int) -> None:
        if self.profiler is not None:
            self.profiler.close_stall(tid)

    # ------------------------------------------------------------------
    # Remote fetch round-trip
    # ------------------------------------------------------------------
    def on_fetch_block(self, thread: Any, gid: int,
                       region: Optional[int]) -> None:
        """A thread faulted on a unit and is about to block."""
        self._stall(thread, "fetch", gid)

    def on_fetch_start(self, gid: int, region: Optional[int],
                       payload: Optional[Dict[str, Any]]) -> None:
        """First waiter: the fetch request actually goes out (payload
        is None when a locality prefetch already covers it)."""
        if self.metrics is not None:
            self.metrics.inc("dsm.fetch.req", self.node_id)
            self._fetch_t0[(gid, region)] = self._now()
        if self.flight is not None:
            self.flight.record("dsm.fetch", self._now(), gid=gid)
        if self.wall is not None:
            self.wall.sample(self._now())
        if self.spans is None:
            return
        sid = self.spans.open("dsm.fetch", self.node_id,
                              gid=gid, region=region, unit=self._unit(gid))
        self._fetch_spans[(gid, region)] = sid
        if payload is not None and sid:
            payload[OBS_SPAN_KEY] = sid

    def on_fetch_serve(self, requester: int, gid: int, region: Optional[int],
                       start_ns: int, end_ns: int, nbytes: int) -> None:
        """Home side: serialization + reply send (reply lands later)."""
        if self.metrics is not None:
            self.metrics.inc("dsm.fetch.served", self.node_id)
        if self.spans is not None:
            self.spans.complete("dsm.fetch.serve", self.node_id,
                                start_ns, end_ns, parent=self._parent(),
                                to=requester, bytes=nbytes)

    def on_fetch_done(self, gid: int, region: Optional[int],
                      waiter_tids: List[int], nbytes: int) -> None:
        """Requester side: unit installed, waiters about to wake."""
        if self.spans is not None:
            sid = self._fetch_spans.pop((gid, region), None)
            if sid is not None:
                self.spans.close(sid, bytes=nbytes)
        if self.metrics is not None:
            t0 = self._fetch_t0.pop((gid, region), None)
            if t0 is not None:
                self.metrics.observe("dsm.fetch.latency_ns",
                                     self.node_id, self._now() - t0)
            self.metrics.observe("dsm.fetch.bytes", self.node_id, nbytes)
        for tid in waiter_tids:
            self._unstall(tid)

    # ------------------------------------------------------------------
    # Diff flush -> fenced ack
    # ------------------------------------------------------------------
    def on_flush(self, home: int, ack_id: int,
                 payload: Dict[str, Any], n_entries: int,
                 diff_bytes: int) -> int:
        """A diff message is about to go out.  Returns the extra wire
        bytes obs adds (span-id piggyback), 0 when spans are off."""
        if self.metrics is not None:
            self.metrics.inc("dsm.diff.sent", self.node_id)
            self.metrics.observe("dsm.diff.bytes", self.node_id, diff_bytes)
            self._flush_t0[ack_id] = self._now()
        if self.flight is not None:
            self.flight.record("dsm.flush", self._now(),
                               home=home, ack_id=ack_id)
        if self.wall is not None:
            self.wall.sample(self._now())
        if self.spans is None:
            return 0
        sid = self.spans.open("dsm.flush", self.node_id, home=home,
                              ack_id=ack_id, entries=n_entries)
        if not sid:
            return 0
        self._flush_spans[ack_id] = sid
        payload[OBS_SPAN_KEY] = sid
        return SPAN_KEY_BYTES

    def on_diff_apply(self, src: int, ack_id: int, n_entries: int,
                      start_ns: int, end_ns: int) -> None:
        """Home side: entries applied, ack scheduled for end_ns."""
        if self.metrics is not None:
            self.metrics.inc("dsm.diff.applied", self.node_id)
        if self.spans is not None:
            self.spans.complete("dsm.diff.apply", self.node_id,
                                start_ns, end_ns, parent=self._parent(),
                                src=src, entries=n_entries)

    def on_diff_ack(self, ack_id: int) -> None:
        """Writer side: the fenced ack came back."""
        if self.metrics is not None:
            t0 = self._flush_t0.pop(ack_id, None)
            if t0 is not None:
                self.metrics.observe("dsm.flush.rtt_ns", self.node_id,
                                     self._now() - t0)
        if self.spans is not None:
            sid = self._flush_spans.pop(ack_id, None)
            if sid is not None:
                self.spans.close(sid)

    # ------------------------------------------------------------------
    # Lock acquire end-to-end (manager forwarding, token transit)
    # ------------------------------------------------------------------
    def on_lock_block(self, thread: Any, gid: int,
                      kind: str = "lock") -> Optional[int]:
        """A thread blocks for a lock token (or parks in dsm_wait).
        Returns the root span id for payload/request stamping."""
        self._stall(thread, kind, gid)
        if self.metrics is not None:
            self.metrics.inc(f"dsm.{kind}.block", self.node_id)
            self._lock_t0[thread.tid] = self._now()
        if self.spans is None:
            return None
        name = "dsm.lock.acquire" if kind == "lock" else "dsm.lock.wait"
        sid = self.spans.open(name, self.node_id, gid=gid,
                              tid=thread.tid, unit=self._unit(gid))
        if sid:
            self._lock_spans[thread.tid] = sid
        return sid or None

    def on_lock_route(self, payload: Dict[str, Any], target: int) -> None:
        """Manager/chase node forwards a lock request one more hop."""
        if self.metrics is not None:
            self.metrics.inc("dsm.lock.fwd", self.node_id)
        if self.spans is None:
            return
        incoming = payload.get(OBS_SPAN_KEY)
        self._close_hop(incoming)
        hop = self.spans.open("dsm.lock.hop", self.node_id,
                              parent=incoming, to=target)
        if hop:
            payload[OBS_SPAN_KEY] = hop

    def _close_hop(self, span_id: Optional[int]) -> None:
        if span_id is None:
            return
        span = self.spans.spans.get(span_id)
        if span is not None and span.name == "dsm.lock.hop":
            self.spans.close(span_id)

    def on_lock_enqueue(self, payload: Dict[str, Any], req: Any) -> None:
        """The request reached the token holder and parked in its
        queue; remember the causal chain on the request itself so the
        eventual token grant can parent to it."""
        if self.spans is None:
            return
        incoming = payload.get(OBS_SPAN_KEY)
        self._close_hop(incoming)
        req.obs_span = incoming

    def on_fence_enter(self, gid: int, req: Any) -> None:
        """Token grant is gated on the release fence (§3.1): open a
        fence span so the wait shows up in the acquire tree."""
        if self.spans is None:
            return
        sid = self.spans.open("dsm.fence", self.node_id, gid=gid,
                              parent=getattr(req, "obs_span", None))
        if sid:
            self._fence_spans[gid] = sid

    def on_token_send(self, gid: int, req: Any,
                      payload: Dict[str, Any]) -> int:
        """Token is leaving for the grantee.  Returns extra wire bytes
        (span key + per-entry obs_span slots), 0 when spans are off."""
        if self.metrics is not None:
            self.metrics.inc("dsm.token.sent", self.node_id)
        if self.flight is not None:
            self.flight.record("dsm.token", self._now(),
                               gid=gid, to=req.node)
        if self.spans is None:
            return 0
        fence = self._fence_spans.pop(gid, None)
        if fence is not None:
            self.spans.close(fence)
        sid = self.spans.open("dsm.token", self.node_id, gid=gid,
                              parent=getattr(req, "obs_span", None),
                              to=req.node)
        if not sid:
            return 0
        payload[OBS_SPAN_KEY] = sid
        return SPAN_KEY_BYTES + TOKEN_ENTRY_BYTES * (
            len(payload.get("queue", ())) + len(payload.get("waitq", ())))

    def on_token_arrive(self, payload: Dict[str, Any], gid: int) -> None:
        if self.metrics is not None:
            self.metrics.inc("dsm.token.recv", self.node_id)
        if self.spans is None:
            return
        sid = payload.get(OBS_SPAN_KEY)
        if sid is None:
            return
        self.spans.close(sid)
        if self.metrics is not None:
            hops = sum(1 for name in self.spans.ancestry(sid)
                       if name == "dsm.lock.hop")
            self.metrics.observe("dsm.lock.hops", self.node_id, hops)

    def on_lock_granted(self, tid: int, gid: int) -> None:
        """The blocked thread owns the lock (always runs on its own
        node, whether the grant was local or arrived by token)."""
        self._unstall(tid)
        if self.metrics is not None:
            t0 = self._lock_t0.pop(tid, None)
            if t0 is not None:
                self.metrics.observe("dsm.lock.wait_ns", self.node_id,
                                     self._now() - t0)
        if self.spans is not None:
            sid = self._lock_spans.pop(tid, None)
            if sid is not None:
                self.spans.close(sid)

    # ------------------------------------------------------------------
    def format_profile(self) -> str:
        if self.profiler is None:
            return "profiler off"
        return self.profiler.format(self.manager.top_n)


__all__ = ["ObsManager", "ObsAgent", "current_site", "site_label",
           "SPAN_KEY_BYTES", "TOKEN_ENTRY_BYTES"]
