"""Metrics registry: counters, gauges, log-bucketed histograms.

Every metric is scoped per node (the registry is shared by all of one
runtime's :class:`~repro.obs.manager.ObsAgent` instances) and every
update also lands in a sim-time-bucketed series, so the output answers
both "how much in total / per node?" and "when during the run?".

All of it is passive observation: no metric update touches a message
payload or schedules a simulation event, which is what makes the
``obs_metrics`` knob traffic- and time-neutral (verified by test).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple


class Histogram:
    """Log2-bucketed histogram of non-negative integer samples.

    Bucket ``k`` holds samples with ``2^(k-1) < v <= 2^k`` (bucket 0
    holds ``v <= 1``), i.e. the bucket index is ``(v - 1).bit_length()``
    — cheap, exact for the power-of-two upper bounds, and wide enough
    for nanosecond latencies without tuning.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: int) -> None:
        value = int(value)
        if value < 0:
            value = 0
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        k = (value - 1).bit_length() if value > 1 else 0
        self.buckets[k] = self.buckets.get(k, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> int:
        """q-quantile estimate (0 < q <= 1) with within-bucket linear
        interpolation.

        The target rank is placed proportionally inside its log2 bucket
        ``(2^(k-1), 2^k]`` (``[0, 1]`` for bucket 0), then clamped to
        the observed ``[min, max]`` — so a single-valued histogram
        returns that exact value, and tail quantiles never exceed the
        largest sample.  Far tighter than the upper bucket bound for
        latency SLOs (p99/p999 of wide buckets)."""
        if not self.count:
            return 0
        target = max(1, int(q * self.count + 0.999999))
        seen = 0
        for k in sorted(self.buckets):
            n = self.buckets[k]
            if seen + n >= target:
                lo = 0 if k == 0 else (1 << (k - 1))
                hi = 1 << k
                value = lo + (target - seen) / n * (hi - lo)
                break
            seen += n
        else:  # pragma: no cover - defensive
            value = 1 << max(self.buckets)
        assert self.min is not None and self.max is not None
        return int(round(min(max(value, self.min), self.max)))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 3),
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
            "buckets": {str(1 << k): n
                        for k, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Histogram":
        """Inverse of :meth:`as_dict` (quantiles are re-derived).

        Used to rehydrate histograms shipped from proc-backend workers
        so they can be merged into the cluster-wide view."""
        hist = cls()
        hist.count = int(doc.get("count", 0))
        hist.total = int(doc.get("total", 0))
        hist.min = doc.get("min")
        hist.max = doc.get("max")
        for bound, n in doc.get("buckets", {}).items():
            k = max(0, int(bound).bit_length() - 1)
            hist.buckets[k] = hist.buckets.get(k, 0) + int(n)
        return hist

    def merge(self, other: "Histogram") -> "Histogram":
        self.count += other.count
        self.total += other.total
        for bound in ("min", "max"):
            a, b = getattr(self, bound), getattr(other, bound)
            if b is not None and (a is None or
                                  (b < a if bound == "min" else b > a)):
                setattr(self, bound, b)
        for k, n in other.buckets.items():
            self.buckets[k] = self.buckets.get(k, 0) + n
        return self


class MetricsRegistry:
    """Per-node counters/gauges/histograms + sim-time-bucketed series."""

    def __init__(self, now: Callable[[], int],
                 bucket_ns: int = 1_000_000) -> None:
        if bucket_ns < 1:
            raise ValueError("bucket_ns must be >= 1")
        self._now = now
        self.bucket_ns = bucket_ns
        self._counters: Dict[Tuple[str, int], int] = {}
        self._gauges: Dict[Tuple[str, int], float] = {}
        self._hists: Dict[Tuple[str, int], Histogram] = {}
        # name -> {time bucket -> update count}: when did activity happen.
        self._series: Dict[str, Dict[int, int]] = {}

    # ------------------------------------------------------------------
    def _tick(self, name: str, n: int = 1) -> None:
        bucket = self._now() // self.bucket_ns
        series = self._series.setdefault(name, {})
        series[bucket] = series.get(bucket, 0) + n

    def inc(self, name: str, node: int, n: int = 1) -> None:
        """Bump a counter (and its time series) by ``n``."""
        key = (name, node)
        self._counters[key] = self._counters.get(key, 0) + n
        self._tick(name, n)

    def set_gauge(self, name: str, node: int, value: float) -> None:
        """Record the latest value of a gauge."""
        self._gauges[(name, node)] = value

    def observe(self, name: str, node: int, value: int) -> None:
        """Add one sample to a histogram (and its time series)."""
        key = (name, node)
        hist = self._hists.get(key)
        if hist is None:
            hist = self._hists[key] = Histogram()
        hist.observe(value)
        self._tick(name)

    # ------------------------------------------------------------------
    def counter_total(self, name: str) -> int:
        """A counter's value summed over all nodes."""
        return sum(v for (n, _), v in self._counters.items() if n == name)

    def histogram(self, name: str) -> Histogram:
        """A histogram merged over all nodes (empty if never observed)."""
        merged = Histogram()
        for (n, _), hist in self._hists.items():
            if n == name:
                merged.merge(hist)
        return merged

    def as_dict(self) -> Dict[str, Any]:
        """Full JSON-ready export (``repro stats --json``)."""
        counters: Dict[str, Dict[str, Any]] = {}
        for (name, node), value in sorted(self._counters.items()):
            entry = counters.setdefault(name, {"total": 0, "by_node": {}})
            entry["total"] += value
            entry["by_node"][str(node)] = value
        gauges: Dict[str, Dict[str, Any]] = {}
        for (name, node), value in sorted(self._gauges.items()):
            gauges.setdefault(name, {})[str(node)] = value
        hists: Dict[str, Dict[str, Any]] = {}
        for (name, _node) in sorted(self._hists):
            if name not in hists:
                hists[name] = self.histogram(name).as_dict()
        series = {
            name: {str(bucket * self.bucket_ns): count
                   for bucket, count in sorted(buckets.items())}
            for name, buckets in sorted(self._series.items())
        }
        return {
            "bucket_ns": self.bucket_ns,
            "counters": counters,
            "gauges": gauges,
            "histograms": hists,
            "series": series,
        }

    def compact(self) -> Dict[str, Any]:
        """Small summary (what the bench JSON embeds): counter totals
        plus count/mean/max per histogram."""
        out: Dict[str, Any] = {}
        for name in sorted({n for n, _ in self._counters}):
            out[name] = self.counter_total(name)
        for name in sorted({n for n, _ in self._hists}):
            hist = self.histogram(name)
            out[name] = {"count": hist.count,
                         "mean": round(hist.mean, 1),
                         "max": hist.max}
        return out
