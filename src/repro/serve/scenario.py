"""Churn orchestration: scenario scripts over the serving workload.

A :class:`Scenario` composes everything the paper says a run must
survive — heterogeneous brands, workers joining mid-run (§2 "during
execution, new workers can join the system"), workers dying mid-run
(§6 fault tolerance), several tenant programs co-located on one
cluster, and load whose hot set shifts between phases so the adaptive
locality/coherence machinery has to keep migrating.

Every scenario runs under the single-copy oracle and the invariant
monitor, and its program result is compared against a single-JVM
reference execution fed the *identical* arrival schedule — churn may
cost throughput, never consistency.  Under a kill the exact result is
not required (fault tolerance restarts the dead node's threads from
scratch, so non-idempotent in-flight requests are legitimately lost,
same contract as tsp in ``repro check --kill``), but the run must
still complete oracle-clean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..check.faults import FaultInjector, FaultPlan
from ..check.monitor import InvariantMonitor
from ..check.oracle import SingleCopyOracle
from ..check.runner import DEFAULT_JITTER_NS, parse_kill, parse_locality, \
    parse_policy
from ..jvm.intrinsics import bootstrap_classfiles
from ..jvm.jvm import JVM
from ..lang import compile_source
from ..rewriter import rewrite_application
from ..runtime.config import RuntimeConfig
from ..runtime.javasplit import DeadlockError, JavaSplitRuntime
from ..sim.cost_model import get_brand
from ..sim.engine import NS_PER_MS, SimEngine
from ..sim.node import Node, StreamState
from .app import make_source
from .loadgen import Arrival, LoadGenerator, PhaseSpec
from .manager import LoadFeed, ServeManager
from .slo import build_slo


@dataclass(frozen=True)
class Scenario:
    """One churn script: cluster shape + workload + disruption plan."""

    name: str
    description: str
    nodes: int
    brands: Tuple[str, ...]
    tenants: int
    workers: int                       # serve workers per tenant
    sessions: int
    stripes: int
    work_scale: int
    phases: Tuple[PhaseSpec, ...]
    #: Mid-run joins: (simulated time ns, brand of the new worker).
    joins: Tuple[Tuple[int, str], ...] = ()
    #: ``--kill``-style spec (``"random"`` or ``"NODE@TIME"``), or None.
    kill: Optional[str] = None
    #: ``--locality`` / ``--policy`` specs ("" = subsystem off).
    locality: str = ""
    policy: str = ""
    #: Tier hot methods (repro.jit); observables are unchanged, only
    #: the wall clock moves — see the jit differential tests.
    jit: bool = False

    def config(self, seed: int, backend: str) -> RuntimeConfig:
        killing = self.kill is not None
        return RuntimeConfig(
            num_nodes=self.nodes,
            brands=self.brands,
            seed=seed,
            net_jitter_ns=DEFAULT_JITTER_NS,
            reliable_transport=killing,
            ft_enabled=killing,
            obs_metrics=True,
            transport_backend=backend,
            jit_enable=self.jit,
            **parse_locality(self.locality),
            **parse_policy(self.policy),
        )


#: The scenario library.  "churn" is the acceptance scenario: open-loop
#: load on mixed sun/ibm brands, two tenant programs, one worker joining
#: mid-run and one random worker killed mid-run — all under the oracle.
PRESETS: Dict[str, Scenario] = {
    "steady": Scenario(
        name="steady",
        description="baseline: constant load, fixed homogeneous cluster",
        nodes=3, brands=("sun",),
        tenants=2, workers=2, sessions=32, stripes=4, work_scale=6,
        phases=(PhaseSpec(duration_ms=4, rate_per_ms=5),
                PhaseSpec(duration_ms=4, rate_per_ms=5)),
    ),
    "churn": Scenario(
        name="churn",
        description=("mixed sun/ibm brands, ibm worker joins at 6ms, "
                     "random worker killed, two tenants"),
        nodes=3, brands=("sun", "ibm", "sun"),
        tenants=2, workers=2, sessions=32, stripes=4, work_scale=6,
        phases=(PhaseSpec(duration_ms=5, rate_per_ms=4),
                PhaseSpec(duration_ms=5, rate_per_ms=4),
                PhaseSpec(duration_ms=5, rate_per_ms=4)),
        joins=((6 * NS_PER_MS, "ibm"),),
        kill="random",
    ),
    "hotset": Scenario(
        name="hotset",
        description=("phase-shifted hot key ranges under full adaptive "
                     "locality + coherence policies"),
        nodes=3, brands=("sun", "ibm", "sun"),
        tenants=2, workers=2, sessions=32, stripes=4, work_scale=6,
        phases=(
            PhaseSpec(duration_ms=4, rate_per_ms=6,
                      hot_lo=0, hot_hi=8, hot_frac=0.8),
            PhaseSpec(duration_ms=4, rate_per_ms=6,
                      hot_lo=12, hot_hi=20, hot_frac=0.8),
            PhaseSpec(duration_ms=4, rate_per_ms=6,
                      hot_lo=24, hot_hi=32, hot_frac=0.8),
        ),
        locality="all",
        policy="all",
    ),
}


def run_serve_reference(classfiles: List[Any],
                        schedules: List[List[Arrival]]) -> Any:
    """Single-JVM reference run fed the identical arrival schedule.

    Mirrors :func:`~repro.runtime.javasplit.run_original`, plus the
    load feed the ``Serve`` natives need, installed before main starts.
    """
    engine = SimEngine()
    node = Node(engine, 0, get_brand("sun", "app"), num_cpus=2)
    jvm = JVM(node)
    jvm.load_classes(bootstrap_classfiles())
    jvm.load_classes(list(classfiles))
    jvm.serve_feed = LoadFeed(engine, schedules)
    main_class = None
    for cf in classfiles:
        m = cf.methods.get("main")
        if m is not None and m.is_static:
            main_class = cf.name
            break
    if main_class is None:
        raise ValueError("serve app has no static main method")
    thread = jvm.start_main(main_class, None)
    engine.run_until_idle(max_events=200_000_000)
    jvm.check_no_failures()
    blocked = [t for t in jvm.threads if t.state is StreamState.BLOCKED]
    if blocked:
        raise DeadlockError(
            f"reference blocked threads remain: {[t.name for t in blocked]}")
    return thread


def run_scenario(scenario: Scenario, seed: int = 0,
                 backend: str = "sim",
                 config_overrides: Optional[Dict[str, Any]] = None,
                 on_runtime: Optional[Any] = None) -> Dict[str, Any]:
    """Execute one scenario under full checking; return the JSON doc.

    ``config_overrides`` patches RuntimeConfig fields after the preset
    builds it (e.g. ``{"obs_wallclock": True}`` for live telemetry);
    ``on_runtime(runtime)`` is called once the runtime exists but before
    the run starts — the ``repro stats --live`` hook point.
    """
    gen = LoadGenerator(scenario.phases, scenario.sessions, seed=seed)
    schedules = gen.schedules(scenario.tenants)
    injected_by_phase = LoadGenerator.injected_by_phase(schedules)
    source = make_source(
        tenants=scenario.tenants, workers=scenario.workers,
        sessions=scenario.sessions, stripes=scenario.stripes,
        work_scale=scenario.work_scale)
    classfiles = compile_source(source)
    ref_thread = run_serve_reference(classfiles, schedules)

    rewritten = rewrite_application(list(classfiles))
    killing = scenario.kill is not None
    config = scenario.config(seed, backend)
    for name, value in (config_overrides or {}).items():
        setattr(config, name, value)
    runtime = JavaSplitRuntime(rewritten, config)
    manager = ServeManager.attach(runtime, schedules)
    if on_runtime is not None:
        on_runtime(runtime)
    for at_ns, brand in scenario.joins:
        runtime.schedule_join(at_ns, brand)
    injector = None
    if killing:
        plan = FaultPlan(seed=seed)
        plan.detach_node, plan.detach_at_ns = parse_kill(
            scenario.kill, seed=seed, nodes=scenario.nodes)
        injector = FaultInjector.attach(runtime, plan)
    monitor = InvariantMonitor.attach(runtime)
    oracle = SingleCopyOracle.attach(runtime)

    error: Optional[str] = None
    run = None
    try:
        run = runtime.run()
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        error = f"{type(exc).__name__}: {exc}"
    monitor.finalize()
    if error is None:
        oracle.finalize()
    violations = [str(v) for v in
                  list(monitor.violations) + list(oracle.violations)]

    result = run.result if run is not None else None
    result_matches = run is not None and result == ref_thread.result
    # Same contract as tsp under --kill: fault tolerance restarts the
    # dead node's threads from scratch, so in-flight requests are
    # legitimately lost and the commutative score may differ.
    result_required = not killing
    ok = (error is None and not violations
          and (result_matches or not result_required))

    brands = [config.brand_of(i) for i in range(scenario.nodes)]
    doc: Dict[str, Any] = {
        "scenario": scenario.name,
        "description": scenario.description,
        "backend": backend,
        "seed": seed,
        "cluster": {
            "nodes": scenario.nodes,
            "brands": brands,
            "cpus_per_node": config.cpus_per_node,
            "backend": backend,
            "joins": [{"at_ms": at / NS_PER_MS, "brand": b}
                      for at, b in scenario.joins],
            "kill": scenario.kill,
            "tenants": scenario.tenants,
        },
        "requests": manager.report(),
        "result": {
            "value": result,
            "reference": ref_thread.result,
            "matches": result_matches,
            "required": result_required,
        },
        "oracle": {
            "violations": violations,
            "installs_checked": oracle.checked_installs,
            "finals_checked": oracle.checked_final,
        },
        "ok": ok,
    }
    if error is not None:
        doc["error"] = error
    if injector is not None:
        doc["faults"] = {
            "killed": list(injector.stats.detached),
        }
    if run is not None:
        doc["simulated_ms"] = round(run.simulated_ns / NS_PER_MS, 3)
        doc["threads_run"] = run.threads_run
        if run.ft is not None:
            doc["ft"] = {"recoveries": len(run.ft["recoveries"])}
    metrics = runtime.obs.metrics if runtime.obs is not None else None
    if metrics is not None:
        doc["slo"] = build_slo(metrics, gen.phase_bounds(),
                               injected_by_phase)
    return doc


def run_scenario_sweep(scenario: Scenario, seeds: int,
                       backend: str = "sim") -> Dict[str, Any]:
    """Run one scenario over seeds 0..N-1 (the CI churn sweep)."""
    if seeds < 1:
        raise ValueError("seeds must be >= 1")
    runs = [run_scenario(scenario, seed=s, backend=backend)
            for s in range(seeds)]
    return {
        "bench": "serve-sweep",
        "schema": 1,
        "scenario": scenario.name,
        "backend": backend,
        "seeds": runs,
        "ok": all(r["ok"] for r in runs),
        "failed_seeds": [r["seed"] for r in runs if not r["ok"]],
    }
