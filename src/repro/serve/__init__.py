"""Serving workloads: elastic, multi-tenant, churn-driven scenarios.

The paper's headline claim is execution on *heterogeneous, dynamically
changing* collections of workstations (§2) — this package supplies the
workload that actually stresses that claim end to end:

- :mod:`repro.serve.app` — a request-processing application in the mini
  language (session table, hit/miss counters, lock-protected work
  queue), compiled and rewritten like every other app.
- :mod:`repro.serve.loadgen` — a deterministic open-loop load generator
  whose seeded arrival schedule is injected as simulation events,
  reproducible bit-for-bit on both transport backends.
- :mod:`repro.serve.manager` — the runtime attachment that feeds
  arrivals to the program through the ``Serve`` bootstrap natives and
  records per-phase completion latencies into the obs metrics registry.
- :mod:`repro.serve.scenario` — churn orchestration: scenario presets
  composing mid-run joins, random kills, mixed JVM brands, multi-tenant
  co-location and phase-shifted hot sets, every run under the
  single-copy oracle.
- :mod:`repro.serve.slo` — the SLO reporter: per-phase throughput and
  p50/p99/p999 request latency from the metrics registry's
  time-bucketed series (behind ``python -m repro serve``).
"""

from .loadgen import LoadGenerator, PhaseSpec
from .manager import LoadFeed, ServeManager
from .scenario import PRESETS, Scenario, run_scenario, run_scenario_sweep
from .slo import build_slo, validate_serve_doc

__all__ = [
    "LoadGenerator", "PhaseSpec",
    "LoadFeed", "ServeManager",
    "PRESETS", "Scenario", "run_scenario", "run_scenario_sweep",
    "build_slo", "validate_serve_doc",
]
