"""SLO reporting: per-phase throughput and latency quantiles.

The reporter reads nothing from the program — everything comes out of
the obs :class:`~repro.obs.metrics.MetricsRegistry` that the
:class:`~repro.serve.manager.ServeManager` fed during the run: the
``serve.completed.p{N}`` counters, the ``serve.latency_ns.p{N}``
histograms (log2 buckets with within-bucket interpolation, so p50/p99/
p999 are tight), and the time-bucketed series that shows *when* the
completions landed.

``validate_serve_doc`` is the schema check CI runs over ``repro serve
--json`` output.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..sim.engine import NS_PER_MS, NS_PER_SEC


def _ms(ns: int) -> float:
    return round(ns / NS_PER_MS, 4)


def _phase_entry(metrics: Any, suffix: str, injected: int,
                 start_ns: int, end_ns: int) -> Dict[str, Any]:
    completed = metrics.counter_total(f"serve.completed{suffix}")
    hist = metrics.histogram(f"serve.latency_ns{suffix}")
    duration_ns = max(1, end_ns - start_ns)
    series = metrics.as_dict()["series"].get(f"serve.completed{suffix}", {})
    if series:
        times = sorted(int(t) for t in series)
        active_ns = times[-1] - times[0] + metrics.bucket_ns
    else:
        active_ns = 0
    # Offered load is normalized to the arrival window; achieved
    # throughput to the window in which completions actually landed —
    # under open-loop saturation the two diverge, which is the point.
    return {
        "start_ms": _ms(start_ns),
        "end_ms": _ms(end_ns),
        "injected": injected,
        "completed": completed,
        "offered_rps": round(injected * NS_PER_SEC / duration_ns, 1),
        "throughput_rps": round(
            completed * NS_PER_SEC / (active_ns or duration_ns), 1),
        "active_ms": _ms(active_ns),
        "latency_ms": {
            "mean": _ms(int(hist.mean)),
            "p50": _ms(hist.quantile(0.5)),
            "p99": _ms(hist.quantile(0.99)),
            "p999": _ms(hist.quantile(0.999)),
            "max": _ms(hist.max or 0),
        },
    }


def build_slo(metrics: Any, phase_bounds: List[Tuple[int, int]],
              injected_by_phase: Dict[int, int]) -> Dict[str, Any]:
    """The SLO section of a serve document, from the metrics registry."""
    phases = [
        _phase_entry(metrics, f".p{i}", injected_by_phase.get(i, 0),
                     start, end)
        for i, (start, end) in enumerate(phase_bounds)
    ]
    overall = _phase_entry(
        metrics, "", sum(injected_by_phase.values()),
        0, phase_bounds[-1][1] if phase_bounds else 1)
    return {"phases": phases, "overall": overall}


# ---------------------------------------------------------------------------
# Schema validation (CI gate over ``repro serve --json``)
# ---------------------------------------------------------------------------

_LATENCY_KEYS = ("mean", "p50", "p99", "p999", "max")
_PHASE_KEYS = ("start_ms", "end_ms", "injected", "completed",
               "offered_rps", "throughput_rps", "active_ms", "latency_ms")
_SCENARIO_KEYS = ("scenario", "backend", "seed", "cluster", "requests",
                  "result", "oracle", "slo", "ok")


def _check_phase(entry: Any, where: str, errors: List[str]) -> None:
    if not isinstance(entry, dict):
        errors.append(f"{where}: not an object")
        return
    for key in _PHASE_KEYS:
        if key not in entry:
            errors.append(f"{where}: missing {key!r}")
    lat = entry.get("latency_ms")
    if not isinstance(lat, dict):
        errors.append(f"{where}.latency_ms: not an object")
        return
    for key in _LATENCY_KEYS:
        if not isinstance(lat.get(key), (int, float)):
            errors.append(f"{where}.latency_ms.{key}: not a number")
    if isinstance(lat.get("p50"), (int, float)):
        if not (lat["p50"] <= lat["p99"] <= lat["p999"] <= lat["max"]):
            errors.append(f"{where}.latency_ms: quantiles not monotonic")


def _check_scenario(doc: Any, where: str, errors: List[str]) -> None:
    if not isinstance(doc, dict):
        errors.append(f"{where}: not an object")
        return
    for key in _SCENARIO_KEYS:
        if key not in doc:
            errors.append(f"{where}: missing {key!r}")
    cluster = doc.get("cluster")
    if isinstance(cluster, dict):
        for key in ("nodes", "brands", "backend"):
            if key not in cluster:
                errors.append(f"{where}.cluster: missing {key!r}")
    else:
        errors.append(f"{where}.cluster: not an object")
    requests = doc.get("requests")
    if isinstance(requests, dict):
        injected = requests.get("injected")
        completed = requests.get("completed")
        if not isinstance(injected, int) or not isinstance(completed, int):
            errors.append(f"{where}.requests: injected/completed not ints")
        elif completed > injected:
            errors.append(f"{where}.requests: completed > injected")
    else:
        errors.append(f"{where}.requests: not an object")
    slo = doc.get("slo")
    if isinstance(slo, dict):
        phases = slo.get("phases")
        if not isinstance(phases, list) or not phases:
            errors.append(f"{where}.slo.phases: empty or not a list")
        else:
            for i, entry in enumerate(phases):
                _check_phase(entry, f"{where}.slo.phases[{i}]", errors)
        _check_phase(slo.get("overall"), f"{where}.slo.overall", errors)
    else:
        errors.append(f"{where}.slo: not an object")


def validate_serve_doc(doc: Any) -> List[str]:
    """Schema-check a serve JSON document (single scenario, preset-all
    bundle, or seed sweep).  Returns a list of problems (empty = valid).
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if "scenarios" in doc:                  # --preset all bundle
        for key in ("bench", "schema"):
            if key not in doc:
                errors.append(f"bundle missing {key!r}")
        scenarios = doc["scenarios"]
        if not isinstance(scenarios, dict) or not scenarios:
            return errors + ["bundle 'scenarios' empty or not an object"]
        for name, sub in sorted(scenarios.items()):
            _check_scenario(sub, f"scenarios[{name}]", errors)
    elif "seeds" in doc:                    # --seeds sweep
        runs = doc["seeds"]
        if not isinstance(runs, list) or not runs:
            return errors + ["sweep 'seeds' empty or not a list"]
        for i, sub in enumerate(runs):
            _check_scenario(sub, f"seeds[{i}]", errors)
    else:
        _check_scenario(doc, "doc", errors)
    return errors
