"""The serving application, written in the mini language.

A shared-state request processor in the style of the paper's target
programs: a monolithic multithreaded Java program that JavaSplit can
split across nodes with no source-level distribution.

Per tenant: one **Frontend** thread pulls arrivals from the runtime
through ``Serve.next`` and pushes them onto a lock-protected bounded
**ReqQueue** (wait/notify ring buffer, poison pill 0); ``workers``
**ServeWorker** threads pop requests, decode ``(seq, key)``, burn a
key-dependent amount of CPU, then update the **session table** — an
array of ``Stripe`` objects each holding a seen-bitmap plus hit/miss
counters and a commutative checksum under its own monitor — and close
the request via ``Serve.done``.  Several tenants run as independent
instances inside one program (multi-tenant co-location on one cluster).

The final score is order-independent (sum of per-key contributions plus
hit/miss tallies), so it is identical on the distributed runtime and
the single-JVM reference for the same arrival schedule, regardless of
interleaving — that is what lets churn scenarios check the end result,
not just the oracle invariants.
"""

from __future__ import annotations

SOURCE_TEMPLATE = """
class ReqQueue {{
    int[] items;
    int count;
    int head;
    int tail;

    ReqQueue(int capacity) {{
        items = new int[capacity];
    }}

    synchronized void put(int x) {{
        while (count == items.length) {{
            this.wait();
        }}
        items[tail] = x;
        tail = (tail + 1) % items.length;
        count = count + 1;
        this.notifyAll();
    }}

    synchronized int take() {{
        while (count == 0) {{
            this.wait();
        }}
        int x = items[head];
        head = (head + 1) % items.length;
        count = count - 1;
        this.notifyAll();
        return x;
    }}
}}

class Stripe {{
    int[] seen;
    int hits;
    int misses;
    int checksum;

    Stripe(int sessions) {{
        seen = new int[sessions];
    }}

    synchronized void record(int key, int work) {{
        if (seen[key] == 0) {{
            seen[key] = 1;
            misses = misses + 1;
        }} else {{
            hits = hits + 1;
        }}
        checksum = checksum + key * work + 1;
    }}

    synchronized int score() {{
        return checksum + hits * 7 + misses * 3;
    }}
}}

class Frontend extends Thread {{
    ReqQueue q;
    int tenant;
    int nworkers;

    Frontend(ReqQueue q, int tenant, int nworkers) {{
        this.q = q;
        this.tenant = tenant;
        this.nworkers = nworkers;
    }}

    void run() {{
        int v = Serve.next(tenant);
        while (v >= 0) {{
            q.put(v);
            v = Serve.next(tenant);
        }}
        int w = 0;
        while (w < nworkers) {{
            q.put(0);
            w = w + 1;
        }}
    }}
}}

class ServeWorker extends Thread {{
    ReqQueue q;
    Stripe[] table;
    int nstripes;
    int tenant;

    ServeWorker(ReqQueue q, Stripe[] table, int nstripes, int tenant) {{
        this.q = q;
        this.table = table;
        this.nstripes = nstripes;
        this.tenant = tenant;
    }}

    void run() {{
        int v = q.take();
        while (v != 0) {{
            int seq = v / 256 - 1;
            int key = v % 256;
            int work = 1 + key % 7;
            int acc = 0;
            int i = 0;
            while (i < work * {work_scale}) {{
                acc = acc + i * key;
                i = i + 1;
            }}
            Stripe s = table[key % nstripes];
            s.record(key, work);
            Serve.done(tenant, seq);
            v = q.take();
        }}
    }}
}}

class Tenant {{
    ReqQueue q;
    Stripe[] table;
    int nstripes;

    Tenant(int capacity, int sessions, int nstripes) {{
        q = new ReqQueue(capacity);
        table = new Stripe[nstripes];
        int s = 0;
        while (s < nstripes) {{
            table[s] = new Stripe(sessions);
            s = s + 1;
        }}
        this.nstripes = nstripes;
    }}

    synchronized int score() {{
        int r = 0;
        int s = 0;
        while (s < nstripes) {{
            r = r + table[s].score();
            s = s + 1;
        }}
        return r;
    }}
}}

class ServeMain {{
    static int main() {{
        int tenants = {tenants};
        int nworkers = {workers};
        Tenant[] ts = new Tenant[tenants];
        Frontend[] fs = new Frontend[tenants];
        ServeWorker[] ws = new ServeWorker[tenants * nworkers];
        int t = 0;
        while (t < tenants) {{
            Tenant tn = new Tenant({capacity}, {sessions}, {stripes});
            ts[t] = tn;
            Frontend f = new Frontend(tn.q, t, nworkers);
            fs[t] = f;
            f.start();
            int w = 0;
            while (w < nworkers) {{
                ServeWorker sw =
                    new ServeWorker(tn.q, tn.table, {stripes}, t);
                ws[t * nworkers + w] = sw;
                sw.start();
                w = w + 1;
            }}
            t = t + 1;
        }}
        t = 0;
        while (t < tenants) {{
            fs[t].join();
            t = t + 1;
        }}
        int i = 0;
        while (i < tenants * nworkers) {{
            ws[i].join();
            i = i + 1;
        }}
        int total = 0;
        t = 0;
        while (t < tenants) {{
            total = total + ts[t].score();
            t = t + 1;
        }}
        Sys.print("serve total = " + total);
        return total;
    }}
}}
"""


def make_source(tenants: int = 2, workers: int = 2, sessions: int = 32,
                stripes: int = 4, capacity: int = 0,
                work_scale: int = 6) -> str:
    """Instantiate the serving app for a scenario's shape.

    ``capacity`` defaults to ``workers * 4 + 8`` — enough headroom that
    a kill-restarted frontend re-enqueueing its poison pills can never
    wedge the queue even if the first set already landed.
    """
    if not (1 <= sessions <= 256):
        raise ValueError("sessions must be in [1, 256]")
    if tenants < 1 or workers < 1 or stripes < 1:
        raise ValueError("tenants, workers, stripes must be >= 1")
    if capacity <= 0:
        capacity = workers * 4 + 8
    return SOURCE_TEMPLATE.format(
        tenants=tenants, workers=workers, sessions=sessions,
        stripes=stripes, capacity=capacity, work_scale=work_scale)
