"""Deterministic open-loop load generation.

Arrival schedules are precomputed in Python from a seeded RNG before the
run starts, so the exact same request stream (times, session keys, phase
tags) hits the program on every backend and on the single-JVM reference
— the schedule is *data*, only its delivery happens as simulation
events (see :class:`repro.serve.manager.LoadFeed`).

Open-loop means arrival times never depend on service completion: a
slow cluster falls behind and the request latency (arrival → done)
shows it, which is exactly what the SLO report wants to observe.

Phases let a scenario shift the load mid-run — a different rate or a
different *hot key range* per phase forces the locality/policy
subsystems to chase the hot set instead of converging once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..sim.engine import NS_PER_MS

#: Session keys are encoded next to the sequence number in one int
#: (``(seq + 1) * KEY_SPACE + key``), so the key space is capped.
KEY_SPACE = 256


@dataclass(frozen=True)
class PhaseSpec:
    """One load phase: duration, arrival rate, and optional hot set."""

    duration_ms: float
    #: Mean arrivals per simulated millisecond, per tenant.
    rate_per_ms: float
    #: Hot key range [hot_lo, hot_hi); ignored when hot_frac == 0.
    hot_lo: int = 0
    hot_hi: int = 0
    #: Fraction of requests drawn from the hot range.
    hot_frac: float = 0.0
    #: "poisson" (exponential gaps) or "uniform" (fixed gaps).
    dist: str = "poisson"

    def validate(self, sessions: int) -> None:
        if self.duration_ms <= 0 or self.rate_per_ms <= 0:
            raise ValueError("phase duration and rate must be positive")
        if self.dist not in ("poisson", "uniform"):
            raise ValueError(f"unknown arrival distribution {self.dist!r}")
        if not (0.0 <= self.hot_frac <= 1.0):
            raise ValueError("hot_frac must be in [0, 1]")
        if self.hot_frac > 0.0 and not (
                0 <= self.hot_lo < self.hot_hi <= sessions):
            raise ValueError(
                f"hot range [{self.hot_lo}, {self.hot_hi}) invalid for "
                f"{sessions} sessions")


#: One scheduled request: (arrival time ns, session key, phase index).
Arrival = Tuple[int, int, int]


class LoadGenerator:
    """Seeded arrival schedules over a list of phases."""

    def __init__(self, phases: "tuple[PhaseSpec, ...]", sessions: int,
                 seed: int = 0) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        if not (1 <= sessions <= KEY_SPACE):
            raise ValueError(f"sessions must be in [1, {KEY_SPACE}]")
        for ph in phases:
            ph.validate(sessions)
        self.phases = tuple(phases)
        self.sessions = sessions
        self.seed = seed

    def phase_bounds(self) -> List[Tuple[int, int]]:
        """[(start_ns, end_ns)] per phase, back to back from t=0."""
        bounds: List[Tuple[int, int]] = []
        t = 0
        for ph in self.phases:
            end = t + int(ph.duration_ms * NS_PER_MS)
            bounds.append((t, end))
            t = end
        return bounds

    def schedule(self, tenant: int) -> List[Arrival]:
        """The tenant's full arrival schedule (sorted, deterministic)."""
        rng = random.Random(1_000_003 * (self.seed + 1) + tenant)
        out: List[Arrival] = []
        t = 0
        for pi, (ph, (start, end)) in enumerate(
                zip(self.phases, self.phase_bounds())):
            t = max(t, start)
            mean_gap_ns = NS_PER_MS / ph.rate_per_ms
            while True:
                if ph.dist == "poisson":
                    gap = rng.expovariate(1.0) * mean_gap_ns
                else:
                    gap = mean_gap_ns
                t += max(1, int(gap))
                if t >= end:
                    break
                if ph.hot_frac > 0.0 and rng.random() < ph.hot_frac:
                    key = rng.randrange(ph.hot_lo, ph.hot_hi)
                else:
                    key = rng.randrange(self.sessions)
                out.append((t, key, pi))
        return out

    def schedules(self, tenants: int) -> List[List[Arrival]]:
        """One independent schedule per tenant."""
        return [self.schedule(t) for t in range(tenants)]

    @staticmethod
    def injected_by_phase(schedules: List[List[Arrival]]) -> Dict[int, int]:
        """Total injected requests per phase across all tenants."""
        counts: Dict[int, int] = {}
        for sched in schedules:
            for _, _, phase in sched:
                counts[phase] = counts.get(phase, 0) + 1
        return counts
