"""Runtime side of the serving subsystem.

:class:`LoadFeed` turns a precomputed arrival schedule into the blocking
``Serve.next`` / ``Serve.done`` native protocol: a frontend thread asking
for the next request either gets it immediately (already due), parks via
the interpreter's complete-style block until the engine timer for the
next arrival fires, or gets ``-1`` when the schedule is exhausted.  All
of this rides on the deterministic event engine, so the delivery order
is identical on both transport backends and on the single-JVM reference.

:class:`ServeManager` attaches a feed to a distributed runtime: it
installs the feed on every worker JVM (including late joiners), skips
waiters whose node has been fail-stopped (fault tolerance restarts
those frontends, which simply call ``Serve.next`` again), and records
per-phase completion counters and latency histograms into the obs
metrics registry for the SLO report.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from ..jvm.interpreter import BLOCK
from ..sim.node import StreamState
from .loadgen import KEY_SPACE, Arrival


class _TenantStream:
    """Mutable per-tenant delivery state over an immutable schedule."""

    __slots__ = ("arrivals", "cursor", "waiters", "timer_armed", "done")

    def __init__(self, arrivals: List[Arrival]) -> None:
        self.arrivals = arrivals
        self.cursor = 0
        self.waiters: Deque[Any] = deque()
        self.timer_armed = False
        self.done: set = set()


class LoadFeed:
    """Deliver scheduled arrivals to ``Serve.next`` callers.

    Encoding: ``Serve.next(tenant)`` returns ``(seq + 1) * KEY_SPACE +
    key`` (always > 0 so the app can use 0 as its queue poison pill), or
    ``-1`` once the tenant's schedule is exhausted.  ``Serve.done(tenant,
    seq)`` closes the request; latency is engine-now minus the scheduled
    arrival time, so queueing delay inside the program is included —
    the open-loop property the SLO report depends on.
    """

    def __init__(
        self,
        engine: Any,
        schedules: List[List[Arrival]],
        on_done: Optional[Callable[[int, int, int, int, int], None]] = None,
        thread_ok: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        self.engine = engine
        self._streams = [_TenantStream(s) for s in schedules]
        #: Called as (tenant, seq, phase, latency_ns, node_id) per done.
        self.on_done = on_done
        #: Liveness filter for parked waiters (dead-node threads are
        #: skipped without consuming an arrival).
        self.thread_ok = thread_ok
        self.injected = sum(len(s) for s in schedules)
        self.delivered = 0
        self.completed = 0
        self.completed_by_phase: Dict[int, int] = {}
        self.duplicate_done = 0

    # -- native protocol ------------------------------------------------
    def next(self, thread: Any, tenant: int) -> Any:
        """Value for ``Serve.next``: encoded request, -1, or BLOCK."""
        st = self._stream(tenant)
        if st.cursor >= len(st.arrivals):
            return -1
        t_arr, key, _phase = st.arrivals[st.cursor]
        if t_arr <= self.engine.now:
            return self._deliver(st)
        st.waiters.append(thread)
        self._arm(st, t_arr)
        return BLOCK

    def done(self, thread: Any, tenant: int, seq: int) -> None:
        """Record completion of request ``seq`` (latency + phase tally)."""
        st = self._stream(tenant)
        if not (0 <= seq < st.cursor) or seq in st.done:
            # A restarted worker replaying a request already finished
            # before the kill, or a bad seq: count, don't double-record.
            self.duplicate_done += 1
            return
        st.done.add(seq)
        t_arr, _key, phase = st.arrivals[seq]
        latency_ns = self.engine.now - t_arr
        self.completed += 1
        self.completed_by_phase[phase] = (
            self.completed_by_phase.get(phase, 0) + 1)
        if self.on_done is not None:
            self.on_done(tenant, seq, phase, latency_ns,
                         thread.jvm.node.node_id)

    # -- internals ------------------------------------------------------
    def _stream(self, tenant: int) -> _TenantStream:
        if not (0 <= tenant < len(self._streams)):
            raise ValueError(f"unknown tenant {tenant}")
        return self._streams[tenant]

    def _deliver(self, st: _TenantStream) -> int:
        seq = st.cursor
        _t, key, _phase = st.arrivals[seq]
        st.cursor += 1
        self.delivered += 1
        return (seq + 1) * KEY_SPACE + key

    def _arm(self, st: _TenantStream, at_ns: int) -> None:
        if st.timer_armed:
            return
        st.timer_armed = True
        self.engine.schedule_at(at_ns, lambda: self._fire(st))

    def _fire(self, st: _TenantStream) -> None:
        """Timer callback: hand every due arrival to a live waiter."""
        st.timer_armed = False
        while st.waiters:
            if st.cursor >= len(st.arrivals):
                # Exhausted: release remaining waiters with -1 so their
                # frontends can enqueue poison pills and exit.
                thread = st.waiters.popleft()
                if self._waiter_ok(thread):
                    thread.complete(-1)
                continue
            t_arr, _key, _phase = st.arrivals[st.cursor]
            if t_arr > self.engine.now:
                self._arm(st, t_arr)
                return
            thread = st.waiters.popleft()
            if not self._waiter_ok(thread):
                # Dead waiter: drop it WITHOUT consuming the arrival —
                # the restarted frontend will pick the request up.
                continue
            thread.complete(self._deliver(st))

    def _waiter_ok(self, thread: Any) -> bool:
        if thread.state is not StreamState.BLOCKED:
            return False
        return self.thread_ok is None or self.thread_ok(thread)


class ServeManager:
    """Glue between a :class:`LoadFeed` and a JavaSplit runtime."""

    def __init__(self, runtime: Any, schedules: List[List[Arrival]]) -> None:
        self.runtime = runtime
        self.feed = LoadFeed(
            runtime.engine, schedules,
            on_done=self._record, thread_ok=self._thread_ok)

    @classmethod
    def attach(cls, runtime: Any,
               schedules: List[List[Arrival]]) -> "ServeManager":
        """Install the feed on the runtime and all current workers."""
        mgr = cls(runtime, schedules)
        runtime.serve = mgr
        for worker in runtime.workers:
            worker.jvm.serve_feed = mgr.feed
        return mgr

    def on_worker_added(self, worker: Any) -> None:
        """Late joiners serve requests too (called by add_worker)."""
        worker.jvm.serve_feed = self.feed

    # -- callbacks ------------------------------------------------------
    def _thread_ok(self, thread: Any) -> bool:
        node_id = thread.jvm.node.node_id
        workers = self.runtime.workers
        return node_id < len(workers) and not workers[node_id].dead

    def _record(self, tenant: int, seq: int, phase: int,
                latency_ns: int, node_id: int) -> None:
        obs = self.runtime.obs
        if obs is None:
            return
        metrics = obs.metrics
        if metrics is not None:
            metrics.inc("serve.completed", node_id)
            metrics.inc(f"serve.completed.p{phase}", node_id)
            metrics.inc(f"serve.completed.t{tenant}", node_id)
            metrics.observe("serve.latency_ns", node_id, latency_ns)
            metrics.observe(f"serve.latency_ns.p{phase}", node_id,
                            latency_ns)
        obs.flight_record(node_id, "serve.done", tenant=tenant, seq=seq,
                          phase=phase, latency_ns=latency_ns)

    # -- reporting ------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        feed = self.feed
        return {
            "injected": feed.injected,
            "delivered": feed.delivered,
            "completed": feed.completed,
            "completed_by_phase": {
                str(k): v
                for k, v in sorted(feed.completed_by_phase.items())},
            "duplicate_done": feed.duplicate_done,
        }
