"""Simulated worker-node CPU scheduling.

A :class:`Node` models one commodity workstation: ``num_cpus`` processors
(the paper uses dual-processor Xeons), a JVM "brand" cost model, and a set
of *execution streams* (application threads, in practice) that timeshare
the CPUs in round-robin quanta of simulated time.

The node knows nothing about bytecode: a stream is anything implementing
:class:`ExecStream`.  The JVM layer adapts interpreter threads to this
interface; DSM protocol handlers do **not** occupy a CPU — their cost is
modelled as a fixed delay on the message path (see ``net``), which keeps
the scheduler simple while preserving the compute/communication balance.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional, Protocol, Set

from .cost_model import CostModel
from .engine import SimEngine


class StreamState(enum.Enum):
    """Lifecycle of an execution stream: runnable/blocked/finished."""
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    FINISHED = "finished"


class ExecStream(Protocol):
    """Anything the node can schedule on a CPU."""

    def run_quantum(self, budget_ns: int) -> tuple[int, StreamState]:
        """Execute for up to ``budget_ns`` of simulated time.

        Returns ``(consumed_ns, state)``.  ``consumed_ns`` may exceed the
        budget by at most one instruction's cost.  A stream returning
        ``BLOCKED`` will not be rescheduled until :meth:`Node.wake` is
        called for it.
        """
        ...


DEFAULT_QUANTUM_NS = 50_000  # 50 µs


class Node:
    """One simulated workstation: CPUs + round-robin stream scheduling."""

    def __init__(
        self,
        engine: SimEngine,
        node_id: int,
        cost_model: CostModel,
        num_cpus: int = 2,
        quantum_ns: int = DEFAULT_QUANTUM_NS,
    ) -> None:
        if num_cpus < 1:
            raise ValueError("num_cpus must be >= 1")
        self.engine = engine
        self.node_id = node_id
        self.cost_model = cost_model
        self.num_cpus = num_cpus
        self.quantum_ns = quantum_ns
        self._runnable: Deque[ExecStream] = deque()
        self._blocked: Set[int] = set()          # id(stream) of blocked streams
        self._idle_cpus: Set[int] = set(range(num_cpus))
        self._streams_alive = 0
        self.busy_ns = 0                         # total CPU-busy simulated time
        self.finished_streams = 0
        self.halted = False                      # failed node: CPUs stop

    # ------------------------------------------------------------------
    # Stream lifecycle
    # ------------------------------------------------------------------
    def add_stream(self, stream: ExecStream) -> None:
        """Register a new runnable stream and kick an idle CPU."""
        self._runnable.append(stream)
        self._streams_alive += 1
        self._kick()

    def wake(self, stream: ExecStream) -> None:
        """Move a blocked stream back to the runnable queue."""
        if self.halted:
            return  # a failed workstation executes nothing further
        key = id(stream)
        if key not in self._blocked:
            raise RuntimeError("wake() on a stream that is not blocked")
        self._blocked.remove(key)
        self._runnable.append(stream)
        self._kick()

    def halt(self) -> None:
        """Model node failure: discard all streams and park every CPU.
        Already-scheduled CPU events become no-ops when they fire."""
        self.halted = True
        self._runnable.clear()
        self._blocked.clear()

    @property
    def load(self) -> int:
        """Number of live streams — the default load-balancing metric."""
        return self._streams_alive

    @property
    def idle(self) -> bool:
        """True when no stream is runnable and all CPUs are parked."""
        return len(self._idle_cpus) == self.num_cpus and not self._runnable

    # ------------------------------------------------------------------
    # CPU loop
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        """Dispatch idle CPUs onto the runnable queue."""
        while self._idle_cpus and self._runnable:
            cpu = self._idle_cpus.pop()
            self.engine.schedule(0, lambda c=cpu: self._cpu_loop(c))

    def _cpu_loop(self, cpu: int) -> None:
        if self.halted or not self._runnable:
            self._idle_cpus.add(cpu)
            return
        stream = self._runnable.popleft()
        consumed, state = stream.run_quantum(self.quantum_ns)
        if consumed < 0:
            raise RuntimeError("stream consumed negative time")
        self.busy_ns += consumed
        # The quantum occupies simulated time [now, now+consumed]; the
        # stream must not become runnable again before it ends, or a
        # second CPU would execute the same thread "in parallel with
        # itself" at the same instant.  Blocked/finished transitions are
        # registered synchronously so protocol wake-ups are never lost.
        delay = max(consumed, 1)
        if state is StreamState.RUNNABLE:
            self.engine.schedule(delay, lambda: self._requeue(stream))
        elif state is StreamState.BLOCKED:
            self._blocked.add(id(stream))
        else:  # FINISHED
            self._streams_alive -= 1
            self.finished_streams += 1
        self.engine.schedule(delay, lambda: self._cpu_loop(cpu))

    def _requeue(self, stream: ExecStream) -> None:
        if self.halted:
            return
        self._runnable.append(stream)
        self._kick()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Node(id={self.node_id}, brand={self.cost_model.brand}, "
            f"cpus={self.num_cpus}, runnable={len(self._runnable)}, "
            f"blocked={len(self._blocked)})"
        )
