"""Discrete-event cluster simulation substrate.

Replaces the paper's physical cluster (dual-CPU Xeons, wall-clock time)
with a deterministic event engine (:mod:`repro.sim.engine`), per-node CPU
scheduling (:mod:`repro.sim.node`) and per-JVM-brand instruction cost
models (:mod:`repro.sim.cost_model`).
"""

from .cost_model import BRANDS, IBM, SUN, CostModel, get_brand
from .engine import (
    NS_PER_MS,
    NS_PER_SEC,
    NS_PER_US,
    EventHandle,
    SimEngine,
    SimulationError,
)
from .node import DEFAULT_QUANTUM_NS, ExecStream, Node, StreamState

__all__ = [
    "BRANDS",
    "IBM",
    "SUN",
    "CostModel",
    "get_brand",
    "NS_PER_MS",
    "NS_PER_SEC",
    "NS_PER_US",
    "EventHandle",
    "SimEngine",
    "SimulationError",
    "DEFAULT_QUANTUM_NS",
    "ExecStream",
    "Node",
    "StreamState",
]
