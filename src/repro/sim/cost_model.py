"""Per-"JVM brand" instruction cost models.

The paper evaluates JavaSplit on two real JVMs (Sun JDK 1.4.0 and IBM JDK
1.3.0) and observes sharply different instrumentation slowdowns (Table 1):
IBM's JVM optimizes repeated heap accesses to ~an order of magnitude below
Sun's, so the same absolute access-check cost is a much larger *relative*
slowdown there ("the access checks stand in the way of optimizations
employed in the IBM JVM").

We reproduce that mechanism with data: each brand is a table of simulated
instruction costs (integer nanoseconds).  Heap-access opcodes have two
entries — the plain cost and the ``*_checked`` cost billed when the
rewriter has prepended an access check (the checked cost covers both the
check fast path of Figure 3 and the de-optimized access).  The tables are
calibrated so the *ratios* match Table 1/Table 2 of the paper; absolute
numbers are an arbitrary nanosecond scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

# ---------------------------------------------------------------------------
# Cost keys
# ---------------------------------------------------------------------------
# Heap accesses (Table 1 rows)
FIELD_READ = "field_read"
FIELD_WRITE = "field_write"
STATIC_READ = "static_read"
STATIC_WRITE = "static_write"
ARRAY_READ = "array_read"
ARRAY_WRITE = "array_write"


def checked(key: str) -> str:
    """Cost key billed for a heap access guarded by a DSM access check."""
    return key + "_checked"


# Synchronization (Table 2 rows)
MONITOR_ENTER = "monitor_enter"          # original Java acquire
MONITOR_EXIT = "monitor_exit"
LOCAL_LOCK_OP = "local_lock_op"          # §4.4 lock-counter acquire/release
SHARED_ACQUIRE = "shared_acquire"        # DSM handler, lock already cached
SHARED_RELEASE = "shared_release"

# Everything else
CONST = "const"
LOCAL = "local"          # load/store of a local variable slot
ARITH = "arith"
BRANCH = "branch"
STACK = "stack"          # dup/pop/swap
INVOKE = "invoke"
RETURN_ = "return"
ALLOC = "alloc"
ALLOC_ARRAY = "alloc_array"
NATIVE = "native"
CHECK_HIT = "check_hit"  # standalone access-check fast path (for statics ref)
CONVERT = "convert"

# Communication (Table 3): latency = fixed + size * per_byte
COMM_FIXED_NS = "comm_fixed_ns"
COMM_PER_BYTE_NS = "comm_per_byte_ns"
# CPU cost billed for running a DSM protocol handler on a node
PROTO_HANDLER_NS = "proto_handler_ns"
# Cost of serializing/deserializing one byte of DSM payload
SERIALIZE_PER_BYTE_NS = "serialize_per_byte_ns"


@dataclass(frozen=True)
class CostModel:
    """Immutable cost table for one JVM brand."""

    brand: str
    costs: Dict[str, int] = field(default_factory=dict)

    def cost(self, key: str) -> int:
        """Cost in nanoseconds for one key; unknown keys raise."""
        try:
            return self.costs[key]
        except KeyError:
            raise KeyError(f"brand {self.brand!r} has no cost for {key!r}") from None

    def __getitem__(self, key: str) -> int:
        return self.cost(key)

    def scaled(self, dilation: int) -> "CostModel":
        """A time-dilated copy: instruction-execution costs ×``dilation``,
        communication-path costs unchanged.

        Rationale: the paper's workloads run for minutes on real hardware
        (e.g. Series with N=100000), which sets the compute:communication
        ratio; a Python-interpreted simulation cannot execute that many
        instructions.  Dilation makes each simulated instruction stand
        for ``dilation`` real ones — weak-scaling the workload without
        executing it — so small inputs reproduce the full-size ratio.
        All intra-brand cost *ratios* (Tables 1 and 2) are preserved.
        """
        if dilation == 1:
            return self
        if dilation < 1:
            raise ValueError("dilation must be >= 1")
        # Communication costs and synchronization-handler costs are
        # per-event constants in the real system — they do not grow with
        # the workload — so weak-scaling leaves them alone.  (Checked
        # heap accesses in compute loops *do* scale, which is what keeps
        # the instrumentation-slowdown factor of §6.2 intact.)
        unscaled = {
            COMM_FIXED_NS, COMM_PER_BYTE_NS, PROTO_HANDLER_NS,
            SERIALIZE_PER_BYTE_NS,
            MONITOR_ENTER, MONITOR_EXIT, LOCAL_LOCK_OP,
            SHARED_ACQUIRE, SHARED_RELEASE,
        }
        return CostModel(
            self.brand,
            {
                key: (value if key in unscaled else value * dilation)
                for key, value in self.costs.items()
            },
        )


def _table(base: Dict[str, int]) -> Dict[str, int]:
    missing = _ALL_KEYS - set(base)
    if missing:  # pragma: no cover - construction-time sanity
        raise ValueError(f"cost table missing keys: {sorted(missing)}")
    return dict(base)


_ALL_KEYS = {
    FIELD_READ, FIELD_WRITE, STATIC_READ, STATIC_WRITE, ARRAY_READ,
    ARRAY_WRITE,
    checked(FIELD_READ), checked(FIELD_WRITE), checked(STATIC_READ),
    checked(STATIC_WRITE), checked(ARRAY_READ), checked(ARRAY_WRITE),
    MONITOR_ENTER, MONITOR_EXIT, LOCAL_LOCK_OP, SHARED_ACQUIRE,
    SHARED_RELEASE,
    CONST, LOCAL, ARITH, BRANCH, STACK, INVOKE, RETURN_, ALLOC, ALLOC_ARRAY,
    NATIVE, CHECK_HIT, CONVERT,
    COMM_FIXED_NS, COMM_PER_BYTE_NS, PROTO_HANDLER_NS, SERIALIZE_PER_BYTE_NS,
}

# ---------------------------------------------------------------------------
# Brand tables
# ---------------------------------------------------------------------------
# "sun"-like brand: expensive baseline heap accesses, so access checks cost
# a factor of only ~2-6x (Table 1, left half).
SUN = CostModel(
    "sun",
    _table({
        FIELD_READ: 84, checked(FIELD_READ): 182,      # 2.17x
        FIELD_WRITE: 97, checked(FIELD_WRITE): 248,    # 2.56x
        # A rewritten static access = DSM_STATICREF (CHECK_HIT) + checked
        # holder-field access, so the checked entries here are set such
        # that CHECK_HIT + checked == the Table 1 rewritten latency.
        STATIC_READ: 80, checked(STATIC_READ): 132,    # 2.2x incl. CHECK_HIT
        STATIC_WRITE: 85, checked(STATIC_WRITE): 217,  # 3.1x incl. CHECK_HIT
        ARRAY_READ: 98, checked(ARRAY_READ): 545,      # 5.56x
        ARRAY_WRITE: 123, checked(ARRAY_WRITE): 505,   # 4.1x
        MONITOR_ENTER: 906, MONITOR_EXIT: 450,
        LOCAL_LOCK_OP: 196,                            # 0.22x of original
        SHARED_ACQUIRE: 2810, SHARED_RELEASE: 1400,    # 3.1x of original
        CONST: 3, LOCAL: 3, ARITH: 4, BRANCH: 4, STACK: 2,
        INVOKE: 45, RETURN_: 20, ALLOC: 90, ALLOC_ARRAY: 120,
        NATIVE: 35, CHECK_HIT: 40, CONVERT: 4,
        COMM_FIXED_NS: 600_000, COMM_PER_BYTE_NS: 88,
        PROTO_HANDLER_NS: 4_000, SERIALIZE_PER_BYTE_NS: 12,
    }),
)

# "ibm"-like brand: heavily optimized baseline heap accesses (roughly an
# order of magnitude cheaper than "sun"); the access check defeats the
# optimization, so the checked cost is similar in absolute terms and the
# slowdown factors land in the 12-55x band (Table 1, right half).
IBM = CostModel(
    "ibm",
    _table({
        FIELD_READ: 7, checked(FIELD_READ): 163,       # 23.3x
        FIELD_WRITE: 6, checked(FIELD_WRITE): 74,      # 12.3x
        STATIC_READ: 6, checked(STATIC_READ): 96,      # 26.8x incl. CHECK_HIT
        STATIC_WRITE: 6, checked(STATIC_WRITE): 21,    # 12.2x incl. CHECK_HIT
        ARRAY_READ: 9, checked(ARRAY_READ): 499,       # 55.4x
        ARRAY_WRITE: 19, checked(ARRAY_WRITE): 498,    # 26.2x
        MONITOR_ENTER: 934, MONITOR_EXIT: 460,
        LOCAL_LOCK_OP: 547,                            # 0.59x of original
        SHARED_ACQUIRE: 3270, SHARED_RELEASE: 1600,    # 3.5x of original
        CONST: 1, LOCAL: 1, ARITH: 2, BRANCH: 2, STACK: 1,
        INVOKE: 25, RETURN_: 12, ALLOC: 70, ALLOC_ARRAY: 95,
        NATIVE: 22, CHECK_HIT: 40, CONVERT: 2,
        COMM_FIXED_NS: 90_000, COMM_PER_BYTE_NS: 91,
        PROTO_HANDLER_NS: 3_000, SERIALIZE_PER_BYTE_NS: 10,
    }),
)

# ---------------------------------------------------------------------------
# Application profile (§6.2)
# ---------------------------------------------------------------------------
# Table 1's IBM originals are micro-benchmark numbers: "the optimized
# latency of REPEATED accesses to the same data in IBM's JVM ... one order
# of magnitude smaller".  The paper then observes that "none of the tested
# real applications has ever exhibited such instrumentation slowdown. We
# attribute this to non-trivial access patterns" — i.e. real applications
# do not trigger the repeated-access optimization, so their *original*
# heap accesses run at un-quickened cost while the checked costs are the
# same, which lands the app-level slowdown in the 3-5.5x band the paper
# reports for IBM (and leaves Sun, which shows no such optimization in
# Table 1, unchanged).  The "app" profile encodes exactly that.
_IBM_APP_ORIGINALS = {
    FIELD_READ: 45,    # checked 163 -> 3.6x app slowdown
    FIELD_WRITE: 20,   # checked 74  -> 3.7x
    STATIC_READ: 40,   # checked 96+40 CHECK_HIT -> 3.4x
    STATIC_WRITE: 18,  # checked 21+40 -> 3.4x
    ARRAY_READ: 90,    # checked 499 -> 5.5x
    ARRAY_WRITE: 95,   # checked 498 -> 5.2x
}

IBM_APP = CostModel("ibm", {**IBM.costs, **_IBM_APP_ORIGINALS})

BRANDS: Dict[str, CostModel] = {"sun": SUN, "ibm": IBM}
_APP_BRANDS: Dict[str, CostModel] = {"sun": SUN, "ibm": IBM_APP}

PROFILE_MICRO = "micro"
PROFILE_APP = "app"


def get_brand(name: str, profile: str = PROFILE_MICRO) -> CostModel:
    """Look up a brand cost model by name (``"sun"`` or ``"ibm"``).

    ``profile="micro"`` is the Table 1/2 calibration (repeated-access
    loops); ``profile="app"`` is the application calibration (§6.2's
    observed app-level slowdowns).  They differ only in the IBM brand's
    original heap-access costs — see the comment above ``IBM_APP``.
    """
    table = {
        PROFILE_MICRO: BRANDS,
        PROFILE_APP: _APP_BRANDS,
    }.get(profile)
    if table is None:
        raise KeyError(f"unknown cost profile {profile!r}")
    try:
        return table[name]
    except KeyError:
        raise KeyError(
            f"unknown JVM brand {name!r}; available: {sorted(BRANDS)}"
        ) from None
