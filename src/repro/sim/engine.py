"""Deterministic discrete-event simulation engine.

This is the clock substrate for the whole reproduction.  The paper runs on
real wall-clock time over a real cluster; we replace that with a single
event heap keyed by ``(time, sequence)`` so that every experiment is
exactly replayable.  Simulated time is kept in integer **nanoseconds** to
avoid floating-point drift in long runs.

The engine knows nothing about JVMs, networks or DSM protocols: those
layers schedule callbacks here.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. scheduling in the past)."""


@dataclass(order=True)
class _Event:
    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`SimEngine.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event.  Cancelling an already-fired event is a no-op."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        """True once cancel() was called."""
        return self._event.cancelled

    @property
    def time(self) -> int:
        """Absolute simulated firing time of the event."""
        return self._event.time


class SimEngine:
    """A minimal, deterministic event loop with an integer-ns clock.

    Events scheduled at the same timestamp fire in scheduling order
    (FIFO), which makes concurrent protocol interleavings deterministic.
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._heap: list[_Event] = []
        self._events_fired: int = 0
        self._running = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current simulated time in seconds."""
        return self._now / NS_PER_SEC

    @property
    def events_fired(self) -> int:
        """Total events executed so far."""
        return self._events_fired

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay_ns: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire ``delay_ns`` from now.

        ``delay_ns`` must be a non-negative integer; a zero delay fires
        after all events already queued for the current instant.
        """
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay_ns})")
        event = _Event(self._now + int(delay_ns), self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_at(self, time_ns: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns} < now {self._now}"
            )
        return self.schedule(time_ns - self._now, callback)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single earliest pending event.

        Returns ``False`` when the heap is empty (nothing fired).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event heap time went backwards")
            self._now = event.time
            self._events_fired += 1
            event.callback()
            return True
        return False

    def run(
        self,
        until_ns: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run events until exhaustion or until a bound trips.

        Parameters
        ----------
        until_ns:
            Stop before firing any event with ``time > until_ns``; the
            clock is advanced to ``until_ns`` on a clean timeout.
        max_events:
            Fire at most this many events (a runaway-loop backstop).
        stop_when:
            Checked after each event; run stops once it returns True.

        Returns the number of events fired during this call.
        """
        fired = 0
        self._running = True
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    break
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until_ns is not None and head.time > until_ns:
                    self._now = max(self._now, until_ns)
                    break
                if not self.step():  # pragma: no cover - head checked above
                    break
                fired += 1
                if stop_when is not None and stop_when():
                    break
        finally:
            self._running = False
        return fired

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run until no events remain.  ``max_events`` guards runaways."""
        fired = self.run(max_events=max_events)
        if self._heap and fired >= max_events:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events"
            )
        return fired

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return sum(1 for e in self._heap if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimEngine(now={self._now}ns, pending={self.pending})"
