"""Adaptive locality subsystem: home migration, sharing-pattern
prefetch, and release-time message aggregation for MTS-HLRC.

The paper's protocol pins every coherency unit to the node that created
it.  That is cheap (homes are computable from the gid) but pessimal for
single-remote-writer units: every release pays a diff round-trip to a
home that never reads the data.  This subsystem observes per-unit access
patterns at runtime and adapts three things, each behind its own
``RuntimeConfig`` knob and each off by default:

- ``locality_migration``: re-home a unit to its dominant writer once the
  writer's remote diffs cross a threshold.  The ownership handoff
  piggybacks on the diff-ack the writer is already waiting on, so it
  costs no extra messages; stale-directory traffic is forwarded by the
  old home and corrected with lazy redirect gossip.
- ``locality_prefetch``: on acquire, the units the incoming write-notice
  delta just invalidated are the acquirer's likely next reads — batch
  them into one bulk-fetch per home instead of k demand round-trips.
- ``locality_aggregation``: coalesce same-destination protocol messages
  emitted inside one release/acquire handler into a single aggregate
  frame, paying the fixed per-message cost and header once.

With every knob off no agent is attached and runs are byte-identical to
a build without the subsystem.
"""

from .manager import LocalityAgent, LocalityManager
from .profiler import AccessProfiler

__all__ = ["AccessProfiler", "LocalityAgent", "LocalityManager"]
