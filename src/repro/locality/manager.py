"""LocalityManager / LocalityAgent: the adaptive-locality runtime.

One :class:`LocalityManager` per runtime (when any ``locality_*`` knob
is on) owns a per-node :class:`LocalityAgent` and a harness-level
migration registry (which unit lives where now) mirroring what the
paper's coordinator would track.  All actual adaptation traffic —
migration grants, forwarded diffs, redirect gossip, bulk fetches,
aggregate frames — flows through the simulated network and is accounted
like any other protocol message.

Correctness notes for the migration handoff:

- A grant rides in the M_DIFF_ACK of the diff that crossed the policy
  threshold.  Under the §3.1 fence no third-party diff of the unit can
  be in flight at that instant (any earlier writer's flush was acked
  before the token could reach the current writer), so the only diffs a
  stale directory can still aim at the old home come *after* the grant
  — and those hit the forwarding path below.
- The old home demotes its master to an INVALID replica in the same
  handler that serializes the grant, so there is never an instant with
  two masters.
- Directory entries are epoch-guarded: epochs increase strictly along
  a forwarding chain, so stale gossip never rolls a mapping back and
  chained forwards terminate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set, Tuple

from ..dsm.directory import home_of
from ..dsm.objectstate import ObjState
from ..dsm.protocol import (
    M_DIFF,
    M_DIFF_ACK,
    M_FETCH_REQ,
    M_FT_REDIFF_ACK,
    M_LOCK_REQ,
    M_TOKEN,
    M_OWNER_UPDATE,
)
from ..net.message import (
    HEADER_BYTES,
    M_LOC_AGG,
    M_LOC_BULK_FETCH,
    M_LOC_BULK_REPLY,
    M_LOC_FWD_DIFF,
    M_LOC_FWD_DIFF_ACK,
    M_LOC_HOME_UPDATE,
    Message,
)
from .profiler import AccessProfiler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.javasplit import JavaSplitRuntime
    from ..runtime.worker import WorkerNode

#: Message types the release/acquire aggregator may coalesce.  Everything
#: else (tokens, demand fetches, acks) is latency-critical or ordering-
#: sensitive and is sent through immediately — after flushing the
#: destination's buffer, so per-link FIFO order is preserved.
AGG_TYPES = frozenset({
    M_DIFF, M_OWNER_UPDATE, M_LOC_BULK_FETCH, M_LOC_HOME_UPDATE,
})

#: Wire fields stamped by the transport that must not survive a forward.
_TRANSPORT_FIELDS = ("__seq__", "__epoch__")


def _strip(payload: Dict[str, Any]) -> Dict[str, Any]:
    return {k: v for k, v in payload.items() if k not in _TRANSPORT_FIELDS}


class LocalityManager:
    """Adaptive-locality subsystem root, attached to one runtime."""

    def __init__(self, runtime: "JavaSplitRuntime") -> None:
        self.runtime = runtime
        cfg = runtime.config
        self.migration = cfg.locality_migration
        self.prefetch = cfg.locality_prefetch
        self.aggregation = cfg.locality_aggregation
        self.window = cfg.locality_window
        self.threshold = cfg.locality_migration_threshold
        self.prefetch_depth = cfg.locality_prefetch_depth
        self.agents: Dict[int, "LocalityAgent"] = {}
        # Harness-level registry: gid -> (current home, epoch) for every
        # migrated unit.  Recovery consults it to decide which of a dead
        # node's replicated units the buddy should adopt (units that
        # migrated away have a live master elsewhere).
        self.migrations: Dict[int, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self) -> None:
        for w in self.runtime.workers:
            self._attach_worker(w)

    def _attach_worker(self, worker: "WorkerNode") -> None:
        agent = LocalityAgent(self, worker)
        self.agents[worker.node_id] = agent
        worker.dsm.locality = agent
        agent.attach()

    def on_worker_added(self, worker: "WorkerNode") -> None:
        """Dynamic join: the newcomer's directory starts from the
        registry so it never fetches through a demoted old home."""
        self._attach_worker(worker)
        for gid in sorted(self.migrations):
            home, epoch = self.migrations[gid]
            worker.dsm.set_gid_home(gid, home, epoch)

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def note_migration(self, gid: int, home: int, epoch: int) -> None:
        current = self.migrations.get(gid)
        if current is not None and current[1] >= epoch:
            return
        self.migrations[gid] = (home, epoch)

    def current_home(self, gid: int) -> int:
        entry = self.migrations.get(gid)
        return entry[0] if entry is not None else home_of(gid)

    # ------------------------------------------------------------------
    # Failure-recovery hooks (driven by repro.ft.recovery)
    # ------------------------------------------------------------------
    def on_node_dead(self, dead: int, buddy: int) -> None:
        """Units that migrated TO the dead node are adopted by its buddy
        (their data is in the buddy's replica store); point every live
        directory at the buddy, with a fresh epoch."""
        for gid in sorted(self.migrations):
            home, epoch = self.migrations[gid]
            if home != dead:
                continue
            self.migrations[gid] = (buddy, epoch + 1)
            for node_id in sorted(self.agents):
                if self.runtime.workers[node_id].dead:
                    continue
                self.agents[node_id].dsm.set_gid_home(
                    gid, buddy, epoch + 1)

    def on_peer_dead_all(self, dead: int) -> None:
        """Per-agent cleanup after a peer death (recovery phase 5)."""
        for node_id in sorted(self.agents):
            if self.runtime.workers[node_id].dead or node_id == dead:
                continue
            self.agents[node_id].on_peer_dead(dead)

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """Locality summary for RunReport."""
        stats = [a.dsm.stats for a in self.agents.values()]
        return {
            "migrated_units": len(self.migrations),
            "migrations_out": sum(s.migrations_out for s in stats),
            "fwd_diffs": sum(s.fwd_diffs for s in stats),
            "home_forwards": sum(s.home_forwards for s in stats),
            "prefetch_bulk": sum(s.prefetch_bulk for s in stats),
            "prefetch_units": sum(s.prefetch_units for s in stats),
            "prefetch_hits": sum(s.prefetch_hits for s in stats),
            "agg_frames": sum(s.agg_frames for s in stats),
            "agg_subframes": sum(s.agg_subframes for s in stats),
        }


class LocalityAgent:
    """Per-node locality agent: the DSM engine's ``locality`` hooks plus
    the locality message handlers and the release-time aggregator."""

    def __init__(self, manager: LocalityManager,
                 worker: "WorkerNode") -> None:
        self.manager = manager
        self.worker = worker
        self.dsm = worker.dsm
        self.transport = worker.transport
        self.node_id = worker.node_id
        self.migration = manager.migration
        self.prefetch = manager.prefetch
        self.aggregation = manager.aggregation
        self.prefetch_depth = manager.prefetch_depth
        self.profiler = AccessProfiler(manager.window)
        # Optional tracer hook: called (node, kind, detail).
        self.event_sink: Optional[Callable[[int, str, str], None]] = None
        # Prefetcher: gid -> node the bulk fetch went to.
        self._inflight_prefetch: Dict[int, int] = {}
        # Proxy state for split diff batches: fwd_id -> record.  Each
        # record shares a ``state`` dict with its siblings so the proxy
        # sends exactly ONE combined ack once every part is applied.
        self._fwd_pending: Dict[int, Dict[str, Any]] = {}
        self._next_fwd_id = 0
        # Redirect gossip dedup: (peer, gid) pairs already hinted.
        self._hinted: Set[Tuple[int, int]] = set()
        # Units whose grant was installed around this node's own VALID
        # working copy: forwarded copies of its pre-grant diffs are
        # already folded in and must be dropped, not re-applied.
        self._self_folded: Set[int] = set()
        # Aggregator: handler-scope depth + per-destination buffers.
        self._scope_depth = 0
        self._buffers: Dict[int, List[Message]] = {}
        self._raw_send: Callable[..., Message] = self.transport.send

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self) -> None:
        t = self.transport
        t.on(M_LOC_HOME_UPDATE, self._on_home_update)
        t.on(M_LOC_FWD_DIFF, self._on_fwd_diff)
        t.on(M_LOC_FWD_DIFF_ACK, self._on_fwd_diff_ack)
        t.on(M_LOC_BULK_FETCH, self._on_bulk_fetch)
        t.on(M_LOC_BULK_REPLY, self._on_bulk_reply)
        t.on(M_LOC_AGG, self._on_agg)
        if self.aggregation:
            # Innermost send wrapper: observers (oracle/monitor/tracer)
            # attach after runtime construction, so they wrap _agg_send
            # and see every LOGICAL message exactly once; the aggregate
            # frames themselves leave through the raw send captured
            # above and stay invisible to them.
            self.transport.send = self._agg_send
            t._handlers[M_TOKEN] = self._scoped(t._handlers[M_TOKEN])
            self.dsm.release = self._scoped(self.dsm.release)
            self.dsm.dsm_wait = self._scoped(self.dsm.dsm_wait)

    def _emit(self, kind: str, detail: str) -> None:
        if self.event_sink is not None:
            self.event_sink(self.node_id, kind, detail)

    # ------------------------------------------------------------------
    # Redirect gossip
    # ------------------------------------------------------------------
    def _maybe_hint(self, peer: int, gid: int) -> None:
        """Tell a peer (once) where a migrated unit lives now, so its
        next message goes straight to the current home."""
        if peer == self.node_id or (peer, gid) in self._hinted:
            return
        entry = self.dsm._loc_dir.entry(gid)
        if entry is None:
            return
        home, epoch = entry
        if home == peer:
            # Never tell a node that it is itself the home: the grant
            # in flight to it is the authoritative channel, and an early
            # hint would make it apply still-in-flight forwarded diffs
            # to the replica the grant is about to overwrite.
            return
        self._hinted.add((peer, gid))
        self.transport.send(peer, M_LOC_HOME_UPDATE, {
            "gid": gid, "home": home, "epoch": epoch,
        })

    def _on_home_update(self, msg: Message) -> None:
        p = msg.payload
        gid = p["gid"]
        self.dsm.set_gid_home(gid, p["home"], p["epoch"])
        # A prefetch aimed at the old home will echo the gid back
        # unserved; nothing else to do here.

    # ------------------------------------------------------------------
    # Stale-directory forwarding (old-home side)
    # ------------------------------------------------------------------
    def redirect_fetch(self, msg: Message) -> bool:
        gid = msg.payload["gid"]
        if self.dsm.home_node(gid) == self.node_id:
            return False
        self.dsm.stats.home_forwards += 1
        fwd = _strip(msg.payload)
        # Keep the original requester so the serving home replies
        # directly instead of bouncing through this node.
        fwd["requester"] = msg.payload.get("requester", msg.src)
        self.transport.send(self.dsm.home_node(gid), M_FETCH_REQ, fwd)
        self._maybe_hint(msg.src, gid)
        return True

    def redirect_lock_req(self, msg: Message) -> bool:
        gid = msg.payload["gid"]
        if self.dsm.home_node(gid) == self.node_id:
            return False
        self.dsm.stats.home_forwards += 1
        self.transport.send(
            self.dsm.home_node(gid), M_LOCK_REQ, _strip(msg.payload))
        self._maybe_hint(msg.payload["node"], gid)
        return True

    def redirect_owner_update(self, msg: Message) -> bool:
        gid = msg.payload["gid"]
        if self.dsm.home_node(gid) == self.node_id:
            return False
        self.dsm.stats.home_forwards += 1
        self.transport.send(
            self.dsm.home_node(gid), M_OWNER_UPDATE, _strip(msg.payload))
        self._maybe_hint(msg.src, gid)
        return True

    # ------------------------------------------------------------------
    # Split diff batches (old-home proxy)
    # ------------------------------------------------------------------
    def intercept_diff(self, msg: Message) -> bool:
        """M_DIFF hook: if any entry names a unit migrated away, split
        the batch — apply the local part, forward the rest — and promise
        the writer exactly one combined M_DIFF_ACK."""
        return self._maybe_proxy(
            msg, M_DIFF_ACK, msg.payload["ack_id"], require_remote=True)

    def intercept_rediff(self, msg: Message) -> bool:
        """Same, for recovery-time M_FT_REDIFF batches."""
        return self._maybe_proxy(
            msg, M_FT_REDIFF_ACK, msg.payload["ack_id"],
            require_remote=True)

    def _on_fwd_diff(self, msg: Message) -> None:
        """New-home side of a forwarded diff.  Re-splits if some entries
        migrated onward (chained migration): epochs increase along the
        chain, so forwarding terminates."""
        self._maybe_proxy(
            msg, M_LOC_FWD_DIFF_ACK, msg.payload["fwd_id"],
            require_remote=False, ack_field="fwd_id")

    def folds_own_diff(self, gid: int, writer: int) -> bool:
        """True when a diff entry from ``writer`` for ``gid`` is this
        node's own pre-grant flush: the grant was installed around the
        local working copy, so the write is already in the master."""
        return writer == self.node_id and gid in self._self_folded

    def _maybe_proxy(self, msg: Message, ack_type: str, ack_value: int,
                     require_remote: bool,
                     ack_field: str = "ack_id") -> bool:
        p = msg.payload
        local: List[Tuple[Any, bytes, Optional[int]]] = []
        folded: List[Tuple[int, int]] = []
        by_home: Dict[int, List[Tuple[Any, bytes, Optional[int]]]] = {}
        for entry in p["entries"]:
            gid = entry[0]
            home = self.dsm.home_node(gid)
            if home == self.node_id:
                obj = self.dsm.cache.get(gid)
                hdr = None if obj is None else obj.header
                if hdr is None or hdr.state != ObjState.HOME:
                    # Directory says "here" but the master has not been
                    # installed yet (grant still in flight): bounce via
                    # the origin home, whose redirect chain is current.
                    by_home.setdefault(home_of(gid), []).append(entry)
                    continue
                if entry[2] is None and self.folds_own_diff(
                        gid, p["writer"]):
                    # This node's own diff coming back around the old
                    # home: applying it would roll the master back over
                    # newer local releases.  Ack at the current version.
                    folded.append((gid, hdr.version))
                    continue
                local.append(entry)
            else:
                by_home.setdefault(home, []).append(entry)
        if require_remote and not by_home and not folded:
            return False  # clean batch: the normal handler runs
        state: Dict[str, Any] = {
            "src": msg.src,
            "ack_type": ack_type,
            "ack_field": ack_field,
            "ack_value": ack_value,
            "versions": [],
            "pending": 0,
        }
        state["versions"].extend(folded)
        if local:
            acks = self.dsm._apply_diff_entries({
                "entries": local,
                "writer": p["writer"],
                "interval": p["interval"],
            })
            if self.dsm.ft is not None:
                self.dsm.ft.on_home_advance(acks)
            state["versions"].extend(acks)
        for home in sorted(by_home):
            entries = by_home[home]
            self.dsm.stats.fwd_diffs += len(entries)
            fwd_id = self._next_fwd_id
            self._next_fwd_id += 1
            fpayload = {
                "entries": entries,
                "writer": p["writer"],
                "interval": p["interval"],
                "fwd_id": fwd_id,
            }
            size = HEADER_BYTES + sum(14 + len(d) for _g, d, _r in entries)
            self._fwd_pending[fwd_id] = {
                "state": state, "dst": home,
                "payload": fpayload, "size": size,
            }
            state["pending"] += 1
            self.transport.send(home, M_LOC_FWD_DIFF, fpayload,
                                size_bytes=size)
            for gid, _d, _r in entries:
                self._maybe_hint(p["writer"], gid)
        if state["pending"] == 0:
            self._finish_proxy(state)
        return True

    def _on_fwd_diff_ack(self, msg: Message) -> None:
        rec = self._fwd_pending.pop(msg.payload["fwd_id"], None)
        if rec is None:
            return  # settled by an earlier (re-forwarded) ack
        state = rec["state"]
        state["versions"].extend(
            tuple(v) if isinstance(v, list) else v
            for v in msg.payload["versions"]
        )
        state["pending"] -= 1
        if state["pending"] == 0:
            self._finish_proxy(state)

    def _finish_proxy(self, state: Dict[str, Any]) -> None:
        self.transport.send(state["src"], state["ack_type"], {
            state["ack_field"]: state["ack_value"],
            "versions": list(state["versions"]),
        })

    # ------------------------------------------------------------------
    # Migration policy (old-home side) and grant install (writer side)
    # ------------------------------------------------------------------
    def consider_migration(self, msg: Message) -> Optional[List[Dict[str, Any]]]:
        """After a clean diff batch applied: feed the profiler and grant
        away any unit the writer now dominates.  Grants piggyback on the
        M_DIFF_ACK the writer is fenced on."""
        if not self.migration:
            return None
        p = msg.payload
        writer = p["writer"]
        if writer == self.node_id:
            return None
        grants: List[Dict[str, Any]] = []
        for gid, _diff, region in p["entries"]:
            if region is not None or gid in self.dsm._regions:
                continue  # regioned arrays keep their static home
            self.profiler.note_diff(gid, writer)
            if self.dsm.home_node(gid) != self.node_id:
                continue
            if not self.profiler.should_migrate(
                    gid, writer, self.manager.threshold):
                continue
            unit = self.dsm._loc_grant_unit(gid)
            if unit is None:
                continue
            epoch = self.dsm._loc_dir.epoch(gid) + 1
            grant = dict(unit)
            grant["epoch"] = epoch
            grant["lock_owner"] = self.dsm.lock_owner.get(
                gid, self.node_id)
            self.dsm.set_gid_home(gid, writer, epoch)
            self.dsm.stats.migrations_out += 1
            self.profiler.reset(gid)
            self.manager.note_migration(gid, writer, epoch)
            self._emit("locality.migrate",
                       f"gid={gid:#x} home {self.node_id} -> {writer} "
                       f"epoch {epoch}")
            grants.append(grant)
        return grants or None

    def install_grants(self, src: int,
                       grants: List[Dict[str, Any]]) -> None:
        """Writer side (inside M_DIFF_ACK): become the home of each
        granted unit."""
        for grant in grants:
            gid = grant["gid"]
            if (not self.dsm.set_gid_home(gid, self.node_id,
                                          grant["epoch"])
                    and self.dsm._loc_dir.get(gid) != self.node_id):
                # A strictly newer migration moved the unit elsewhere.
                # (An equal-epoch entry pointing HERE is just this
                # migration's own redirect gossip arriving first.)
                continue
            obj = self.dsm.cache.get(gid)
            hdr = obj.header if obj is not None else None
            if hdr is not None and hdr.state == ObjState.VALID:
                # Under the §3.1 fence the grantee is the sole writer,
                # so its VALID working copy holds every interval it has
                # produced — including diffs still in flight to the old
                # home, which the grant snapshot predates.  Install the
                # master around the LOCAL data (at the grant's version)
                # and drop those diffs when they come back forwarded.
                snap = self.dsm.ft_serialize_unit(gid)
                if snap is not None:
                    grant = dict(grant, data=snap["data"])
                    self._self_folded.add(gid)
            self.dsm.ft_install_master(grant)
            self.dsm.lock_owner[gid] = grant["lock_owner"]
            self.dsm.stats.migrations_in += 1
            self.manager.note_migration(gid, self.node_id, grant["epoch"])
            if self.dsm.ft is not None:
                # The buddy of THIS node must now protect the unit.
                self.dsm.ft.note_adopted(gid)
                self.dsm.ft.on_home_advance([(gid, grant["version"])])

    # ------------------------------------------------------------------
    # Sharing-pattern prefetch
    # ------------------------------------------------------------------
    def fetch_covered(self, gid: int, region: Optional[int]) -> bool:
        """True when a demand fetch can ride on an in-flight prefetch."""
        return region is None and gid in self._inflight_prefetch

    def on_token_notices(self, notices: List[Any]) -> None:
        """Acquire side: the notice delta names the units this node's
        next reads will miss on — bulk-fetch them per home."""
        if not self.prefetch:
            return
        by_home: Dict[int, List[int]] = {}
        for n in notices:
            gid = n.gid
            if isinstance(gid, tuple):
                continue  # regioned units fault in per region
            obj = self.dsm.cache.get(gid)
            if obj is None or gid in self.dsm._regions:
                continue
            hdr = obj.header
            if hdr is None or hdr.state != ObjState.INVALID:
                continue
            if hdr.version <= 0:
                # Never fetched here: a stub from reference
                # deserialization, not evidence this node reads it.
                continue
            if hdr.version >= self.dsm.notice_table.required_scalar(gid):
                continue
            if (gid, None) in self.dsm._fetch_waiters:
                continue  # a demand fetch is already in flight
            if gid in self._inflight_prefetch:
                continue
            home = self.dsm.home_node(gid)
            if home == self.node_id:
                continue
            by_home.setdefault(home, []).append(gid)
        for home in sorted(by_home):
            gids = by_home[home][: self.prefetch_depth]
            for gid in gids:
                self._inflight_prefetch[gid] = home
            self.dsm.stats.prefetch_bulk += 1
            self._emit("locality.prefetch",
                       f"{len(gids)} unit(s) from node {home}")
            self.transport.send(home, M_LOC_BULK_FETCH, {"gids": gids})

    def _on_bulk_fetch(self, msg: Message) -> None:
        gids = msg.payload["gids"]
        for gid in gids:
            self.profiler.note_fetch(gid, msg.src)
            if self.dsm.home_node(gid) != self.node_id:
                self._maybe_hint(msg.src, gid)
        self.dsm._serve_bulk(msg.src, gids)

    def _on_bulk_reply(self, msg: Message) -> None:
        p = msg.payload
        served = {u["gid"]: u for u in p["units"]}
        for gid in p["requested"]:
            self._inflight_prefetch.pop(gid, None)
            unit = served.get(gid)
            installed = False
            if unit is not None:
                obj = self.dsm.cache.get(gid)
                hdr = obj.header if obj is not None else None
                if (hdr is not None
                        and hdr.state == ObjState.INVALID
                        and unit["version"]
                        >= self.dsm.notice_table.required_scalar(gid)):
                    self.dsm._install_unit(unit)
                    self.dsm.stats.prefetch_units += 1
                    installed = True
            if installed:
                self.dsm._fetch_targets.pop((gid, None), None)
                waiters = self.dsm._fetch_waiters.pop((gid, None), [])
                if waiters:
                    self.dsm.stats.prefetch_hits += 1
                if self.dsm.obs is not None:
                    # Close the demand-fetch span/stalls this prefetch
                    # just satisfied (no-op if nothing was waiting).
                    self.dsm.obs.on_fetch_done(
                        gid, None, [t.tid for t in waiters],
                        len(unit["data"]))
                for thread in waiters:
                    thread.wake()
            elif self.dsm._fetch_waiters.get((gid, None)):
                # Parked waiters whose prefetch came back unserved (or
                # stale): fall back to a normal demand fetch.
                self._demand_fetch(gid)

    def _demand_fetch(self, gid: int) -> None:
        payload = {
            "gid": gid, "region": None,
            "required": self.dsm.notice_table.required_scalar(gid),
        }
        self.dsm.stats.fetches += 1
        target = self.dsm.home_node(gid)
        self.dsm._fetch_targets[(gid, None)] = target
        self.transport.send(target, M_FETCH_REQ, payload)

    # ------------------------------------------------------------------
    # Release/acquire message aggregation
    # ------------------------------------------------------------------
    def _scoped(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            self._scope_depth += 1
            try:
                return fn(*args, **kwargs)
            finally:
                self._scope_depth -= 1
                if self._scope_depth == 0:
                    self._flush_all()
        return wrapper

    def _agg_send(self, dst: int, msg_type: str,
                  payload: Optional[Dict[str, Any]] = None,
                  size_bytes: int = 0) -> Message:
        if (self._scope_depth > 0 and dst != self.node_id
                and msg_type in AGG_TYPES):
            msg = Message(
                msg_type=msg_type, src=self.node_id, dst=dst,
                payload=dict(payload or {}), size_bytes=size_bytes,
            )
            self._buffers.setdefault(dst, []).append(msg)
            return msg
        if self._buffers.get(dst):
            # FIFO: buffered frames must precede this send on the link.
            self._flush_dst(dst)
        return self._raw_send(dst, msg_type, payload, size_bytes)

    def _flush_all(self) -> None:
        for dst in sorted(self._buffers):
            self._flush_dst(dst)

    def _flush_dst(self, dst: int) -> None:
        buf = self._buffers.pop(dst, None)
        if not buf:
            return
        if len(buf) == 1:
            m = buf[0]
            self._raw_send(dst, m.msg_type, m.payload, m.size_bytes)
            return
        frames = [(m.msg_type, m.payload, m.size_bytes) for m in buf]
        size = HEADER_BYTES + sum(m.size_bytes - HEADER_BYTES for m in buf)
        self.dsm.stats.agg_frames += 1
        self.dsm.stats.agg_subframes += len(buf)
        self._emit("locality.aggregate",
                   f"{len(buf)} frames -> node {dst}")
        self._raw_send(dst, M_LOC_AGG, {"frames": frames},
                       size_bytes=size)

    def _on_agg(self, msg: Message) -> None:
        self.transport.deliver_inner(msg, msg.payload["frames"])

    # ------------------------------------------------------------------
    # Failure recovery
    # ------------------------------------------------------------------
    def on_peer_dead(self, dead: int) -> None:
        """A peer died: re-aim pending forwarded diffs at the adoptive
        home and drop prefetches that can never be answered (parked
        demand waiters are re-issued by ft_reissue_fetches, which
        consults _fetch_targets)."""
        for fwd_id in sorted(self._fwd_pending):
            rec = self._fwd_pending[fwd_id]
            if rec["dst"] != dead:
                continue
            first_gid = rec["payload"]["entries"][0][0]
            new_home = self.dsm.home_node(first_gid)
            rec["dst"] = new_home
            self.transport.send(new_home, M_LOC_FWD_DIFF,
                                _strip(rec["payload"]),
                                size_bytes=rec["size"])
        for gid in sorted(self._inflight_prefetch):
            if self._inflight_prefetch[gid] == dead:
                del self._inflight_prefetch[gid]
