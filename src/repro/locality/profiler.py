"""Sliding-window access profiler feeding the locality policies.

The home of a coherency unit sees every remote access to it: diff
flushes name the writer, fetch requests name the reader.  A bounded
per-unit window of those events is enough to recognize the pattern the
migration policy cares about — a single remote writer repeatedly paying
diff round-trips to a home that is not using the data.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

#: Event kinds recorded in a unit's window.
FETCH = "fetch"
DIFF = "diff"


class AccessProfiler:
    """Per-unit sliding windows of remote access events."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._events: Dict[int, Deque[Tuple[str, int]]] = {}

    def _window(self, gid: int) -> Deque[Tuple[str, int]]:
        win = self._events.get(gid)
        if win is None:
            win = deque(maxlen=self.window)
            self._events[gid] = win
        return win

    def note_fetch(self, gid: int, node: int) -> None:
        """A remote node fetched this unit."""
        self._window(gid).append((FETCH, node))

    def note_diff(self, gid: int, node: int) -> None:
        """A remote node flushed a diff of this unit."""
        self._window(gid).append((DIFF, node))

    def should_migrate(self, gid: int, writer: int, threshold: int) -> bool:
        """True when ``writer`` is the unit's SOLE recent writer: at
        least ``threshold`` diffs in the window and no diff from anyone
        else.  Requiring exclusivity (not mere dominance) keeps multi-
        writer units — where migration just moves the diff traffic
        around and ping-pongs the home — pinned in place; the units
        worth moving are the single-remote-writer ones, whose diff
        round-trips disappear entirely after the move."""
        win = self._events.get(gid)
        if not win:
            return False
        mine = 0
        for kind, node in win:
            if kind != DIFF:
                continue
            if node != writer:
                return False
            mine += 1
        return mine >= threshold

    def reset(self, gid: int) -> None:
        """Forget a unit's history (called after it migrates away)."""
        self._events.pop(gid, None)

    def __len__(self) -> int:
        return len(self._events)
