"""Sliding-window access profiler feeding the locality policies.

The home of a coherency unit sees every remote access to it: diff
flushes name the writer, fetch requests name the reader.  A bounded
per-unit window of those events is enough to recognize the pattern the
migration policy cares about — a single remote writer repeatedly paying
diff round-trips to a home that is not using the data.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

#: Event kinds recorded in a unit's window.
FETCH = "fetch"
DIFF = "diff"

#: Sharing patterns recognized by :meth:`AccessProfiler.classify`.
READ_MOSTLY = "read_mostly"
PRODUCER_CONSUMER = "producer_consumer"
MIGRATORY = "migratory"
MULTI_WRITER = "multi_writer"


class AccessProfiler:
    """Per-unit sliding windows of remote access events."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._events: Dict[int, Deque[Tuple[str, int]]] = {}

    def _window(self, gid: int) -> Deque[Tuple[str, int]]:
        win = self._events.get(gid)
        if win is None:
            win = deque(maxlen=self.window)
            self._events[gid] = win
        return win

    def note_fetch(self, gid: int, node: int) -> None:
        """A remote node fetched this unit."""
        self._window(gid).append((FETCH, node))

    def note_diff(self, gid: int, node: int) -> None:
        """A remote node flushed a diff of this unit."""
        self._window(gid).append((DIFF, node))

    def should_migrate(self, gid: int, writer: int, threshold: int) -> bool:
        """True when ``writer`` is the unit's SOLE recent writer: at
        least ``threshold`` diffs in the window and no diff from anyone
        else.  Requiring exclusivity (not mere dominance) keeps multi-
        writer units — where migration just moves the diff traffic
        around and ping-pongs the home — pinned in place; the units
        worth moving are the single-remote-writer ones, whose diff
        round-trips disappear entirely after the move."""
        win = self._events.get(gid)
        if not win:
            return False
        mine = 0
        for kind, node in win:
            if kind != DIFF:
                continue
            if node != writer:
                return False
            mine += 1
        return mine >= threshold

    def classify(self, gid: int, threshold: int) -> Optional[str]:
        """Sharing pattern of a unit's current window, or None.

        The same home-side signal the migration policy reads is enough
        to tell the textbook sharing patterns apart:

        ``read_mostly``
            Fetched by several distinct readers at least ``threshold``
            times, with at most one write in the window.
        ``producer_consumer``
            Exactly one writer producing at least ``threshold`` diffs
            while at least one *other* node keeps re-fetching the unit.
        ``migratory``
            Two or more writers taking strict turns — no node diffs
            twice in a row — and nobody reads without also writing
            (access travels with the lock, the token-piggyback case).
        ``multi_writer``
            Two or more concurrent writers in any other interleaving:
            the pattern invalidation-based multiple-writer HLRC is
            already the right protocol for.

        Classification is raw per-window detection; hysteresis and
        promotion/demotion live in the policy manager, which calls this
        every time the window advances."""
        win = self._events.get(gid)
        if not win:
            return None
        writers = set()
        readers = set()
        diffs = fetches = 0
        alternating = True
        last_writer: Optional[int] = None
        for kind, node in win:
            if kind == DIFF:
                diffs += 1
                writers.add(node)
                if node == last_writer:
                    alternating = False
                last_writer = node
            else:
                fetches += 1
                readers.add(node)
        if diffs <= 1 and fetches >= threshold and len(readers) >= 2:
            return READ_MOSTLY
        if diffs < threshold:
            return None
        if len(writers) == 1 and readers - writers:
            return PRODUCER_CONSUMER
        if len(writers) >= 2:
            if alternating and readers <= writers:
                return MIGRATORY
            return MULTI_WRITER
        return None

    def reset(self, gid: int) -> None:
        """Forget a unit's history (called after it migrates away)."""
        self._events.pop(gid, None)

    def __len__(self) -> int:
        return len(self._events)
