"""Static-field transformation (§4.2).

For each class ``C`` with static fields the rewriter generates a holder
class ``C_static`` whose *instance* fields are C's statics; one shared
instance of the holder lives on the master node and is managed by the
very same coherency machinery as every other shared object.  Accesses
``getstatic C.f`` / ``putstatic C.f`` become: push the holder reference
(DSM_STATICREF — a cached per-node replica), access check, and an
ordinary checked field access on the holder.

The holder gids are assigned deterministically (sorted class order) so
every node computes the same mapping without negotiation; the master
node materializes the holders before ``main`` starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..jvm.bytecode import Instr, Op
from ..jvm.classfile import ClassFile, FieldInfo
from ..jvm.errors import ClassFormatError
from .remap import expand_code

HOLDER_SUFFIX = "_static"
OBJECT_CLASS = "javasplit.Object"


@dataclass(frozen=True)
class StaticHolderInfo:
    """Metadata the runtime needs to materialize the holders."""

    class_name: str        # the rewritten class owning the statics
    holder_class: str      # javasplit.C_static
    gid: int


def holder_class_name(class_name: str) -> str:
    return class_name + HOLDER_SUFFIX


def generate_holders(
    classfiles: Dict[str, ClassFile],
    master_node: int = 0,
) -> Tuple[List[ClassFile], Dict[str, Tuple[int, str]]]:
    """Create holder class files and the deterministic gid map.

    Returns ``(holder_classfiles, static_gids)`` where ``static_gids``
    maps the owning class name to ``(gid, holder_class_name)``.
    """
    from ..dsm.directory import NODE_SHIFT

    holders: List[ClassFile] = []
    static_gids: Dict[str, Tuple[int, str]] = {}
    with_statics = sorted(
        name for name, cf in classfiles.items() if cf.static_fields()
    )
    for idx, name in enumerate(with_statics):
        cf = classfiles[name]
        holder = ClassFile(holder_class_name(name), OBJECT_CLASS)
        holder.instrumented = True
        for f in cf.static_fields():
            holder.add_field(
                FieldInfo(f.name, f.type, is_static=False, init=f.init,
                          volatile=f.volatile)
            )
        gid = (master_node << NODE_SHIFT) | (idx + 1)
        holders.append(holder)
        static_gids[name] = (gid, holder.name)
    return holders, static_gids


def strip_statics(cf: ClassFile) -> int:
    """Remove static fields from a rewritten class (they now live in the
    holder); returns how many were moved."""
    before = len(cf.fields)
    cf.fields = [f for f in cf.fields if not f.is_static]
    return before - len(cf.fields)


def rewrite_static_accesses(
    cf: ClassFile,
    static_gids: Dict[str, Tuple[int, str]],
) -> int:
    """Rewrite getstatic/putstatic into holder accesses; returns count."""
    count = 0

    def expand(instr: Instr, pc: int):
        nonlocal count
        if instr.op is Op.GETSTATIC:
            entry = static_gids.get(instr.a)
            if entry is None:
                raise ClassFormatError(
                    f"getstatic {instr.a}.{instr.b}: no holder generated"
                )
            count += 1
            _gid, holder = entry
            access = Instr(Op.GETFIELD, holder, instr.b, checked="static",
                           line=instr.line)
            return [
                Instr(Op.DSM_STATICREF, instr.a, line=instr.line),
                Instr(Op.DSM_READCHECK, 0, line=instr.line),
                access,
            ]
        if instr.op is Op.PUTSTATIC:
            entry = static_gids.get(instr.a)
            if entry is None:
                raise ClassFormatError(
                    f"putstatic {instr.a}.{instr.b}: no holder generated"
                )
            count += 1
            _gid, holder = entry
            access = Instr(Op.PUTFIELD, holder, instr.b, checked="static",
                           line=instr.line)
            return [
                # [value] -> [value, holder] -> [holder, value]
                Instr(Op.DSM_STATICREF, instr.a, line=instr.line),
                Instr(Op.SWAP, line=instr.line),
                Instr(Op.DSM_WRITECHECK, 1, line=instr.line),
                access,
            ]
        return [instr]

    for method in cf.methods.values():
        if method.code:
            expand_code(method, expand)
    return count
