"""Instruction-expansion with branch-target remapping.

Every rewriter pass that inserts or replaces instructions changes the pc
of everything after the edit; this helper applies a per-instruction
expansion function and then fixes all branch targets, so passes stay
declarative (old instruction → replacement sequence).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..jvm.bytecode import Instr, Op
from ..jvm.classfile import MethodInfo

ExpandFn = Callable[[Instr, int], Sequence[Instr]]


def expand_code(method: MethodInfo, expand: ExpandFn) -> None:
    """Rewrite ``method.code`` in place via ``expand``.

    ``expand(instr, pc)`` returns the replacement sequence (commonly
    ``[instr]``; the original instruction object may be reused; an empty
    sequence deletes the instruction).  Branch targets are remapped to
    the new pc of the *start* of each old instruction's replacement — or,
    for a deleted instruction, of its successor — which is correct for
    inserted prefixes (checks run when a branch lands on the access),
    expanded sequences, and deletions of non-branch instructions.
    """
    old_code = method.code
    new_code: List[Instr] = []
    pc_map: List[int] = []
    for pc, instr in enumerate(old_code):
        pc_map.append(len(new_code))
        replacement = expand(instr, pc)
        new_code.extend(replacement)
    for instr in new_code:
        if instr.op is Op.GOTO and isinstance(instr.a, int):
            instr.a = pc_map[instr.a]
        elif instr.op in (Op.IF, Op.IF_CMP) and isinstance(instr.b, int):
            instr.b = pc_map[instr.b]
    method.code = new_code
