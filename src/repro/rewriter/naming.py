"""Class renaming: the parallel ``javasplit.*`` hierarchy (§4).

Every class of the input application (and every bootstrap class it
references) gets a rewritten twin named ``javasplit.<name>``; all
referenced class names inside field types, method signatures and
instructions are redirected, so the distributed execution never touches
an original class.
"""

from __future__ import annotations

from typing import Dict

from ..jvm.bytecode import Instr, Op
from ..jvm.classfile import ClassFile

PREFIX = "javasplit."

_PRIMITIVES = frozenset({"int", "double", "boolean", "str", "void"})

# Instruction operands that name classes / types.
_CLASS_A_OPS = frozenset({
    Op.NEW, Op.GETFIELD, Op.PUTFIELD, Op.GETSTATIC, Op.PUTSTATIC,
    Op.INSTANCEOF, Op.CHECKCAST,
    Op.INVOKEVIRTUAL, Op.INVOKESTATIC, Op.INVOKESPECIAL,
    Op.DSM_STATICREF,
})


def rename_type(t: str) -> str:
    """Rename a declared type (array components included)."""
    suffix = ""
    base = t
    while base.endswith("[]"):
        base = base[:-2]
        suffix += "[]"
    if base in _PRIMITIVES or base.startswith(PREFIX):
        return t
    return PREFIX + base + suffix


def original_name(t: str) -> str:
    """Strip the rewritten prefix (for reporting)."""
    if t.startswith(PREFIX):
        return t[len(PREFIX):]
    return t


def rename_class(cf: ClassFile) -> ClassFile:
    """Produce the renamed copy of one class file."""
    out = cf.copy()
    out.name = rename_type(cf.name)
    if cf.super_name is not None:
        out.super_name = rename_type(cf.super_name)
    for f in out.fields:
        f.type = rename_type(f.type)
    for m in out.methods.values():
        m.klass = out.name
        m.params = [rename_type(p) for p in m.params]
        m.ret = rename_type(m.ret)
        for instr in m.code:
            _rename_instr(instr)
    return out


def _rename_instr(instr: Instr) -> None:
    if instr.op is Op.NEWARRAY:
        instr.a = rename_type(instr.a)
    elif instr.op in _CLASS_A_OPS:
        instr.a = rename_type(instr.a)
