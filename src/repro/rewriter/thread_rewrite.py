"""Thread-creation rewriting (§4, change #1).

Bytecode that starts a thread — an ``invokevirtual`` resolving to
``Thread.start`` — is substituted with a call to the runtime handler
that ships the thread to a node chosen by the load-balancing function.
``join`` needs no call-site rewrite: the rewritten ``javasplit.Thread``
implements it as a synchronized wait on the Thread object's ``finished``
flag, which rides on the DSM like any other shared state (that is what
makes cross-node join work with zero dedicated protocol messages).
"""

from __future__ import annotations

from typing import Dict

from ..jvm.bytecode import Op
from ..jvm.classfile import ClassFile
from .sync_rewrite import MethodResolver, RT_CLASS

THREAD_CLASS = "javasplit.Thread"


def rewrite_thread_starts(cf: ClassFile, resolver: MethodResolver) -> int:
    """Replace Thread.start call sites with the spawn handler."""
    count = 0
    for method in cf.methods.values():
        for instr in method.code:
            if instr.op is Op.INVOKEVIRTUAL and instr.b == "start":
                declaring = resolver.declaring_class(instr.a, "start")
                if declaring == THREAD_CLASS:
                    instr.op = Op.INVOKESTATIC
                    instr.a = RT_CLASS
                    instr.b = "startThread"
                    count += 1
    return count
