"""Serializer generation (§4, Figure 2's ``DSM_serialize`` family).

For each rewritten class we generate a :class:`ClassSpec`: the ordered
list of field kinds matching the *runtime layout* (inherited fields
first).  The DSM interprets the spec to serialize, deserialize and diff
instances — the data-driven equivalent of the per-class utility methods
the paper's rewriter emits as bytecode.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dsm.serialization import ClassSpec, kind_of_type
from ..jvm.classfile import ClassFile
from ..jvm.errors import LinkError


def build_specs(classfiles: Dict[str, ClassFile]) -> Dict[str, ClassSpec]:
    """Specs for every class, in inheritance layout order."""
    specs: Dict[str, ClassSpec] = {}
    cache: Dict[str, List[Tuple[str, str]]] = {}

    def layout(name: str) -> List[Tuple[str, str]]:
        hit = cache.get(name)
        if hit is not None:
            return hit
        cf = classfiles.get(name)
        if cf is None:
            raise LinkError(f"serializer generation: unknown class {name!r}")
        rows: List[Tuple[str, str]] = []
        if cf.super_name is not None:
            rows.extend(layout(cf.super_name))
        for f in cf.instance_fields():
            rows.append((f.name, f.type))
        cache[name] = rows
        return rows

    for name in classfiles:
        rows = layout(name)
        specs[name] = ClassSpec(
            class_name=name,
            kinds=tuple(kind_of_type(t) for _, t in rows),
            field_names=tuple(n for n, _ in rows),
        )
    return specs
