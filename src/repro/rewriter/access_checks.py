"""Access-check insertion (§4, Figure 3).

Before every heap access — field read/write, array load/store, array
length — the rewriter inserts a DSM check that peeks the object
reference at the correct stack depth and falls through when the replica
is valid.  The access itself is flagged ``checked`` so the interpreter
bills the rewritten access cost (Table 1's methodology).

Accesses to ``volatile`` fields are additionally bracketed by
acquire/release on the holder object, mapping volatiles onto the
release-acquire semantics of the revised JMM exactly as §3 prescribes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..jvm.bytecode import Instr, Op
from ..jvm.classfile import ClassFile, FieldInfo, MethodInfo
from .remap import expand_code


class FieldTable:
    """(class, field) resolution across the rewritten class hierarchy."""

    def __init__(self, classfiles: Dict[str, ClassFile]) -> None:
        self._classfiles = classfiles

    def find(self, class_name: str, field_name: str) -> Optional[FieldInfo]:
        current: Optional[str] = class_name
        while current is not None:
            cf = self._classfiles.get(current)
            if cf is None:
                return None
            f = cf.field(field_name)
            if f is not None:
                return f
            current = cf.super_name
        return None


def insert_access_checks(cf: ClassFile, fields: FieldTable) -> Dict[str, int]:
    """Instrument all methods of one class; returns per-kind check counts."""
    counts = {"read": 0, "write": 0, "volatile": 0}
    for method in cf.methods.values():
        if method.is_native or not method.code:
            continue
        _instrument_method(method, fields, counts)
    cf.instrumented = True
    return counts


def _instrument_method(method: MethodInfo, fields: FieldTable, counts) -> None:
    def expand(instr: Instr, pc: int):
        op = instr.op
        if instr.checked:
            return [instr]  # hand-instrumented (runtime bootstrap code)
        if op is Op.GETFIELD:
            f = fields.find(instr.a, instr.b)
            if f is not None and f.volatile:
                counts["volatile"] += 1
                return _volatile_read(instr)
            counts["read"] += 1
            instr.checked = True
            return [Instr(Op.DSM_READCHECK, 0, line=instr.line), instr]
        if op is Op.PUTFIELD:
            f = fields.find(instr.a, instr.b)
            if f is not None and f.volatile:
                counts["volatile"] += 1
                return _volatile_write(instr)
            counts["write"] += 1
            instr.checked = True
            return [Instr(Op.DSM_WRITECHECK, 1, line=instr.line), instr]
        if op is Op.ARRLOAD:
            counts["read"] += 1
            instr.checked = True
            return [Instr(Op.DSM_READCHECK, 1, line=instr.line), instr]
        if op is Op.ARRSTORE:
            counts["write"] += 1
            instr.checked = True
            return [Instr(Op.DSM_WRITECHECK, 2, line=instr.line), instr]
        if op is Op.ARRAYLENGTH:
            counts["read"] += 1
            instr.checked = True
            return [Instr(Op.DSM_READCHECK, 0, line=instr.line), instr]
        return [instr]

    expand_code(method, expand)


def _volatile_read(instr: Instr):
    """[ref] → acquire; checked read; release → [value].

    Encapsulates the access in an acquire-release block (§3), giving the
    volatile read acquire semantics: the token transfer delivers the
    write notices that invalidate stale replicas.
    """
    instr.checked = True
    line = instr.line
    return [
        Instr(Op.DUP, line=line),
        Instr(Op.DSM_ACQUIRE, line=line),
        Instr(Op.DUP, line=line),
        Instr(Op.DSM_READCHECK, 0, line=line),
        instr,                              # [ref, value]
        Instr(Op.SWAP, line=line),
        Instr(Op.DSM_RELEASE, line=line),   # [value]
    ]


def _volatile_write(instr: Instr):
    """[ref, value] → acquire; checked write; release → []."""
    instr.checked = True
    line = instr.line
    return [
        Instr(Op.SWAP, line=line),          # [value, ref]
        Instr(Op.DUP, line=line),           # [value, ref, ref]
        Instr(Op.DSM_ACQUIRE, line=line),   # [value, ref]
        Instr(Op.DUP_X1, line=line),        # [ref, value, ref]
        Instr(Op.SWAP, line=line),          # [ref, ref, value]
        Instr(Op.DSM_WRITECHECK, 1, line=line),
        instr,                              # [ref]
        Instr(Op.DSM_RELEASE, line=line),
    ]
