"""Rewritten bootstrap classes (§4.1).

Bootstrap classes with native methods cannot be rewritten automatically,
so — exactly like the paper — we hand-write their ``javasplit.*``
versions, mostly as wrappers that route the native behaviour through the
distributed runtime:

* ``javasplit.Object`` — wait/notify declarations (call sites are
  redirected to the runtime handler class by the sync pass).
* ``javasplit.Thread`` — ``start`` checks-and-sets the ``started`` flag
  under the DSM lock and calls the spawn handler; ``join`` is a
  synchronized wait on the ``finished`` flag (pure DSM, no dedicated
  protocol); ``__runWrapper`` runs the user ``run()`` and then raises
  ``finished`` under the lock.  All heap accesses here carry hand-placed
  access checks, marked ``checked`` so the automatic pass skips them.
* ``javasplit.Sys`` — console output is low-level I/O (§4's change #4):
  the wrapper forwards lines to the master node's console.
* ``javasplit.Math`` / ``javasplit.String`` — pure functions, aliased.
* ``javasplit.JavaSplitRT`` — the runtime handler class the rewriter
  targets (read/write misses are fused instructions, so only sync,
  spawn and I/O handlers appear as methods).
"""

from __future__ import annotations

import math
from typing import Any, List

from ..jvm.assembler import ClassBuilder
from ..jvm.bytecode import Instr, Op
from ..jvm.classfile import ClassFile
from ..jvm.errors import JavaRuntimeError
from ..jvm.interpreter import BLOCK, NO_VALUE, jstr

RT = "javasplit.JavaSplitRT"
JS_OBJECT = "javasplit.Object"
JS_THREAD = "javasplit.Thread"


def _checked(op: Op, a, b=None) -> Instr:
    instr = Instr(op, a, b)
    instr.checked = True
    return instr


def build_runtime_classes() -> List[ClassFile]:
    """The hand-written javasplit bootstrap class files."""
    # javasplit.Object ------------------------------------------------------
    obj = ClassBuilder(JS_OBJECT, super_name=JS_OBJECT, is_bootstrap=True)
    obj.classfile.super_name = None
    obj.native_method("wait")
    obj.native_method("notify")
    obj.native_method("notifyAll")
    init = obj.method("<init>")
    init.ret()
    obj.finish(init)

    # javasplit.JavaSplitRT -------------------------------------------------
    rt = ClassBuilder(RT, super_name=JS_OBJECT, is_bootstrap=True)
    rt.native_method("rtWait", params=[JS_OBJECT], static=True)
    rt.native_method("rtNotify", params=[JS_OBJECT], static=True)
    rt.native_method("rtNotifyAll", params=[JS_OBJECT], static=True)
    rt.native_method("startThread", params=[JS_THREAD], static=True)
    rt.native_method("setLivePriority", params=[JS_THREAD, "int"], static=True)
    rt.native_method("error", params=["str"], static=True)

    # javasplit.Thread ------------------------------------------------------
    th = ClassBuilder(JS_THREAD, super_name=JS_OBJECT, is_bootstrap=True)
    th.field("priority", "int", init=5)
    th.field("started", "int")
    th.field("finished", "int")

    init = th.method("<init>")
    init.load(0)
    init.invoke(Op.INVOKESPECIAL, JS_OBJECT, "<init>")
    init.ret()
    th.finish(init)

    run = th.method("run")  # default run() does nothing
    run.ret()
    th.finish(run)

    # start(): delegate to the spawn handler.  Call sites are rewritten
    # straight to RT.startThread anyway (§4 change #1); the handler owns
    # the double-start check on the ``started`` flag.
    start = th.method("start")
    start.load(0)
    start.invoke(Op.INVOKESTATIC, RT, "startThread")
    start.ret()
    th.finish(start)

    # join(): synchronized { while (finished == 0) wait(this); }
    join = th.method("join")
    join.load(0)
    join.emit(Op.DSM_ACQUIRE)
    loop = join.label("loop")
    done = join.label("done")
    join.mark(loop)
    join.load(0)
    join.emit(Op.DSM_READCHECK, 0)
    join._code.append(_checked(Op.GETFIELD, JS_THREAD, "finished"))
    join.if_("ne", done)
    join.load(0)
    join.invoke(Op.INVOKESTATIC, RT, "rtWait")
    join.goto(loop)
    join.mark(done)
    join.load(0)
    join.emit(Op.DSM_RELEASE)
    join.ret()
    th.finish(join)

    setp = th.method("setPriority", params=["int"])
    setp.load(0)
    setp.load(1)
    setp.emit(Op.DSM_WRITECHECK, 1)
    setp._code.append(_checked(Op.PUTFIELD, JS_THREAD, "priority"))
    setp.load(0)
    setp.load(1)
    setp.invoke(Op.INVOKESTATIC, RT, "setLivePriority")
    setp.ret()
    th.finish(setp)

    getp = th.method("getPriority", ret="int")
    getp.load(0)
    getp.emit(Op.DSM_READCHECK, 0)
    getp._code.append(_checked(Op.GETFIELD, JS_THREAD, "priority"))
    getp.retval()
    th.finish(getp)

    # __runWrapper(): user run(), then synchronized { finished=1; notifyAll }
    wrap = th.method("__runWrapper")
    wrap.load(0)
    wrap.invoke(Op.INVOKEVIRTUAL, JS_THREAD, "run")
    wrap.load(0)
    wrap.emit(Op.DSM_ACQUIRE)
    wrap.load(0)
    wrap.const(1)
    wrap.emit(Op.DSM_WRITECHECK, 1)
    wrap._code.append(_checked(Op.PUTFIELD, JS_THREAD, "finished"))
    wrap.load(0)
    wrap.invoke(Op.INVOKESTATIC, RT, "rtNotifyAll")
    wrap.load(0)
    wrap.emit(Op.DSM_RELEASE)
    wrap.ret()
    th.finish(wrap)

    # javasplit.Math / Sys / String ----------------------------------------
    m = ClassBuilder("javasplit.Math", super_name=JS_OBJECT, is_bootstrap=True)
    for name in ("sqrt", "sin", "cos", "tan", "log", "exp", "floor", "ceil", "abs"):
        m.native_method(name, params=["double"], ret="double", static=True)
    m.native_method("pow", params=["double", "double"], ret="double", static=True)
    m.native_method("atan2", params=["double", "double"], ret="double", static=True)
    m.native_method("iabs", params=["int"], ret="int", static=True)
    m.native_method("imin", params=["int", "int"], ret="int", static=True)
    m.native_method("imax", params=["int", "int"], ret="int", static=True)
    m.native_method("min", params=["double", "double"], ret="double", static=True)
    m.native_method("max", params=["double", "double"], ret="double", static=True)

    s = ClassBuilder("javasplit.Sys", super_name=JS_OBJECT, is_bootstrap=True)
    s.native_method("print", params=["str"], static=True)
    s.native_method("println", params=["str"], static=True)
    s.native_method("currentTimeMillis", ret="int", static=True)
    s.native_method("nanoTime", ret="int", static=True)

    st = ClassBuilder("javasplit.String", super_name=JS_OBJECT, is_bootstrap=True)
    st.native_method("length", ret="int")
    st.native_method("charAt", params=["int"], ret="int")
    st.native_method("substring", params=["int", "int"], ret="str")
    st.native_method("equalsStr", params=["str"], ret="int")
    st.native_method("indexOf", params=["str"], ret="int")

    # javasplit.Serve: load-feed ingestion natives run master-side state
    # only (no heap access), so the twin is a plain alias.  Appended last
    # so the ids of every pre-existing runtime class are unchanged.
    sv = ClassBuilder("javasplit.Serve", super_name=JS_OBJECT,
                      is_bootstrap=True)
    sv.native_method("next", params=["int"], ret="int", static=True)
    sv.native_method("done", params=["int", "int"], static=True)

    classes = [
        obj.build(), rt.build(), th.build(),
        m.build(), s.build(), st.build(), sv.build(),
    ]
    for cf in classes:
        cf.instrumented = True  # DSM ops allowed (Thread uses them)
    return classes


# ---------------------------------------------------------------------------
# Native implementations routed through the DSM engine (jvm.hooks)
# ---------------------------------------------------------------------------

def _nat_rt_wait(jvm, thread, args):
    jvm.hooks.dsm_wait(thread, args[0])
    return BLOCK


def _nat_rt_notify(jvm, thread, args):
    jvm.hooks.dsm_notify(thread, args[0], all_=False)
    return NO_VALUE


def _nat_rt_notify_all(jvm, thread, args):
    jvm.hooks.dsm_notify(thread, args[0], all_=True)
    return NO_VALUE


def _nat_start_thread(jvm, thread, args):
    tobj = args[0]
    # Best-effort priority read: the starter is almost always the creator
    # (home), so the field is locally readable; a stale replica only
    # degrades the scheduling hint, never correctness.
    try:
        prio = tobj.fields[jvm.field_index(JS_THREAD, "priority")]
    except Exception:  # pragma: no cover - defensive
        prio = 5
    jvm.hooks.spawn(thread, tobj, prio)
    return NO_VALUE


def _nat_set_live_priority(jvm, thread, args):
    tobj, prio = args
    if not 1 <= prio <= 10:
        raise JavaRuntimeError(f"priority {prio} out of range")
    live = jvm.live_jthreads.get(id(tobj))
    if live is not None:
        live.priority = prio
    return NO_VALUE


def _nat_error(jvm, thread, args):
    raise JavaRuntimeError(args[0])


def _nat_js_print(jvm, thread, args):
    jvm.hooks.print_line(jstr(args[0]))
    return NO_VALUE


def register_rewritten_natives(jvm) -> None:
    """Install natives for the javasplit bootstrap classes on one JVM.

    Must run after the standard natives (JVM construction) — the pure
    Math/String/Sys-clock natives are aliased from their originals."""
    reg = jvm.register_native
    reg(RT, "rtWait", _nat_rt_wait)
    reg(RT, "rtNotify", _nat_rt_notify)
    reg(RT, "rtNotifyAll", _nat_rt_notify_all)
    reg(RT, "startThread", _nat_start_thread)
    reg(RT, "setLivePriority", _nat_set_live_priority)
    reg(RT, "error", _nat_error)

    for cls in ("Math", "String", "Serve"):
        for (owner, name), fn in list(jvm._natives.items()):
            if owner == cls:
                reg("javasplit." + cls, name, fn)
    reg("javasplit.Sys", "print", _nat_js_print)
    reg("javasplit.Sys", "println", _nat_js_print)
    reg("javasplit.Sys", "currentTimeMillis", jvm.native("Sys", "currentTimeMillis"))
    reg("javasplit.Sys", "nanoTime", jvm.native("Sys", "nanoTime"))
    # Defensive: direct virtual wait/notify should never survive the
    # rewrite, but route them to the DSM if they somehow do.
    reg(JS_OBJECT, "wait", _nat_rt_wait)
    reg(JS_OBJECT, "notify", _nat_rt_notify)
    reg(JS_OBJECT, "notifyAll", _nat_rt_notify_all)
