"""Redundant access-check elimination (§6.2's planned optimization).

"To reduce the overhead of the heap data accesses, we are currently
working on methods to eliminate unnecessary access checks" — citing the
runtime optimizations of Veldema et al. [19].  This pass implements the
classic fine-grain-DSM variant: within a region of straight-line code
containing no synchronization point, a second *read* check against the
same reference is redundant and the guarded access may run at original
speed.

Soundness under LRC: a thread is only obliged to observe remote writes
when *it* passes an acquire.  A read check validates the replica; until
the thread's next acquire (or a call, which may acquire internally, or a
control-flow merge, where we lose track) re-reading that replica — even
if the protocol has invalidated it asynchronously in the meantime — is
an LRC-legal stale read.  Write checks are **never** eliminated: they
create the twin that write collection depends on, and an unchecked write
to an asynchronously-flushed replica could be lost.

The analysis is deliberately conservative:

* region boundaries: branch targets (leaders), branches themselves,
  invokes, DSM acquire/release, monitor ops — all clear the known set;
* provenance is tracked for references loaded from local slots (a store
  to the slot evicts it) and for C_static holder references produced by
  DSM_STATICREF (always the same per-class singleton, so a second check
  on the same class's holder within a region is redundant).

Level 2 (``level=2``, consumed by the tiered JIT) layers two passes on
top of the straight-line analysis:

* **region-based dataflow**: validated facts (local slots and C_static
  holders) flow across basic blocks with set-intersection at merges, so
  a check dominated by equivalent checks on *every* incoming path is
  removed even across branches — the classic forward must-analysis of
  Veldema et al. instead of the per-region reset above;
* **loop hoisting**: a ``LOAD p; DSM_READCHECK; GETFIELD`` in a loop
  body whose slot ``p`` is never stored in the loop and whose body has
  no synchronization barrier is validated once in the loop preheader
  (guarded by a null test, so a zero-iteration loop stays exactly as
  null-safe as before) and the in-body check then falls to the dataflow
  pass.  Early validation of a loop that never runs is an LRC-legal
  prefetch.  Array-element checks are never hoisted: region-granular
  coherence (``DsmConfig.array_region_elems``) makes their validity
  index-dependent.

Both levels record what they did on the method (``method.elim_notes``,
final-pc → note) so the disassembler can annotate the listing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..jvm.bytecode import BRANCHES, Instr, Op
from ..jvm.classfile import ClassFile, MethodInfo
from .remap import expand_code
from .sync_rewrite import MethodResolver

# Stack effect (pops, pushes) for provenance simulation; invokes handled
# separately via the resolver.
_EFFECT: Dict[Op, Tuple[int, int]] = {
    Op.CONST: (0, 1), Op.LOAD: (0, 1), Op.STORE: (1, 0), Op.IINC: (0, 0),
    Op.ADD: (2, 1), Op.SUB: (2, 1), Op.MUL: (2, 1), Op.DIV: (2, 1),
    Op.REM: (2, 1), Op.NEG: (1, 1), Op.SHL: (2, 1), Op.SHR: (2, 1),
    Op.USHR: (2, 1), Op.AND: (2, 1), Op.OR: (2, 1), Op.XOR: (2, 1),
    Op.CMP: (2, 1), Op.I2D: (1, 1), Op.D2I: (1, 1), Op.CONCAT: (2, 1),
    Op.POP: (1, 0), Op.GOTO: (0, 0), Op.IF: (1, 0), Op.IF_CMP: (2, 0),
    Op.NEW: (0, 1), Op.GETFIELD: (1, 1), Op.PUTFIELD: (2, 0),
    Op.GETSTATIC: (0, 1), Op.PUTSTATIC: (1, 0),
    Op.INSTANCEOF: (1, 1), Op.CHECKCAST: (1, 1),
    Op.RETURN: (0, 0), Op.RETVAL: (1, 0),
    Op.NEWARRAY: (1, 1), Op.ARRLOAD: (2, 1), Op.ARRSTORE: (3, 0),
    Op.ARRAYLENGTH: (1, 1),
    Op.MONITORENTER: (1, 0), Op.MONITOREXIT: (1, 0),
    Op.DSM_READCHECK: (0, 0), Op.DSM_WRITECHECK: (0, 0),
    Op.DSM_ACQUIRE: (1, 0), Op.DSM_RELEASE: (1, 0),
    Op.DSM_STATICREF: (0, 1),
}

_INVOKES = (Op.INVOKEVIRTUAL, Op.INVOKESTATIC, Op.INVOKESPECIAL)
_BARRIERS = frozenset({
    Op.DSM_ACQUIRE, Op.DSM_RELEASE, Op.MONITORENTER, Op.MONITOREXIT,
    *_INVOKES,
})


def eliminate_redundant_read_checks(
    cf: ClassFile, resolver: MethodResolver, level: int = 1
) -> int:
    """Remove provably-redundant read checks in one class; returns count.

    ``level=1`` is the straight-line pass; ``level=2`` adds loop
    hoisting followed by the region-based dataflow pass."""
    removed = 0
    for method in cf.methods.values():
        if not method.is_native and method.code:
            # Tags: id(instr) -> note.  Instruction objects survive the
            # remapping passes, so identity recovers final positions.
            tags: Dict[int, str] = {}
            if level >= 2:
                _hoist_loop_checks(method, tags)
                removed += _process_method_regional(method, resolver, tags)
            else:
                removed += _process_method(method, resolver, tags)
            if tags:
                method.elim_notes = {
                    pc: tags[id(instr)]
                    for pc, instr in enumerate(method.code)
                    if id(instr) in tags
                }
    return removed


def _process_method(method: MethodInfo, resolver: MethodResolver,
                    tags: Dict[int, str]) -> int:
    code = method.code
    leaders: Set[int] = {0}
    for instr in code:
        if instr.op is Op.GOTO:
            leaders.add(instr.a)
        elif instr.op in (Op.IF, Op.IF_CMP):
            leaders.add(instr.b)

    to_remove: Set[int] = set()
    # Provenance stack: each cell is a local slot index (int), a
    # ("static", class) holder token, or None for unknown.
    stack: List[Optional[object]] = []
    validated: Set[object] = set()

    for pc, instr in enumerate(code):
        if pc in leaders:
            # Control-flow merge: lose everything (conservative); the
            # verifier guarantees a consistent depth, which we cannot
            # know locally, so restart provenance empty — any peek past
            # the region start simply resolves to "unknown".
            stack = []
            validated = set()
        op = instr.op

        if op is Op.DSM_READCHECK:
            prov = _peek(stack, instr.a)
            if prov is not None:
                guarded = code[pc + 1] if pc + 1 < len(code) else None
                if prov in validated and guarded is not None and (
                    guarded.checked in (True, "static")
                ) and pc + 1 not in leaders:
                    to_remove.add(pc)
                    # The access runs at (near-)original speed again — the
                    # JIT optimization the check was defeating is restored.
                    # (Holder-field reads then bill plain field cost, a
                    # close stand-in for the original static read.)
                    guarded.checked = False
                else:
                    validated.add(prov)
            continue
        if op is Op.DSM_WRITECHECK:
            # The write check fetches + twins: the object is then also
            # valid for reading within this region.
            prov = _peek(stack, instr.a)
            if prov is not None:
                validated.add(prov)
            continue

        if op in _BARRIERS:
            validated = set()

        if op is Op.STORE or op is Op.IINC:
            validated.discard(instr.a)

        # --- provenance stack update -------------------------------
        if op is Op.LOAD:
            stack.append(instr.a)
        elif op is Op.DSM_STATICREF:
            stack.append(("static", instr.a))
        elif op is Op.DUP:
            stack.append(_peek(stack, 0))
        elif op is Op.DUP_X1:
            b = _pop(stack); a = _pop(stack)
            stack.extend((b, a, b))
        elif op is Op.SWAP:
            if len(stack) >= 2:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            else:
                stack = []
        elif op in _INVOKES:
            target = resolver.resolve(instr.a, instr.b)
            pops = target.nargs if target is not None else len(stack)
            pushes = 0 if target is None or target.ret == "void" else 1
            _apply(stack, pops, pushes)
        else:
            pops, pushes = _EFFECT[op]
            _apply(stack, pops, pushes)

    if not to_remove:
        return 0
    _remove_checks(method, to_remove, tags)
    return len(to_remove)


def _remove_checks(method: MethodInfo, to_remove: Set[int],
                   tags: Dict[int, str]) -> None:
    """Delete the checks; tag each now-unguarded access for disasm."""
    for pc in to_remove:
        tags[id(method.code[pc + 1])] = "check eliminated"

    def expand(instr: Instr, pc: int):
        return [] if pc in to_remove else [instr]

    expand_code(method, expand)


# ---------------------------------------------------------------------------
# Level 2: region-based dataflow over basic blocks
# ---------------------------------------------------------------------------

def _block_starts(code: List[Instr]) -> List[int]:
    """Basic-block leaders: entry, branch targets, post-branch pcs."""
    n = len(code)
    leaders = {0}
    for pc, instr in enumerate(code):
        op = instr.op
        if op is Op.GOTO:
            leaders.add(instr.a)
        elif op in (Op.IF, Op.IF_CMP):
            leaders.add(instr.b)
        if op in BRANCHES or op in (Op.RETURN, Op.RETVAL):
            if pc + 1 < n:
                leaders.add(pc + 1)
    return sorted(leaders)


def _transfer(
    code: List[Instr],
    start: int,
    end: int,
    facts: Set[object],
    resolver: MethodResolver,
    collect: Optional[Set[int]] = None,
) -> Set[object]:
    """Straight-line analysis of ``code[start:end)`` with incoming
    validated ``facts``; returns the outgoing fact set.  With
    ``collect`` (the final walk), removable check pcs are recorded."""
    stack: List[Optional[object]] = []
    validated = set(facts)
    for pc in range(start, end):
        instr = code[pc]
        op = instr.op
        if op is Op.DSM_READCHECK:
            prov = _peek(stack, instr.a)
            if prov is not None:
                if collect is not None and prov in validated:
                    guarded = code[pc + 1] if pc + 1 < end else None
                    if guarded is not None and guarded.checked in (
                        True, "static"
                    ):
                        collect.add(pc)
                validated.add(prov)
            continue
        if op is Op.DSM_WRITECHECK:
            prov = _peek(stack, instr.a)
            if prov is not None:
                validated.add(prov)
            continue

        if op in _BARRIERS:
            validated = set()
        if op is Op.STORE or op is Op.IINC:
            validated.discard(instr.a)

        if op is Op.LOAD:
            stack.append(instr.a)
        elif op is Op.DSM_STATICREF:
            stack.append(("static", instr.a))
        elif op is Op.DUP:
            stack.append(_peek(stack, 0))
        elif op is Op.DUP_X1:
            b = _pop(stack); a = _pop(stack)
            stack.extend((b, a, b))
        elif op is Op.SWAP:
            if len(stack) >= 2:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            else:
                stack = []
        elif op in _INVOKES:
            target = resolver.resolve(instr.a, instr.b)
            pops = target.nargs if target is not None else len(stack)
            pushes = 0 if target is None or target.ret == "void" else 1
            _apply(stack, pops, pushes)
        else:
            pops, pushes = _EFFECT[op]
            _apply(stack, pops, pushes)
    return validated


def _process_method_regional(
    method: MethodInfo, resolver: MethodResolver, tags: Dict[int, str]
) -> int:
    """Forward must-analysis of validated facts with ∩ at merges."""
    code = method.code
    starts = _block_starts(code)
    n = len(code)
    bounds = {s: (starts[i + 1] if i + 1 < len(starts) else n)
              for i, s in enumerate(starts)}
    succ: Dict[int, List[int]] = {}
    preds: Dict[int, List[int]] = {s: [] for s in starts}
    for s in starts:
        e = bounds[s]
        last = code[e - 1]
        targets: List[int] = []
        if last.op is Op.GOTO:
            targets = [last.a]
        elif last.op in (Op.IF, Op.IF_CMP):
            targets = [last.b] + ([e] if e < n else [])
        elif last.op not in (Op.RETURN, Op.RETVAL) and e < n:
            targets = [e]
        succ[s] = targets
        for t in targets:
            preds[t].append(s)

    # Optimistic iteration: OUT starts at TOP (None = "all facts"), so
    # loop-carried facts survive the ∩ until proven otherwise.
    out: Dict[int, Optional[Set[object]]] = {s: None for s in starts}
    in_: Dict[int, Set[object]] = {}
    seen: Set[int] = set()
    worklist = [0]
    while worklist:
        s = worklist.pop()
        seen.add(s)
        facts: Optional[Set[object]] = set() if s == 0 else None
        for p in preds[s]:
            po = out[p]
            if po is None:
                continue
            facts = set(po) if facts is None else (facts & po)
        if facts is None:
            facts = set()
        in_[s] = facts
        new_out = _transfer(code, s, bounds[s], facts, resolver)
        if out[s] is None or new_out != out[s]:
            out[s] = new_out
            worklist.extend(succ[s])
        else:
            worklist.extend(t for t in succ[s] if t not in seen)

    to_remove: Set[int] = set()
    for s in sorted(in_):
        _transfer(code, s, bounds[s], in_[s], resolver,
                  collect=to_remove)
    if not to_remove:
        return 0
    for pc in to_remove:
        # The access runs at (near-)original speed again (see the
        # straight-line pass above for the cost rationale).
        code[pc + 1].checked = False
    _remove_checks(method, to_remove, tags)
    return len(to_remove)


# ---------------------------------------------------------------------------
# Level 2: loop hoisting
# ---------------------------------------------------------------------------

# Placeholder branch target for inserted null-test skips; expand_code
# only remaps int targets, so the sentinel rides through the remapping
# and is resolved to a real pc afterwards.
_HOIST_SKIP = object()

# Validators inserted per method (each is 5 instructions); bounds code
# growth on pathological loop nests.
_MAX_HOISTS = 8


def _hoist_loop_checks(method: MethodInfo, tags: Dict[int, str]) -> int:
    """Insert null-safe loop-preheader validators for hot read checks.

    Inserting a validator is always *sound* — it is a real DSM_READCHECK
    executed a little early (an LRC-legal prefetch), guarded by a null
    test so a zero-iteration loop cannot fault where the original code
    would not.  The conditions below are profitability filters: they
    accept exactly the checks the regional dataflow pass will then
    delete from the loop body.
    """
    code = method.code
    n = len(code)
    branches = [
        (pc, instr.a if instr.op is Op.GOTO else instr.b)
        for pc, instr in enumerate(code)
        if instr.op in BRANCHES and isinstance(
            instr.a if instr.op is Op.GOTO else instr.b, int)
    ]
    hoists: Dict[int, List[int]] = {}
    total = 0
    for src, h in branches:
        if not (1 <= h <= src):
            continue  # not a back edge (or no preheader instruction)
        if code[h - 1].op in (Op.GOTO, Op.RETURN, Op.RETVAL):
            continue  # loop not entered by fallthrough: validator dead
        # The loop must only be enterable through the preheader —
        # branches from outside [h, src] into it would bypass the
        # validator (they land *after* the suffix the remapping puts at
        # the end of the preheader instruction).
        if any(h <= t <= src and not h <= pc <= src
               for pc, t in branches):
            continue
        body = code[h:src + 1]
        if any(i.op in _BARRIERS for i in body):
            continue  # a barrier would clear the hoisted fact anyway
        killed = {i.a for i in body if i.op in (Op.STORE, Op.IINC)}
        slots = hoists.setdefault(h, [])
        for pc in range(h, src - 1):
            if (code[pc].op is Op.LOAD
                    and code[pc + 1].op is Op.DSM_READCHECK
                    and code[pc + 1].a == 0
                    and code[pc + 2].op is Op.GETFIELD
                    and code[pc + 2].checked in (True, "static")
                    and code[pc].a not in killed
                    and code[pc].a not in slots
                    and total < _MAX_HOISTS):
                slots.append(code[pc].a)
                total += 1
    hoists = {h: slots for h, slots in hoists.items() if slots}
    if not hoists:
        return 0

    def expand(instr: Instr, pc: int):
        slots = hoists.get(pc + 1)
        if not slots:
            return [instr]
        seq = [instr]
        for p in slots:
            validator = (
                Instr(Op.LOAD, p, line=instr.line),
                Instr(Op.IF, "eq", _HOIST_SKIP, line=instr.line),
                Instr(Op.LOAD, p, line=instr.line),
                Instr(Op.DSM_READCHECK, 0, line=instr.line),
                Instr(Op.POP, line=instr.line),
            )
            for i in validator:
                tags[id(i)] = f"hoisted loop check (slot {p})"
            seq.extend(validator)
        return seq

    expand_code(method, expand)
    for pc, instr in enumerate(method.code):
        if instr.op is Op.IF and instr.b is _HOIST_SKIP:
            instr.b = pc + 4  # past LOAD; DSM_READCHECK; POP
    return total


def _peek(stack: List[Optional[int]], depth: int) -> Optional[int]:
    if depth < len(stack):
        return stack[-1 - depth]
    return None


def _pop(stack: List[Optional[int]]) -> Optional[int]:
    return stack.pop() if stack else None


def _apply(stack: List[Optional[int]], pops: int, pushes: int) -> None:
    for _ in range(pops):
        _pop(stack)
    stack.extend([None] * pushes)
