"""Redundant access-check elimination (§6.2's planned optimization).

"To reduce the overhead of the heap data accesses, we are currently
working on methods to eliminate unnecessary access checks" — citing the
runtime optimizations of Veldema et al. [19].  This pass implements the
classic fine-grain-DSM variant: within a region of straight-line code
containing no synchronization point, a second *read* check against the
same reference is redundant and the guarded access may run at original
speed.

Soundness under LRC: a thread is only obliged to observe remote writes
when *it* passes an acquire.  A read check validates the replica; until
the thread's next acquire (or a call, which may acquire internally, or a
control-flow merge, where we lose track) re-reading that replica — even
if the protocol has invalidated it asynchronously in the meantime — is
an LRC-legal stale read.  Write checks are **never** eliminated: they
create the twin that write collection depends on, and an unchecked write
to an asynchronously-flushed replica could be lost.

The analysis is deliberately conservative:

* region boundaries: branch targets (leaders), branches themselves,
  invokes, DSM acquire/release, monitor ops — all clear the known set;
* provenance is tracked for references loaded from local slots (a store
  to the slot evicts it) and for C_static holder references produced by
  DSM_STATICREF (always the same per-class singleton, so a second check
  on the same class's holder within a region is redundant).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..jvm.bytecode import BRANCHES, Instr, Op
from ..jvm.classfile import ClassFile, MethodInfo
from .remap import expand_code
from .sync_rewrite import MethodResolver

# Stack effect (pops, pushes) for provenance simulation; invokes handled
# separately via the resolver.
_EFFECT: Dict[Op, Tuple[int, int]] = {
    Op.CONST: (0, 1), Op.LOAD: (0, 1), Op.STORE: (1, 0), Op.IINC: (0, 0),
    Op.ADD: (2, 1), Op.SUB: (2, 1), Op.MUL: (2, 1), Op.DIV: (2, 1),
    Op.REM: (2, 1), Op.NEG: (1, 1), Op.SHL: (2, 1), Op.SHR: (2, 1),
    Op.USHR: (2, 1), Op.AND: (2, 1), Op.OR: (2, 1), Op.XOR: (2, 1),
    Op.CMP: (2, 1), Op.I2D: (1, 1), Op.D2I: (1, 1), Op.CONCAT: (2, 1),
    Op.POP: (1, 0), Op.GOTO: (0, 0), Op.IF: (1, 0), Op.IF_CMP: (2, 0),
    Op.NEW: (0, 1), Op.GETFIELD: (1, 1), Op.PUTFIELD: (2, 0),
    Op.GETSTATIC: (0, 1), Op.PUTSTATIC: (1, 0),
    Op.INSTANCEOF: (1, 1), Op.CHECKCAST: (1, 1),
    Op.RETURN: (0, 0), Op.RETVAL: (1, 0),
    Op.NEWARRAY: (1, 1), Op.ARRLOAD: (2, 1), Op.ARRSTORE: (3, 0),
    Op.ARRAYLENGTH: (1, 1),
    Op.MONITORENTER: (1, 0), Op.MONITOREXIT: (1, 0),
    Op.DSM_READCHECK: (0, 0), Op.DSM_WRITECHECK: (0, 0),
    Op.DSM_ACQUIRE: (1, 0), Op.DSM_RELEASE: (1, 0),
    Op.DSM_STATICREF: (0, 1),
}

_INVOKES = (Op.INVOKEVIRTUAL, Op.INVOKESTATIC, Op.INVOKESPECIAL)
_BARRIERS = frozenset({
    Op.DSM_ACQUIRE, Op.DSM_RELEASE, Op.MONITORENTER, Op.MONITOREXIT,
    *_INVOKES,
})


def eliminate_redundant_read_checks(
    cf: ClassFile, resolver: MethodResolver
) -> int:
    """Remove provably-redundant read checks in one class; returns count."""
    removed = 0
    for method in cf.methods.values():
        if not method.is_native and method.code:
            removed += _process_method(method, resolver)
    return removed


def _process_method(method: MethodInfo, resolver: MethodResolver) -> int:
    code = method.code
    leaders: Set[int] = {0}
    for instr in code:
        if instr.op is Op.GOTO:
            leaders.add(instr.a)
        elif instr.op in (Op.IF, Op.IF_CMP):
            leaders.add(instr.b)

    to_remove: Set[int] = set()
    # Provenance stack: each cell is a local slot index (int), a
    # ("static", class) holder token, or None for unknown.
    stack: List[Optional[object]] = []
    validated: Set[object] = set()

    for pc, instr in enumerate(code):
        if pc in leaders:
            # Control-flow merge: lose everything (conservative); the
            # verifier guarantees a consistent depth, which we cannot
            # know locally, so restart provenance empty — any peek past
            # the region start simply resolves to "unknown".
            stack = []
            validated = set()
        op = instr.op

        if op is Op.DSM_READCHECK:
            prov = _peek(stack, instr.a)
            if prov is not None:
                guarded = code[pc + 1] if pc + 1 < len(code) else None
                if prov in validated and guarded is not None and (
                    guarded.checked in (True, "static")
                ) and pc + 1 not in leaders:
                    to_remove.add(pc)
                    # The access runs at (near-)original speed again — the
                    # JIT optimization the check was defeating is restored.
                    # (Holder-field reads then bill plain field cost, a
                    # close stand-in for the original static read.)
                    guarded.checked = False
                else:
                    validated.add(prov)
            continue
        if op is Op.DSM_WRITECHECK:
            # The write check fetches + twins: the object is then also
            # valid for reading within this region.
            prov = _peek(stack, instr.a)
            if prov is not None:
                validated.add(prov)
            continue

        if op in _BARRIERS:
            validated = set()

        if op is Op.STORE or op is Op.IINC:
            validated.discard(instr.a)

        # --- provenance stack update -------------------------------
        if op is Op.LOAD:
            stack.append(instr.a)
        elif op is Op.DSM_STATICREF:
            stack.append(("static", instr.a))
        elif op is Op.DUP:
            stack.append(_peek(stack, 0))
        elif op is Op.DUP_X1:
            b = _pop(stack); a = _pop(stack)
            stack.extend((b, a, b))
        elif op is Op.SWAP:
            if len(stack) >= 2:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            else:
                stack = []
        elif op in _INVOKES:
            target = resolver.resolve(instr.a, instr.b)
            pops = target.nargs if target is not None else len(stack)
            pushes = 0 if target is None or target.ret == "void" else 1
            _apply(stack, pops, pushes)
        else:
            pops, pushes = _EFFECT[op]
            _apply(stack, pops, pushes)

    if not to_remove:
        return 0

    def expand(instr: Instr, pc: int):
        return [] if pc in to_remove else [instr]

    expand_code(method, expand)
    return len(to_remove)


def _peek(stack: List[Optional[int]], depth: int) -> Optional[int]:
    if depth < len(stack):
        return stack[-1 - depth]
    return None


def _pop(stack: List[Optional[int]]) -> Optional[int]:
    return stack.pop() if stack else None


def _apply(stack: List[Optional[int]], pops: int, pushes: int) -> None:
    for _ in range(pops):
        _pop(stack)
    stack.extend([None] * pushes)
