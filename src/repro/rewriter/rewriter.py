"""The rewriter driver: original class files → distributed application.

Mirrors Figure 1 of the paper: the input is the compiled (possibly
pre-existing) application bytecode; the output is the ``javasplit.*``
class hierarchy with all seven transformations applied, plus the
metadata the runtime needs (serializer specs, class-id registry, static
holder gids).  Source code never enters this pipeline.

Pass order matters and is fixed here:

1. rename classes into the parallel ``javasplit`` hierarchy;
2. substitute thread-start call sites with the spawn handler;
3. substitute monitor instructions and wait/notify call sites;
4. generate ``C_static`` holders, strip statics, rewrite accesses;
5. insert access checks before every remaining heap access;
6. generate serializer specs and the array-type descriptors;
7. verify everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dsm.directory import ClassIdRegistry
from ..dsm.serialization import ClassSpec
from ..jvm.classfile import ClassFile
from ..jvm.errors import ClassFormatError
from ..jvm.verifier import verify_classfiles
from .access_checks import FieldTable, insert_access_checks
from .check_elim import eliminate_redundant_read_checks
from .array_wrapper import collect_array_types
from .bootstrap import build_runtime_classes
from .naming import PREFIX, rename_class, rename_type
from .serial_gen import build_specs
from .static_transform import (
    generate_holders,
    rewrite_static_accesses,
    strip_statics,
)
from .sync_rewrite import MethodResolver, rewrite_synchronization
from .thread_rewrite import rewrite_thread_starts


@dataclass
class RewriteResult:
    """Everything the distributed runtime needs to run the application."""

    classfiles: Dict[str, ClassFile]
    specs: Dict[str, ClassSpec]
    registry: ClassIdRegistry
    static_gids: Dict[str, Tuple[int, str]]
    static_holder_count: int
    main_class: Optional[str]
    stats: Dict[str, int] = field(default_factory=dict)

    def all_classfiles(self) -> List[ClassFile]:
        return list(self.classfiles.values())


def rewrite_application(
    app_classfiles: List[ClassFile],
    master_node: int = 0,
    optimize_checks: bool = False,
    check_elim: Optional[int] = None,
) -> RewriteResult:
    """Rewrite a compiled application for distributed execution.

    ``optimize_checks`` enables the §6.2 redundant-read-check
    elimination pass (off by default, like the paper's prototype).
    ``check_elim`` selects the elimination level explicitly: 0 = none,
    1 = the straight-line pass (same as ``optimize_checks=True``),
    2 = region-based dataflow + loop hoisting (what the tiered JIT
    consumes; see :mod:`repro.rewriter.check_elim`)."""
    for cf in app_classfiles:
        if cf.name.startswith(PREFIX):
            raise ClassFormatError(
                f"class {cf.name} is already rewritten"
            )
    renamed = [rename_class(cf) for cf in app_classfiles]
    runtime_classes = build_runtime_classes()
    table: Dict[str, ClassFile] = {}
    for cf in renamed + runtime_classes:
        if cf.name in table:
            raise ClassFormatError(f"duplicate class {cf.name}")
        table[cf.name] = cf

    stats = {
        "classes": len(renamed),
        "thread_starts": 0,
        "monitors": 0,
        "wait_notify": 0,
        "static_accesses": 0,
        "statics_moved": 0,
        "read_checks": 0,
        "write_checks": 0,
        "volatile_accesses": 0,
    }

    resolver = MethodResolver(table)
    for cf in renamed:
        stats["thread_starts"] += rewrite_thread_starts(cf, resolver)
        sync_counts = rewrite_synchronization(cf, resolver)
        stats["monitors"] += sync_counts["monitors"]
        stats["wait_notify"] += sync_counts["wait_notify"]

    holders, static_gids = generate_holders(
        {cf.name: cf for cf in renamed}, master_node
    )
    for holder in holders:
        table[holder.name] = holder
    for cf in renamed:
        stats["statics_moved"] += strip_statics(cf)
        stats["static_accesses"] += rewrite_static_accesses(cf, static_gids)

    field_table = FieldTable(table)
    for cf in renamed + holders:
        counts = insert_access_checks(cf, field_table)
        stats["read_checks"] += counts["read"]
        stats["write_checks"] += counts["write"]
        stats["volatile_accesses"] += counts["volatile"]

    level = check_elim if check_elim is not None else (
        1 if optimize_checks else 0)
    if level not in (0, 1, 2):
        raise ValueError(f"check_elim must be 0, 1 or 2, got {level!r}")
    stats["checks_eliminated"] = 0
    if level:
        for cf in renamed:
            stats["checks_eliminated"] += eliminate_redundant_read_checks(
                cf, resolver, level=level
            )

    specs = build_specs(table)
    array_types = collect_array_types(table)
    registry = ClassIdRegistry(list(table) + sorted(array_types))

    verify_classfiles(table.values())

    main_class = None
    for cf in renamed:
        m = cf.methods.get("main")
        if m is not None and m.is_static:
            main_class = cf.name
            break

    return RewriteResult(
        classfiles=table,
        specs=specs,
        registry=registry,
        static_gids=static_gids,
        static_holder_count=len(static_gids),
        main_class=main_class,
        stats=stats,
    )
