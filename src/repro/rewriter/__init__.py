"""Bytecode instrumentation (the paper's §4).

Transforms compiled application class files into the distributed
``javasplit.*`` application: access checks before every heap access,
DSM synchronization handlers, distributed thread creation, static-field
holders, per-class serializers, and the hand-written rewritten bootstrap
classes.
"""

from .access_checks import FieldTable, insert_access_checks
from .array_wrapper import collect_array_types
from .check_elim import eliminate_redundant_read_checks
from .bootstrap import (
    JS_OBJECT,
    JS_THREAD,
    RT,
    build_runtime_classes,
    register_rewritten_natives,
)
from .naming import PREFIX, original_name, rename_class, rename_type
from .remap import expand_code
from .rewriter import RewriteResult, rewrite_application
from .serial_gen import build_specs
from .static_transform import (
    StaticHolderInfo,
    generate_holders,
    holder_class_name,
    rewrite_static_accesses,
    strip_statics,
)
from .sync_rewrite import MethodResolver, rewrite_synchronization
from .thread_rewrite import rewrite_thread_starts

__all__ = [
    "FieldTable", "insert_access_checks",
    "collect_array_types",
    "JS_OBJECT", "JS_THREAD", "RT",
    "build_runtime_classes", "register_rewritten_natives",
    "PREFIX", "original_name", "rename_class", "rename_type",
    "expand_code",
    "RewriteResult", "rewrite_application",
    "eliminate_redundant_read_checks",
    "build_specs",
    "StaticHolderInfo", "generate_holders", "holder_class_name",
    "rewrite_static_accesses", "strip_statics",
    "MethodResolver", "rewrite_synchronization",
    "rewrite_thread_starts",
]
