"""Synchronization rewriting (§4.4).

``monitorenter``/``monitorexit`` become the DSM acquire/release handlers
(which internally take the §4.4 lock-counter fast path for local
objects), and calls that resolve to ``Object.wait`` / ``notify`` /
``notifyAll`` become static calls into the runtime handler class, whose
natives drive the owner-local wait queues of §3.2.

The compiler has already desugared ``synchronized`` methods into
explicit monitor instructions, so this pass covers both forms uniformly.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..jvm.bytecode import Instr, Op
from ..jvm.classfile import ClassFile

RT_CLASS = "javasplit.JavaSplitRT"
OBJECT_CLASS = "javasplit.Object"

_WAIT_NOTIFY = {"wait": "rtWait", "notify": "rtNotify", "notifyAll": "rtNotifyAll"}


class MethodResolver:
    """Find the declaring class of a method along the superclass chain."""

    def __init__(self, classfiles: Dict[str, ClassFile]) -> None:
        self._classfiles = classfiles

    def declaring_class(self, class_name: str, method: str) -> Optional[str]:
        current: Optional[str] = class_name
        while current is not None:
            cf = self._classfiles.get(current)
            if cf is None:
                return None
            if method in cf.methods:
                return current
            current = cf.super_name
        return None

    def resolve(self, class_name: str, method: str):
        """The resolved MethodInfo, or None."""
        declaring = self.declaring_class(class_name, method)
        if declaring is None:
            return None
        return self._classfiles[declaring].methods[method]


def rewrite_synchronization(cf: ClassFile, resolver: MethodResolver) -> Dict[str, int]:
    """In-place rewrite of one class; returns transformation counts."""
    counts = {"monitors": 0, "wait_notify": 0}
    for method in cf.methods.values():
        for instr in method.code:
            if instr.op is Op.MONITORENTER:
                instr.op = Op.DSM_ACQUIRE
                counts["monitors"] += 1
            elif instr.op is Op.MONITOREXIT:
                instr.op = Op.DSM_RELEASE
                counts["monitors"] += 1
            elif instr.op is Op.INVOKEVIRTUAL and instr.b in _WAIT_NOTIFY:
                declaring = resolver.declaring_class(instr.a, instr.b)
                if declaring == OBJECT_CLASS:
                    # The receiver on the stack becomes the handler's arg.
                    instr.op = Op.INVOKESTATIC
                    instr.a = RT_CLASS
                    instr.b = _WAIT_NOTIFY[instr.b]
                    counts["wait_notify"] += 1
    return counts
