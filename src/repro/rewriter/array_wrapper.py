"""Array handling (§4.3).

Java arrays cannot be subclassed, so the paper wraps each utilized array
type in a generated ``javasplit.array.T`` class that carries the DSM
header fields plus a reference to the underlying array.  In this VM,
array objects can carry DSM headers directly (see
:mod:`repro.jvm.heap`), so the wrapper's *data* role disappears — but
its *type* role remains: the DSM needs a per-element-type descriptor to
serialize, diff and identify array coherency units on the wire.

This pass therefore performs the §4.3 discovery step — enumerate every
array type the application can utilize — and registers one descriptor
(the class-id registry entry and the element-kind used by the
serializer) per type, which is exactly the per-type artefact the paper's
wrapper generation produces.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from ..jvm.bytecode import Op
from ..jvm.classfile import ClassFile, is_array_type


def collect_array_types(classfiles: Dict[str, ClassFile]) -> Set[str]:
    """Every array type name (``T[]``) the rewritten application can
    create or hold, including nested element levels."""
    found: Set[str] = set()

    def add(t: str) -> None:
        while is_array_type(t):
            found.add(t)
            t = t[:-2]

    for cf in classfiles.values():
        for f in cf.fields:
            add(f.type)
        for m in cf.methods.values():
            for p in m.params:
                add(p)
            add(m.ret)
            for instr in m.code:
                if instr.op is Op.NEWARRAY:
                    add(instr.a + "[]")
                elif instr.op is Op.CHECKCAST or instr.op is Op.INSTANCEOF:
                    add(instr.a)
    return found
