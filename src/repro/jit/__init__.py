"""Tiered JIT: compile hot rewritten-bytecode methods to Python.

Tier 0 is the stock interpreter; tier 1 translates a method's bytecode
into one specialized Python function (codegen + ``exec``) with the
operand stack in locals, constants folded, per-run costs pre-summed,
the §4.4 local-lock fast path inlined, and deoptimization back to the
interpreter at every blocking point.  Observable behavior (results,
protocol traffic, simulated time, exceptions) is bit-identical to
tier 0 — see ``tests/test_jit.py`` for the differential proof.
"""

from .analysis import CompileError, analyze, build_cost_tables, pre_summed_runs
from .codegen import (
    N_REASONS,
    R_BLOCK_ACQUIRE,
    R_BLOCK_MONITOR,
    R_BLOCK_NATIVE,
    R_BLOCK_READ,
    R_BLOCK_STATIC,
    R_BLOCK_WRITE,
    R_BUDGET,
    R_CALL,
    R_DEOPT,
    R_RETURN,
    REASON_NAMES,
    compile_method,
)
from .manager import JitAgent, JitManager

__all__ = [
    "CompileError",
    "JitAgent",
    "JitManager",
    "N_REASONS",
    "REASON_NAMES",
    "R_BLOCK_ACQUIRE",
    "R_BLOCK_MONITOR",
    "R_BLOCK_NATIVE",
    "R_BLOCK_READ",
    "R_BLOCK_STATIC",
    "R_BLOCK_WRITE",
    "R_BUDGET",
    "R_CALL",
    "R_DEOPT",
    "R_RETURN",
    "analyze",
    "build_cost_tables",
    "compile_method",
    "pre_summed_runs",
]
