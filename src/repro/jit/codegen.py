"""Tier-1 compiler: one rewritten bytecode method → one Python function.

The generated function executes the method's bytecode as *threaded
code*: the operand stack is mapped onto Python locals (``s0..sK``, one
per verified stack depth — the verifier's single-depth-per-pc invariant
makes this possible), constants are folded into literals, and the
simulated per-instruction cost is pre-summed per straight-line run and
charged with one addition at run entry.

The contract is **bit-identical observable behavior** versus the
interpreter: same results, same protocol traffic, same simulated time,
same exceptions.  That falls out of three rules:

* every op that can block or leave the frame (DSM checks, acquire/
  release, monitors, invokes) is a *special*: it gets the interpreter's
  exact budget test (``used >= budget``), calls the very same bound
  hook methods, and charges base + hook cost per instruction;
* a pre-summed run executes only when its whole cost fits the
  remaining budget — otherwise the function materializes the
  interpreter state (pc, operand stack, mutated locals) and returns
  ``R_BUDGET``, and the manager finishes the quantum with the plain
  interpreter, reproducing the interpreter's exact overshoot boundary;
* anything unresolvable at compile time becomes a deopt stub that
  materializes state and lets the interpreter execute that pc.

Compiled code inlines the §4.4 local-lock fast path (the uncontended
``DSM_ACQUIRE``/``DSM_RELEASE`` case) and calls whitelisted pure
natives (``Math.*`` etc.) without materializing the frame.

Exit reasons (second element of the ``(used_ns, reason)`` return):
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Set

from ..sim import cost_model as cm
from ..sim.node import StreamState
from ..jvm.bytecode import BRANCHES, TERMINATORS, Instr, Op
from ..jvm.classfile import MethodInfo
from ..jvm.errors import ClassCastError, JVMError, NullPointerError
from ..jvm.frame import Frame
from ..jvm.heap import ArrayObj, Obj
from ..jvm.interpreter import (
    BLOCK,
    NO_VALUE,
    Interpreter,
    java_ddiv,
    java_idiv,
    java_irem,
    jstr,
)
from .analysis import (
    SPECIAL_OPS,
    CompileError,
    MethodAnalysis,
    analyze,
    instr_cost,
)

# Exit reason codes returned by compiled functions.
R_BUDGET = 0          # quantum budget exhausted (interpreter tail runs)
R_BLOCK_READ = 1      # DSM read-check miss (re-exec style block)
R_BLOCK_WRITE = 2     # DSM write-check miss
R_BLOCK_STATIC = 3    # DSM static-holder miss
R_BLOCK_ACQUIRE = 4   # contended distributed lock
R_BLOCK_MONITOR = 5   # contended local monitor
R_BLOCK_NATIVE = 6    # native blocked the thread (e.g. wait, Serve.next)
R_CALL = 7            # callee not compiled — interpreter executes the invoke
R_RETURN = 8          # method returned (frame popped)
R_DEOPT = 9           # compile-time-unresolvable site — interpreter takes over

REASON_NAMES = (
    "budget", "block_read", "block_write", "block_static", "block_acquire",
    "block_monitor", "block_native", "call_exit", "return", "deopt",
)
N_REASONS = len(REASON_NAMES)

# Hard cap on generated statements; methods beyond it stay interpreted.
_MAX_STATEMENTS = 20000

# Nested compiled-to-compiled call depth cap (Python stack headroom);
# deeper recursion falls back to one interpreter step per call.
_MAX_CALL_DEPTH = 30

_ARITH_OPS = {
    Op.ADD: "+", Op.SUB: "-", Op.MUL: "*",
    Op.AND: "&", Op.OR: "|", Op.XOR: "^",
    Op.SHL: "<<", Op.SHR: ">>",
}


def _is_pure_native(m: MethodInfo) -> bool:
    """Natives that are pure functions of (jvm, thread, args): never
    block, never return NO_VALUE, touch no frame — safe to call from
    compiled code without materializing the interpreter frame."""
    if m.ret == "void":
        return False
    if m.klass in ("Math", "javasplit.Math", "String", "javasplit.String"):
        return True
    return m.klass in ("Sys", "javasplit.Sys") and m.name in (
        "currentTimeMillis", "nanoTime")


class _Emitter:
    """Builds the source + globals of one compiled method."""

    def __init__(self, method: MethodInfo, agent) -> None:
        self.method = method
        self.agent = agent
        self.jvm = agent.jvm
        self.interp: Interpreter = self.jvm.interpreter
        self.ana: MethodAnalysis = analyze(method, self.jvm)
        self.code = method.code
        self.lines: List[str] = []
        self.env: Dict[str, Any] = {}
        self._const_names: Dict[int, str] = {}
        self._const_objs: List[Any] = []   # keep consts alive (id-keyed)
        self._const_seq = 0
        self._race = self.interp.race_hook
        self._deopt_pcs: Set[int] = set()
        self._field_idx: Dict[int, int] = {}
        self._bind_fixed()
        self._resolve_sites()
        self.entry_set = self._entries()

    # -- environment ---------------------------------------------------
    def _bind_fixed(self) -> None:
        ip = self.interp
        self.env.update(
            _JVME=JVMError, _NPE=NullPointerError, _CCE=ClassCastError,
            _idiv=java_idiv, _irem=java_irem, _ddiv=java_ddiv,
            _jstr=jstr, _fmod=math.fmod, _nan=math.nan, _isnan=math.isnan,
            _Frame=Frame, _Arr=ArrayObj,
            _RUN=StreamState.RUNNABLE, _NOV=NO_VALUE, _BLK=BLOCK,
            _jvm=self.jvm, _classes=self.jvm.classes,
            _isinst=ip._is_instance, _tcmp=Interpreter._test_cmp,
            _menter=ip._monitor_enter, _mexit=ip._monitor_exit,
            _new=self.jvm.new_instance, _newarr=self.jvm.new_array,
            _resolve=self.jvm.resolve_method, _native=self.jvm.native,
            _CACHE=self.agent.cache,
        )
        if self._race is not None:
            self.env["_race"] = self._race
        dsm = self.jvm.hooks
        ops = {i.op for i in self.code}
        if ops & {Op.DSM_READCHECK, Op.DSM_WRITECHECK, Op.DSM_STATICREF,
                  Op.DSM_ACQUIRE, Op.DSM_RELEASE}:
            if dsm is None:
                raise CompileError("DSM op without hooks installed")
            self.env.update(
                _readcheck=dsm.read_check, _writecheck=dsm.write_check,
                _staticref=dsm.static_ref, _acquire=dsm.acquire,
                _release=dsm.release, _stats=dsm.stats,
            )
            from ..dsm.objectstate import ObjState
            self.env["_LOCAL"] = ObjState.LOCAL
            self._lock_opt = bool(dsm.config.local_lock_opt)
            race_eng = getattr(dsm, "race", None)
            if race_eng is not None:
                self.env["_race_la"] = race_eng.on_local_acquired
                self.env["_race_lr"] = race_eng.on_local_released
            self._dsm_race = race_eng is not None
        else:
            self._lock_opt = False
            self._dsm_race = False

    def const(self, obj: Any, prefix: str = "K") -> str:
        name = self._const_names.get(id(obj))
        if name is None:
            name = f"_{prefix}{self._const_seq}"
            self._const_seq += 1
            self._const_names[id(obj)] = name
            self._const_objs.append(obj)
            self.env[name] = obj
        return name

    def lit(self, v: Any) -> str:
        if v is None or isinstance(v, (int, str)):
            return repr(v)
        if isinstance(v, float) and math.isfinite(v):
            return repr(v)
        return self.const(v)

    # -- compile-time resolution --------------------------------------
    def _resolve_sites(self) -> None:
        """Bind field indices and invoke targets; failures deopt."""
        for pc, instr in enumerate(self.code):
            if self.ana.depth_at[pc] is None:
                continue
            op = instr.op
            if op in (Op.GETFIELD, Op.PUTFIELD):
                idx = instr.cache
                if idx is None:
                    try:
                        idx = self.jvm.field_index(instr.a, instr.b)
                        instr.cache = idx
                    except Exception:
                        self._deopt_pcs.add(pc)
                        continue
                self._field_idx[pc] = idx
            elif op in (Op.INVOKEVIRTUAL, Op.INVOKESTATIC,
                        Op.INVOKESPECIAL):
                if self.ana.invoke_targets.get(pc) is None:
                    self._deopt_pcs.add(pc)

    def _entries(self) -> Set[int]:
        n = len(self.code)
        pcs = {0} | set(self.ana.branch_targets)
        for pc, instr in enumerate(self.code):
            if self.ana.depth_at[pc] is None:
                continue
            if instr.op in SPECIAL_OPS or pc in self._deopt_pcs:
                pcs.add(pc)
                if pc + 1 < n:
                    pcs.add(pc + 1)
        return {pc for pc in pcs if self.ana.depth_at[pc] is not None}

    # -- line helpers --------------------------------------------------
    def w(self, ind: int, text: str) -> None:
        self.lines.append("    " * ind + text)
        if len(self.lines) > _MAX_STATEMENTS:
            raise CompileError(
                f"{self.method.klass}.{self.method.name}: method too "
                f"large to compile")

    def _cost(self, instr: Instr) -> int:
        ip = self.interp
        return instr_cost(instr, ip._cost_plain, ip._cost_checked,
                          ip._cost_static)

    def _sync(self, ind: int, pc: int, depth: int,
              set_pc: bool = True) -> None:
        """Materialize the interpreter frame at (pc, depth)."""
        if set_pc:
            self.w(ind, f"frame.pc = {pc}")
        if depth:
            regs = ", ".join(f"s{i}" for i in range(depth))
            tail = "," if depth == 1 else ""
            self.w(ind, f"st[:] = ({regs}{tail})")
        else:
            self.w(ind, "del st[:]")
        for slot in sorted(self.ana.mutated_locals):
            self.w(ind, f"fl[{slot}] = l{slot}")

    def _flush_ret(self, ind: int, reason: str) -> None:
        self.w(ind, "thread.instructions += icount")
        self.w(ind, f"return used, {reason}")

    def _drain(self, ind: int) -> None:
        # Mirror the interpreter's per-step pending-cost drain (hook-
        # added cost; provably zero today, kept for contract fidelity).
        self.w(ind, "if thread.pending_cost:")
        self.w(ind + 1, "used += thread.pending_cost")
        self.w(ind + 1, "thread.pending_cost = 0")

    def _guard_special(self, ind: int, pc: int, depth: int) -> None:
        """The interpreter's exact one-instruction budget test."""
        self.w(ind, "if used >= budget:")
        self._sync(ind + 1, pc, depth)
        self._flush_ret(ind + 1, "0")

    # ==================================================================
    def compile(self):
        method = self.method
        fname = "_jit_fn"
        self.w(0, f"def {fname}(thread, frame, budget, depth):")
        self.w(1, "used = 0")
        self.w(1, "icount = 0")
        self.w(1, "st = frame.stack")
        self.w(1, "fl = frame.locals")
        for slot in sorted(self.ana.used_locals):
            self.w(1, f"l{slot} = fl[{slot}]")
        self.w(1, "pc = frame.pc")
        entries = sorted(
            self.entry_set,
            key=lambda e: (e not in self.ana.loop_headers, e))
        maxd = max((self.ana.depth_at[e] for e in self.entry_set),
                   default=0)
        if maxd:
            self.w(1, "_n = len(st)")
            kw = "if"
            for k in range(1, maxd + 1):
                self.w(1, f"{kw} _n == {k}:")
                self.w(2, "; ".join(f"s{i} = st[{i}]" for i in range(k)))
                kw = "elif"
        self.w(1, "try:")
        self.w(2, "while True:")
        kw = "if"
        for entry in entries:
            self.w(3, f"{kw} pc == {entry}:")
            self._emit_arm(entry)
            kw = "elif"
        self.w(3, "else:")
        self.w(4, "raise RuntimeError('jit: pc %d is not a compiled "
                  "entry of %s.%s' % (pc, "
                  f"{method.klass!r}, {method.name!r}))")
        # The interpreter records the failure against the *innermost*
        # frame only; _jit_failed keeps nested compiled calls from
        # re-recording it on the way out.
        self.w(1, "except _JVME as exc:")
        self.w(2, "thread.instructions += icount")
        self.w(2, "if not getattr(exc, '_jit_failed', False):")
        self.w(3, "exc._jit_failed = True")
        self.w(3, "frame.pc = pc")
        self.w(3, "thread.fail(exc, frame.where())")
        self.w(2, "raise")

        src = "\n".join(self.lines) + "\n"
        code_obj = compile(src, f"<jit {method.klass}.{method.name}>",
                           "exec")
        ns: Dict[str, Any] = {}
        exec(code_obj, self.env, ns)  # noqa: S102 - this *is* the JIT
        fn = ns[fname]
        fn.entries = frozenset(self.entry_set)
        fn.method = method
        fn.source = src
        fn.stats = [0] * N_REASONS
        fn.consts = self._const_objs
        return fn

    # ==================================================================
    def _emit_arm(self, entry: int) -> None:
        """Tail-duplicate from `entry` until control leaves the arm."""
        code = self.code
        ind = 4
        pc = entry
        d = self.ana.depth_at[entry]
        while True:
            instr = code[pc]
            op = instr.op
            if pc != entry and pc in self.entry_set:
                # Another arm owns this pc: dispatch instead of tail-
                # duplicating (keeps generated code linear in method
                # size; the emitted state is exactly that arm's entry
                # state, so the jump is free of re-materialization).
                self.w(ind, f"pc = {pc}")
                self.w(ind, "continue")
                return
            if pc in self._deopt_pcs:
                self._sync(ind, pc, d)
                self._flush_ret(ind, "9")
                return
            if op in SPECIAL_OPS:
                res = self._emit_special(ind, pc, instr, d)
                if res is None:
                    return
                d = res
                pc += 1
                continue
            # A pre-summed straight-line run of pure ops.
            end = pc
            total = 0
            n = len(code)
            while True:
                run_i = code[end]
                total += self._cost(run_i)
                is_ctl = (run_i.op in BRANCHES
                          or run_i.op in TERMINATORS)
                end += 1
                if is_ctl or end >= n:
                    break
                if (end in self.entry_set or end in self._deopt_pcs
                        or code[end].op in SPECIAL_OPS):
                    break
            self.w(ind, f"if used + {total} >= budget:")
            self._sync(ind + 1, pc, d)
            self._flush_ret(ind + 1, "0")
            self.w(ind, f"used += {total}")
            self.w(ind, f"icount += {end - pc}")
            arm_done = False
            for rpc in range(pc, end):
                ri = code[rpc]
                if ri.op in BRANCHES or ri.op in TERMINATORS:
                    nd = self._emit_control(ind, rpc, ri, d)
                    if nd is None:
                        arm_done = True
                    else:
                        d = nd
                else:
                    d = self._emit_pure(ind, rpc, ri, d)
            if arm_done:
                return
            pc = end

    # -- pure ops ------------------------------------------------------
    def _emit_pure(self, ind: int, pc: int, instr: Instr, d: int) -> int:
        op = instr.op
        w = self.w
        if op is Op.CONST:
            w(ind, f"s{d} = {self.lit(instr.a)}")
            return d + 1
        if op is Op.LOAD:
            w(ind, f"s{d} = l{instr.a}")
            return d + 1
        if op is Op.STORE:
            w(ind, f"l{instr.a} = s{d - 1}")
            return d - 1
        if op is Op.IINC:
            w(ind, f"l{instr.a} += {self.lit(instr.b)}")
            return d
        if op in _ARITH_OPS:
            w(ind, f"s{d - 2} = s{d - 2} {_ARITH_OPS[op]} s{d - 1}")
            return d - 1
        if op is Op.DIV:
            w(ind, f"pc = {pc}")
            w(ind, f"if isinstance(s{d - 2}, int) and "
                   f"isinstance(s{d - 1}, int):")
            w(ind + 1, f"s{d - 2} = _idiv(s{d - 2}, s{d - 1})")
            w(ind, "else:")
            w(ind + 1, f"s{d - 2} = _ddiv(float(s{d - 2}), "
                       f"float(s{d - 1}))")
            return d - 1
        if op is Op.REM:
            w(ind, f"pc = {pc}")
            w(ind, f"if isinstance(s{d - 2}, int) and "
                   f"isinstance(s{d - 1}, int):")
            w(ind + 1, f"s{d - 2} = _irem(s{d - 2}, s{d - 1})")
            w(ind, "else:")
            w(ind + 1, f"s{d - 2} = _fmod(s{d - 2}, s{d - 1}) "
                       f"if s{d - 1} != 0 else _nan")
            return d - 1
        if op is Op.NEG:
            w(ind, f"s{d - 1} = -s{d - 1}")
            return d
        if op is Op.USHR:
            w(ind, f"s{d - 2} = (s{d - 2} & 0xFFFFFFFFFFFFFFFF) "
                   f">> s{d - 1}")
            return d - 1
        if op is Op.CMP:
            w(ind, f"s{d - 2} = 0 if s{d - 2} == s{d - 1} else "
                   f"(-1 if s{d - 2} < s{d - 1} else 1)")
            return d - 1
        if op is Op.I2D:
            w(ind, f"s{d - 1} = float(s{d - 1})")
            return d
        if op is Op.D2I:
            w(ind, f"s{d - 1} = 0 if _isnan(s{d - 1}) else int(s{d - 1})")
            return d
        if op is Op.CONCAT:
            w(ind, f"s{d - 2} = _jstr(s{d - 2}) + _jstr(s{d - 1})")
            return d - 1
        if op is Op.POP:
            return d - 1
        if op is Op.DUP:
            w(ind, f"s{d} = s{d - 1}")
            return d + 1
        if op is Op.DUP_X1:
            w(ind, f"s{d - 2}, s{d - 1}, s{d} = "
                   f"s{d - 1}, s{d - 2}, s{d - 1}")
            return d + 1
        if op is Op.SWAP:
            w(ind, f"s{d - 2}, s{d - 1} = s{d - 1}, s{d - 2}")
            return d
        if op is Op.NEW:
            w(ind, f"pc = {pc}")
            w(ind, f"s{d} = _new({instr.a!r})")
            return d + 1
        if op is Op.NEWARRAY:
            w(ind, f"pc = {pc}")
            w(ind, f"s{d - 1} = _newarr({instr.a!r}, s{d - 1})")
            return d
        if op is Op.ARRAYLENGTH:
            w(ind, f"pc = {pc}")
            w(ind, f"if s{d - 1} is None:")
            w(ind + 1, "raise _NPE('arraylength on null')")
            w(ind, f"s{d - 1} = len(s{d - 1})")
            return d
        if op is Op.GETFIELD:
            w(ind, f"pc = {pc}")
            w(ind, f"if s{d - 1} is None:")
            w(ind + 1, f"raise _NPE('getfield {instr.a}.{instr.b}')")
            self._emit_race(ind, pc, instr, f"s{d - 1}",
                            repr(instr.b), "False")
            w(ind, f"s{d - 1} = s{d - 1}.fields[{self._field_idx[pc]}]")
            return d
        if op is Op.PUTFIELD:
            w(ind, f"pc = {pc}")
            w(ind, f"if s{d - 2} is None:")
            w(ind + 1, f"raise _NPE('putfield {instr.a}.{instr.b}')")
            self._emit_race(ind, pc, instr, f"s{d - 2}",
                            repr(instr.b), "True")
            w(ind, f"s{d - 2}.fields[{self._field_idx[pc]}] = s{d - 1}")
            return d - 2
        if op is Op.ARRLOAD:
            w(ind, f"pc = {pc}")
            w(ind, f"if s{d - 2} is None:")
            w(ind + 1, "raise _NPE('arrload on null')")
            self._emit_race(ind, pc, instr, f"s{d - 2}", f"s{d - 1}",
                            "False")
            w(ind, f"s{d - 2} = s{d - 2}.get(s{d - 1})")
            return d - 1
        if op is Op.ARRSTORE:
            w(ind, f"pc = {pc}")
            w(ind, f"if s{d - 3} is None:")
            w(ind + 1, "raise _NPE('arrstore on null')")
            self._emit_race(ind, pc, instr, f"s{d - 3}", f"s{d - 2}",
                            "True")
            w(ind, f"s{d - 3}.set(s{d - 2}, s{d - 1})")
            return d - 3
        if op is Op.GETSTATIC:
            w(ind, f"s{d} = _classes[{instr.a!r}].statics[{instr.b!r}]")
            return d + 1
        if op is Op.PUTSTATIC:
            w(ind, f"_classes[{instr.a!r}].statics[{instr.b!r}] "
                   f"= s{d - 1}")
            return d - 1
        if op is Op.INSTANCEOF:
            w(ind, f"s{d - 1} = 1 if _isinst(s{d - 1}, {instr.a!r}) "
                   f"else 0")
            return d
        if op is Op.CHECKCAST:
            w(ind, f"pc = {pc}")
            w(ind, f"if s{d - 1} is not None and "
                   f"not _isinst(s{d - 1}, {instr.a!r}):")
            w(ind + 1, f"raise _CCE('%s -> {instr.a}' % getattr(s{d - 1}, "
                       f"'class_name', type(s{d - 1}).__name__))")
            return d
        raise CompileError(
            f"{self.method.klass}.{self.method.name} pc={pc}: "
            f"unhandled pure op {op.name}")

    def _emit_race(self, ind: int, pc: int, instr: Instr, ref: str,
                   slot: str, is_write: str) -> None:
        # Mirror the interpreter's race observer exactly: only when a
        # detector is installed and the access carries a check brand.
        if self._race is None or not instr.checked:
            return
        iname = self.const(instr, "I")
        self.w(ind, f"frame.pc = {pc}")
        self.w(ind, f"_race(thread, {ref}, {slot}, {is_write}, "
                    f"frame, {iname})")

    # -- control -------------------------------------------------------
    def _emit_control(self, ind: int, pc: int, instr: Instr,
                      d: int) -> Optional[int]:
        """Branch/return inside a run; None = the arm is finished."""
        op = instr.op
        w = self.w
        if op is Op.GOTO:
            w(ind, f"pc = {instr.a}")
            w(ind, "continue")
            return None
        if op is Op.IF:
            cond = instr.a
            if cond == "eq":
                w(ind, f"if s{d - 1} == 0 or s{d - 1} is None:")
            elif cond == "ne":
                w(ind, f"if not (s{d - 1} == 0 or s{d - 1} is None):")
            else:
                w(ind, f"pc = {pc}")
                w(ind, f"if s{d - 1} is None:")
                w(ind + 1, f"raise _NPE('ordered compare on null "
                           f"({cond})')")
                pyop = {"lt": "<", "ge": ">=", "gt": ">", "le": "<="}[cond]
                w(ind, f"if s{d - 1} {pyop} 0:")
            w(ind + 1, f"pc = {instr.b}")
            w(ind + 1, "continue")
            return d - 1
        if op is Op.IF_CMP:
            cond = instr.a
            if cond == "eq":
                w(ind, f"if _tcmp('eq', s{d - 2}, s{d - 1}):")
            elif cond == "ne":
                w(ind, f"if not _tcmp('eq', s{d - 2}, s{d - 1}):")
            else:
                pyop = {"lt": "<", "ge": ">=", "gt": ">", "le": "<="}[cond]
                w(ind, f"if s{d - 2} {pyop} s{d - 1}:")
            w(ind + 1, f"pc = {instr.b}")
            w(ind + 1, "continue")
            return d - 2
        if op in (Op.RETURN, Op.RETVAL):
            val = f"s{d - 1}" if op is Op.RETVAL else "None"
            w(ind, "thread.frames.pop()")
            w(ind, "if not thread.frames:")
            w(ind + 1, f"thread.finish({val})")
            w(ind, "else:")
            w(ind + 1, "_c = thread.frames[-1]")
            w(ind + 1, "_c.pc += 1")
            if op is Op.RETVAL:
                w(ind + 1, f"_c.stack.append(s{d - 1})")
            self._drain(ind)
            self._flush_ret(ind, "8")
            return None
        raise CompileError(f"unhandled control op {op.name}")

    # -- specials ------------------------------------------------------
    def _emit_special(self, ind: int, pc: int, instr: Instr,
                      d: int) -> Optional[int]:
        """One blocking-capable op; returns depth after, None = arm ends."""
        op = instr.op
        if op is Op.DSM_READCHECK:
            return self._emit_readcheck(ind, pc, instr, d)
        if op is Op.DSM_WRITECHECK:
            return self._emit_writecheck(ind, pc, instr, d)
        if op is Op.DSM_STATICREF:
            return self._emit_staticref(ind, pc, instr, d)
        if op is Op.DSM_ACQUIRE:
            return self._emit_acquire(ind, pc, instr, d)
        if op is Op.DSM_RELEASE:
            return self._emit_release(ind, pc, instr, d)
        if op is Op.MONITORENTER:
            return self._emit_monitorenter(ind, pc, instr, d)
        if op is Op.MONITOREXIT:
            return self._emit_monitorexit(ind, pc, instr, d)
        if op in (Op.INVOKEVIRTUAL, Op.INVOKESTATIC, Op.INVOKESPECIAL):
            return self._emit_invoke(ind, pc, instr, d)
        raise CompileError(f"unhandled special {op.name}")

    def _emit_readcheck(self, ind, pc, instr, d):
        w = self.w
        self._guard_special(ind, pc, d)
        a = instr.a
        w(ind, f"pc = {pc}")
        w(ind, f"frame.pc = {pc}")
        w(ind, f"_r = s{d - 1 - a}")
        w(ind, "if _r is None:")
        w(ind + 1, "raise _NPE('read check on null')")
        idx = (f"(s{d - a} if isinstance(_r, _Arr) else None)"
               if a >= 1 else "None")
        w(ind, f"_ok, _x = _readcheck(thread, _r, {idx})")
        cost = self._cost(instr)
        w(ind, f"used += {cost} + _x" if cost else "used += _x")
        w(ind, "icount += 1")
        self._drain(ind)
        w(ind, "if not _ok:")
        self._sync(ind + 1, pc, d, set_pc=False)
        w(ind + 1, "thread.block(reexec=True, reason='read miss')")
        self._flush_ret(ind + 1, "1")
        return d

    def _emit_writecheck(self, ind, pc, instr, d):
        w = self.w
        self._guard_special(ind, pc, d)
        a = instr.a
        w(ind, f"pc = {pc}")
        w(ind, f"frame.pc = {pc}")
        w(ind, f"_r = s{d - 1 - a}")
        w(ind, "if _r is None:")
        w(ind + 1, "raise _NPE('write check on null')")
        val = f"s{d - 1 - instr.b}" if instr.b is not None else "None"
        idx = (f"(s{d - a} if isinstance(_r, _Arr) else None)"
               if a >= 2 else "None")
        w(ind, f"_ok, _x = _writecheck(thread, _r, {val}, {idx})")
        cost = self._cost(instr)
        w(ind, f"used += {cost} + _x" if cost else "used += _x")
        w(ind, "icount += 1")
        self._drain(ind)
        w(ind, "if not _ok:")
        self._sync(ind + 1, pc, d, set_pc=False)
        w(ind + 1, "thread.block(reexec=True, reason='write miss')")
        self._flush_ret(ind + 1, "2")
        return d

    def _emit_staticref(self, ind, pc, instr, d):
        w = self.w
        self._guard_special(ind, pc, d)
        w(ind, f"pc = {pc}")
        w(ind, f"frame.pc = {pc}")
        w(ind, f"_r, _x = _staticref(thread, {instr.a!r})")
        cost = self._cost(instr)
        w(ind, f"used += {cost} + _x" if cost else "used += _x")
        w(ind, "icount += 1")
        self._drain(ind)
        w(ind, "if _r is None:")
        self._sync(ind + 1, pc, d, set_pc=False)
        w(ind + 1, "thread.block(reexec=True, "
                   "reason='static holder miss')")
        self._flush_ret(ind + 1, "3")
        w(ind, f"s{d} = _r")
        return d + 1

    def _emit_acquire(self, ind, pc, instr, d):
        w = self.w
        self._guard_special(ind, pc, d)
        w(ind, f"pc = {pc}")
        w(ind, f"_r = s{d - 1}")
        w(ind, "if _r is None:")
        w(ind + 1, "raise _NPE('acquire on null')")
        cost = self._cost(instr)
        ll = self.jvm.cost_model[cm.LOCAL_LOCK_OP]
        if self._lock_opt:
            # §4.4 inline fast path: uncontended local lock, no hook
            # call at all — the exact happy path of DsmEngine.acquire.
            w(ind, "_h = _r.header")
            w(ind, "if _h is not None and _h.state == _LOCAL and "
                   "(_h.lock_owner is None or _h.lock_owner is thread):")
            w(ind + 1, "_h.lock_owner = thread")
            w(ind + 1, "_h.lock_count += 1")
            w(ind + 1, "_stats.local_acquires += 1")
            if self._dsm_race:
                w(ind + 1, "_race_la(thread, _h)")
            w(ind + 1, f"used += {cost + ll}")
            w(ind, "else:")
            self._emit_acquire_slow(ind + 1, pc, d, cost)
        else:
            self._emit_acquire_slow(ind, pc, d, cost)
        w(ind, "icount += 1")
        self._drain(ind)
        return d - 1

    def _emit_acquire_slow(self, ind, pc, d, cost):
        w = self.w
        # Complete-style block: the ref is popped before the hook runs,
        # and the waker advances the pc past the instruction.
        self.w(ind, f"frame.pc = {pc}")
        if d - 1:
            regs = ", ".join(f"s{i}" for i in range(d - 1))
            tail = "," if d - 1 == 1 else ""
            w(ind, f"st[:] = ({regs}{tail})")
        else:
            w(ind, "del st[:]")
        for slot in sorted(self.ana.mutated_locals):
            w(ind, f"fl[{slot}] = l{slot}")
        w(ind, "_ok, _x = _acquire(thread, _r)")
        w(ind, f"used += {cost} + _x" if cost else "used += _x")
        w(ind, "if not _ok:")
        w(ind + 1, "thread.block(reexec=False, reason='lock acquire')")
        w(ind + 1, "icount += 1")
        self._drain(ind + 1)
        self._flush_ret(ind + 1, "4")

    def _emit_release(self, ind, pc, instr, d):
        w = self.w
        self._guard_special(ind, pc, d)
        w(ind, f"pc = {pc}")
        w(ind, f"_r = s{d - 1}")
        w(ind, "if _r is None:")
        w(ind + 1, "raise _NPE('release on null')")
        cost = self._cost(instr)
        ll = self.jvm.cost_model[cm.LOCAL_LOCK_OP]
        if self._lock_opt:
            w(ind, "_h = _r.header")
            w(ind, "if _h is not None and _h.state == _LOCAL and "
                   "_h.lock_owner is thread and _h.lock_count > 0:")
            w(ind + 1, "_h.lock_count -= 1")
            w(ind + 1, "if _h.lock_count == 0:")
            w(ind + 2, "_h.lock_owner = None")
            if self._dsm_race:
                w(ind + 2, "_race_lr(thread, _h)")
            w(ind + 1, f"used += {cost + ll}")
            w(ind, "else:")
            self._emit_release_slow(ind + 1, pc, d, cost)
        else:
            self._emit_release_slow(ind, pc, d, cost)
        w(ind, "icount += 1")
        self._drain(ind)
        return d - 1

    def _emit_release_slow(self, ind, pc, d, cost):
        w = self.w
        self.w(ind, f"frame.pc = {pc}")
        if d - 1:
            regs = ", ".join(f"s{i}" for i in range(d - 1))
            tail = "," if d - 1 == 1 else ""
            w(ind, f"st[:] = ({regs}{tail})")
        else:
            w(ind, "del st[:]")
        for slot in sorted(self.ana.mutated_locals):
            w(ind, f"fl[{slot}] = l{slot}")
        w(ind, "_x = _release(thread, _r)")
        w(ind, f"used += {cost} + _x" if cost else "used += _x")

    def _emit_monitorenter(self, ind, pc, instr, d):
        w = self.w
        self._guard_special(ind, pc, d)
        w(ind, f"pc = {pc}")
        w(ind, f"_r = s{d - 1}")
        w(ind, "if _r is None:")
        w(ind + 1, "raise _NPE('monitorenter on null')")
        self._sync(ind, pc, d - 1)
        w(ind, f"used += {self._cost(instr)}")
        w(ind, "icount += 1")
        self._drain(ind)
        w(ind, "if not _menter(thread, _r):")
        w(ind + 1, "thread.block(reexec=False, reason='monitor enter')")
        self._flush_ret(ind + 1, "5")
        return d - 1

    def _emit_monitorexit(self, ind, pc, instr, d):
        w = self.w
        self._guard_special(ind, pc, d)
        w(ind, f"pc = {pc}")
        w(ind, f"_r = s{d - 1}")
        w(ind, "if _r is None:")
        w(ind + 1, "raise _NPE('monitorexit on null')")
        w(ind, "_mexit(thread, _r)")
        w(ind, f"used += {self._cost(instr)}")
        w(ind, "icount += 1")
        self._drain(ind)
        return d - 1

    # -- invokes -------------------------------------------------------
    def _emit_invoke(self, ind, pc, instr, d):
        static_m = self.ana.invoke_targets[pc]
        n = static_m.nargs
        base = self._cost(instr)
        self._guard_special(ind, pc, d)
        w = self.w
        if instr.op is Op.INVOKEVIRTUAL:
            p = len(static_m.params)
            w(ind, f"_rcv = s{d - 1 - p}")
            w(ind, "if _rcv is None:")
            w(ind + 1, f"pc = {pc}")
            w(ind + 1, f"raise _NPE('invoke {instr.a}.{instr.b} "
                       f"on null')")
            w(ind, f"pc = {pc}")
            w(ind, "if isinstance(_rcv, str):")
            w(ind + 1, f"_t = _resolve({self.jvm.string_class!r}, "
                       f"{instr.b!r})")
            w(ind, "elif isinstance(_rcv, _Arr):")
            w(ind + 1, f"_t = _resolve({self.jvm.object_class!r}, "
                       f"{instr.b!r})")
            w(ind, "else:")
            w(ind + 1, f"_t = _rcv.rtclass.vtable.get({instr.b!r})")
            w(ind + 1, "if _t is None:")
            w(ind + 2, f"_t = _resolve({instr.a!r}, {instr.b!r})")
            w(ind, "if _t.is_native:")
            self._emit_native(ind + 1, pc, d, n, static_m, base,
                              pure=False)
            w(ind, "else:")
            self._emit_direct_call(ind + 1, pc, d, n, static_m, base,
                                   cache_key="id(_t)", target_expr="_t")
            return d - n + (0 if static_m.ret == "void" else 1)
        # INVOKESTATIC / INVOKESPECIAL: target known at compile time.
        tname = self.const(static_m, "M")
        w(ind, f"pc = {pc}")
        w(ind, f"_t = {tname}")
        if static_m.is_native:
            self._emit_native(ind, pc, d, n, static_m, base,
                              pure=_is_pure_native(static_m))
        else:
            self.agent.methods[id(static_m)] = static_m
            self._emit_direct_call(ind, pc, d, n, static_m, base,
                                   cache_key=str(id(static_m)),
                                   target_expr=tname)
        return d - n + (0 if static_m.ret == "void" else 1)

    def _args(self, d: int, n: int) -> str:
        return "[" + ", ".join(f"s{i}" for i in range(d - n, d)) + "]"

    def _emit_native(self, ind, pc, d, n, static_m, base, pure):
        w = self.w
        cost = base + self.jvm.cost_model[cm.NATIVE]
        if not pure:
            # Materialize the frame first: a blocking native's waker
            # pushes the result onto the *real* stack via complete().
            self._sync(ind, pc, d - n)
        w(ind, "_nat = _t.native_cache")
        w(ind, "if _nat is None:")
        w(ind + 1, "_nat = _native(_t.klass, _t.name)")
        w(ind + 1, "_t.native_cache = _nat")
        w(ind, f"_res = _nat(_jvm, thread, {self._args(d, n)})")
        w(ind, f"used += {cost}")
        w(ind, "icount += 1")
        self._drain(ind)
        if pure:
            # Whitelisted: never blocks, never void — two identity
            # tests guard the contract without frame materialization.
            w(ind, "if _res is _BLK or _res is _NOV:")
            w(ind + 1, "raise RuntimeError('jit: pure native %s.%s "
                       "misbehaved' % (_t.klass, _t.name))")
            w(ind, f"s{d - n} = _res")
            return
        w(ind, "if _res is _BLK:")
        w(ind + 1, "thread.block(reexec=False, "
                   "reason='native ' + _t.name)")
        self._flush_ret(ind + 1, "6")
        if static_m.ret == "void":
            w(ind, "if _res is not _NOV:")
            w(ind + 1, "raise RuntimeError('jit: void native %s.%s "
                       "returned a value' % (_t.klass, _t.name))")
        else:
            w(ind, "if _res is _NOV:")
            w(ind + 1, "raise _JVME('native %s.%s returned no value' "
                       "% (_t.klass, _t.name))")
            w(ind, f"s{d - n} = _res")

    def _emit_direct_call(self, ind, pc, d, n, static_m, base,
                          cache_key, target_expr):
        w = self.w
        w(ind, f"_f = _CACHE.get({cache_key})")
        w(ind, f"if _f is None or _f is False or depth > "
               f"{_MAX_CALL_DEPTH}:")
        # R_CALL: nothing charged, nothing popped — the manager's one
        # forced interpreter step re-executes the whole invoke exactly.
        self._sync(ind + 1, pc, d)
        self._flush_ret(ind + 1, "7")
        self._sync(ind, pc, d - n)
        w(ind, f"used += {base}")
        w(ind, "icount += 1")
        w(ind, f"_nf = _Frame({target_expr}, {self._args(d, n)})")
        w(ind, "thread.frames.append(_nf)")
        w(ind, "_cu, _cr = _f(thread, _nf, budget - used, depth + 1)")
        w(ind, "used += _cu")
        w(ind, "if _cr != 8 or thread.state is not _RUN or "
               "not thread.frames or thread.frames[-1] is not frame:")
        self._flush_ret(ind + 1, "_cr")
        if static_m.ret != "void":
            # The callee's inline return pushed the value onto our
            # materialized stack and advanced frame.pc past the invoke.
            w(ind, f"s{d - n} = st.pop()")


def compile_method(method: MethodInfo, agent):
    """Compile one method for one worker's JVM; raises CompileError."""
    return _Emitter(method, agent).compile()
