"""Static method analysis feeding the tier-1 compiler.

The codegen needs exactly what the verifier already proves: a single
consistent operand-stack depth at every reachable pc.  That invariant is
what lets the compiler map the operand stack onto Python locals
(``s0..s{k}``) instead of a list.  This module re-runs the verifier's
depth dataflow (resolving invoke arities through the *runtime* method
resolver, so virtual arity matches what the interpreter will use) and
classifies every instruction for the emitter:

* **pure** ops execute entirely inside a compiled run — no hooks, no
  blocking — and have their simulated cost pre-summed per run;
* **special** ops (DSM checks, acquire/release, monitors, invokes) can
  block or leave the method, so each is emitted as its own guarded
  segment with the interpreter's exact semantics;
* anything the compiler cannot bind at compile time (unresolvable
  method/field references) becomes a **deopt** site: the compiled
  function materializes the interpreter state and bails out.

Also exported: :func:`pre_summed_runs`, the per-block cost summary the
``disasm`` annotations and the emitter share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..sim import cost_model as cm
from ..jvm.bytecode import (
    BRANCHES,
    CONDITIONS,
    HEAP_ACCESS_COST,
    OP_COST,
    TERMINATORS,
    Instr,
    Op,
)
from ..jvm.classfile import MethodInfo

# Ops a compiled run executes inline with no possibility of blocking and
# no runtime hook other than the race observer (which adds no cost).
PURE_OPS = frozenset({
    Op.CONST, Op.LOAD, Op.STORE, Op.IINC,
    Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.REM, Op.NEG,
    Op.SHL, Op.SHR, Op.USHR, Op.AND, Op.OR, Op.XOR, Op.CMP,
    Op.I2D, Op.D2I, Op.CONCAT,
    Op.POP, Op.DUP, Op.DUP_X1, Op.SWAP,
    Op.NEW, Op.NEWARRAY, Op.ARRAYLENGTH,
    Op.GETFIELD, Op.PUTFIELD, Op.GETSTATIC, Op.PUTSTATIC,
    Op.INSTANCEOF, Op.CHECKCAST,
    Op.ARRLOAD, Op.ARRSTORE,
    Op.GOTO, Op.IF, Op.IF_CMP, Op.RETURN, Op.RETVAL,
})

# Ops that can block the thread (or leave the frame) and therefore end a
# pre-summed run: each gets its own budget guard and exact-cost segment.
SPECIAL_OPS = frozenset({
    Op.DSM_READCHECK, Op.DSM_WRITECHECK, Op.DSM_STATICREF,
    Op.DSM_ACQUIRE, Op.DSM_RELEASE,
    Op.MONITORENTER, Op.MONITOREXIT,
    Op.INVOKEVIRTUAL, Op.INVOKESTATIC, Op.INVOKESPECIAL,
})

_INVOKES = (Op.INVOKEVIRTUAL, Op.INVOKESTATIC, Op.INVOKESPECIAL)

# Mirror of the verifier's stack-effect tables (see jvm/verifier.py);
# invokes are handled separately via the resolved method's arity.
_SIMPLE_DELTA = {
    Op.CONST: 1, Op.LOAD: 1, Op.STORE: -1, Op.IINC: 0,
    Op.ADD: -1, Op.SUB: -1, Op.MUL: -1, Op.DIV: -1, Op.REM: -1,
    Op.NEG: 0, Op.SHL: -1, Op.SHR: -1, Op.USHR: -1,
    Op.AND: -1, Op.OR: -1, Op.XOR: -1, Op.CMP: -1,
    Op.I2D: 0, Op.D2I: 0, Op.CONCAT: -1,
    Op.POP: -1, Op.DUP: 1, Op.DUP_X1: 1, Op.SWAP: 0,
    Op.GOTO: 0, Op.IF: -1, Op.IF_CMP: -2,
    Op.NEW: 1, Op.GETFIELD: 0, Op.PUTFIELD: -2,
    Op.GETSTATIC: 1, Op.PUTSTATIC: -1,
    Op.INSTANCEOF: 0, Op.CHECKCAST: 0,
    Op.RETURN: 0, Op.RETVAL: -1,
    Op.NEWARRAY: 0, Op.ARRLOAD: -1, Op.ARRSTORE: -3, Op.ARRAYLENGTH: 0,
    Op.MONITORENTER: -1, Op.MONITOREXIT: -1,
    Op.DSM_READCHECK: 0, Op.DSM_WRITECHECK: 0,
    Op.DSM_ACQUIRE: -1, Op.DSM_RELEASE: -1, Op.DSM_STATICREF: 1,
}


class CompileError(Exception):
    """This method cannot be compiled; it stays on the interpreter."""


def instr_cost(instr: Instr, cost_plain: List[int], cost_checked: List[int],
               cost_static: List[int]) -> int:
    """Base simulated cost of one instruction, brand-resolved.

    Must match ``Interpreter._base_cost`` exactly — the JIT's entire
    bit-identical-sim-time guarantee rests on this function.
    """
    if instr.checked:
        table = cost_static if instr.checked == "static" else cost_checked
        return table[instr.op]
    return cost_plain[instr.op]


def build_cost_tables(cost_model: Dict[str, int]) -> Tuple[List[int], ...]:
    """Brand-resolved per-opcode cost tables (plain, checked, static).

    The same resolution ``Interpreter.__init__`` performs; duplicated
    here so ``disasm`` can annotate costs without building a JVM.
    """
    n_ops = max(int(op) for op in Op) + 1
    plain = [0] * n_ops
    checked = [0] * n_ops
    static = [0] * n_ops
    for op in Op:
        heap_key = HEAP_ACCESS_COST.get(op)
        if heap_key is not None:
            plain[op] = cost_model[heap_key]
            checked[op] = cost_model[cm.checked(heap_key)]
            static[op] = checked[op]
        else:
            key = OP_COST[op]
            cost = cost_model[key] if key is not None else 0
            plain[op] = cost
            checked[op] = cost
            static[op] = cost
    static[Op.GETFIELD] = cost_model[cm.checked(cm.STATIC_READ)]
    static[Op.PUTFIELD] = cost_model[cm.checked(cm.STATIC_WRITE)]
    return plain, checked, static


@dataclass
class MethodAnalysis:
    """Everything the emitter needs to know about one method."""

    method: MethodInfo
    #: Operand-stack depth before each pc; None = unreachable.
    depth_at: List[Optional[int]]
    #: pcs that are branch targets (reachable).
    branch_targets: Set[int] = field(default_factory=set)
    #: Targets of backward branches — loop headers, ordered hot-first
    #: in the dispatch chain.
    loop_headers: Set[int] = field(default_factory=set)
    #: Local slots read or written by the method body.
    used_locals: Set[int] = field(default_factory=set)
    #: Local slots written (STORE/IINC) — the only ones that need
    #: syncing back into the interpreter Frame on deopt.
    mutated_locals: Set[int] = field(default_factory=set)
    #: Resolved static call target per invoke pc (None = unresolvable,
    #: becomes a deopt site).
    invoke_targets: Dict[int, Optional[MethodInfo]] = field(
        default_factory=dict)

    def entries(self) -> Set[int]:
        """Every pc the compiled function must be enterable at.

        A quantum can end anywhere (the interpreter tail runs to the
        exact budget boundary), but the compiled function only *starts*
        at: method entry, branch targets, and each special op and its
        successor (blocked threads resume at, or just after, the op
        that blocked).
        """
        code = self.method.code
        n = len(code)
        pcs = {0} | set(self.branch_targets)
        for pc, instr in enumerate(code):
            if self.depth_at[pc] is None:
                continue
            if instr.op in SPECIAL_OPS or self.invoke_targets.get(pc, "") is None:
                pcs.add(pc)
                if pc + 1 < n:
                    pcs.add(pc + 1)
        return {pc for pc in pcs if self.depth_at[pc] is not None}


def analyze(method: MethodInfo, jvm) -> MethodAnalysis:
    """Run the depth dataflow and classify every instruction.

    Raises :exc:`CompileError` when the method has no code, is native,
    or violates any invariant the emitter depends on (none of which can
    happen for verifier-accepted code — belt and braces).
    """
    code = method.code
    if method.is_native or not code:
        raise CompileError(f"{method.klass}.{method.name}: no bytecode")
    n = len(code)
    if code[-1].op not in TERMINATORS:
        raise CompileError(f"{method.klass}.{method.name}: no terminator")

    ana = MethodAnalysis(method=method, depth_at=[None] * n)
    depth_at = ana.depth_at
    depth_at[0] = 0
    worklist = [0]
    while worklist:
        pc = worklist.pop()
        depth = depth_at[pc]
        instr = code[pc]
        op = instr.op

        if op not in PURE_OPS and op not in SPECIAL_OPS:
            raise CompileError(
                f"{method.klass}.{method.name} pc={pc}: "
                f"uncompilable op {op.name}")
        if op in (Op.IF, Op.IF_CMP) and instr.a not in CONDITIONS:
            raise CompileError(
                f"{method.klass}.{method.name} pc={pc}: "
                f"bad condition {instr.a!r}")
        if op in (Op.LOAD, Op.IINC):
            ana.used_locals.add(instr.a)
        if op in (Op.STORE, Op.IINC):
            ana.used_locals.add(instr.a)
            ana.mutated_locals.add(instr.a)

        if op in _INVOKES:
            # Resolve through the runtime resolver — the same walk the
            # interpreter caches — so arity and nativeness match what
            # will execute.  Unresolvable == deopt site: the forced
            # interpreter step reproduces the exact LinkError.
            try:
                target = jvm.resolve_method(instr.a, instr.b)
            except Exception:
                target = None
            ana.invoke_targets[pc] = target
            if target is None:
                # Depth unknowable past an unresolvable invoke; only
                # safe if nothing follows on this path.  Deopt stubs
                # return to the interpreter, which will raise — treat
                # successors as unreachable-from-here.
                continue
            pops = target.nargs
            pushes = 0 if target.ret == "void" else 1
            if depth < pops:
                raise CompileError(
                    f"{method.klass}.{method.name} pc={pc}: underflow")
            new_depth = depth - pops + pushes
        else:
            new_depth = depth + _SIMPLE_DELTA[op]
            if new_depth < 0 or depth + min(0, _SIMPLE_DELTA[op]) < 0:
                raise CompileError(
                    f"{method.klass}.{method.name} pc={pc}: underflow")

        succs = []
        if op in BRANCHES:
            target_pc = instr.a if op is Op.GOTO else instr.b
            if not isinstance(target_pc, int) or not (0 <= target_pc < n):
                raise CompileError(
                    f"{method.klass}.{method.name} pc={pc}: bad target")
            ana.branch_targets.add(target_pc)
            if target_pc <= pc:
                ana.loop_headers.add(target_pc)
            succs.append(target_pc)
        if op not in TERMINATORS:
            succs.append(pc + 1)

        for s in succs:
            if depth_at[s] is None:
                depth_at[s] = new_depth
                worklist.append(s)
            elif depth_at[s] != new_depth:
                raise CompileError(
                    f"{method.klass}.{method.name} pc={s}: "
                    f"inconsistent depth")
    return ana


def pre_summed_runs(method: MethodInfo, cost_plain: List[int],
                    cost_checked: List[int],
                    cost_static: List[int]) -> List[Tuple[int, int, int]]:
    """Straight-line runs of pure ops and their pre-summed cost.

    Returns ``[(start_pc, end_pc_exclusive, total_cost_ns), ...]`` —
    the blocks whose cost the compiled code charges in one addition at
    block entry.  Runs break at specials (which charge exact per-op
    cost), at branch targets (block entries), and after control ops.
    Used by the emitter and by the ``disasm`` cost annotations.
    """
    code = method.code
    n = len(code)
    starts = {0}
    for pc, instr in enumerate(code):
        if instr.op in BRANCHES:
            starts.add(instr.a if instr.op is Op.GOTO else instr.b)
        if instr.op in SPECIAL_OPS:
            starts.add(pc)
            if pc + 1 < n:
                starts.add(pc + 1)
        if instr.op in BRANCHES or instr.op in TERMINATORS:
            if pc + 1 < n:
                starts.add(pc + 1)
    runs: List[Tuple[int, int, int]] = []
    pc = 0
    while pc < n:
        if code[pc].op in SPECIAL_OPS:
            pc += 1
            continue
        end = pc
        total = 0
        while end < n and code[end].op not in SPECIAL_OPS and \
                (end == pc or end not in starts):
            total += instr_cost(code[end], cost_plain, cost_checked,
                                cost_static)
            is_control = (code[end].op in BRANCHES
                          or code[end].op in TERMINATORS)
            end += 1
            if is_control:
                break
        runs.append((pc, end, total))
        pc = end
    return runs
