"""Tiered-execution manager: promotion counters, code cache, quanta.

One :class:`JitManager` attaches to the runtime (same pattern as the
ft/locality/policy/race/obs managers); it installs one :class:`JitAgent`
per worker.  The agent owns the per-node code cache — ``MethodInfo``
objects are *shared* across worker JVMs (one ``RewriteResult``), so the
cache is keyed by ``id(method)`` per agent, and each agent compiles its
own specialization bound to its own JVM's hooks and heap.

Tier 0 is the unmodified interpreter.  Tier 1 is the codegen'd Python
function (:mod:`repro.jit.codegen`).  Promotion is by invocation count
(``jit_threshold``); compile failures blacklist the method forever
(``cache[id] = False``) and record the reason.

``run_quantum`` replaces ``JThread.run_quantum``'s interpret loop:

* pc at a compiled entry → run the compiled function, account its
  reason;
* pc elsewhere (interpreter tails end quanta at arbitrary pcs), method
  not compiled, or blacklisted → one interpreter step;
* ``R_BUDGET`` → finish the quantum with the interpreter so the
  overshoot boundary is bit-identical to tier 0;
* ``R_DEOPT``/``R_CALL`` → one interpreter step executes the pc the
  compiled code could not (budget permitting — otherwise the next
  quantum re-enters the stub with fresh budget).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from ..sim.node import StreamState
from .codegen import (
    N_REASONS,
    R_BUDGET,
    R_CALL,
    R_DEOPT,
    REASON_NAMES,
    compile_method,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..jvm.classfile import MethodInfo
    from ..runtime.javasplit import JavaSplitRuntime
    from ..runtime.worker import WorkerNode

_RUNNABLE = StreamState.RUNNABLE


class JitAgent:
    """Per-worker tier-1 compiler + quantum driver."""

    def __init__(self, manager: "JitManager", worker: "WorkerNode") -> None:
        self.manager = manager
        self.worker = worker
        self.jvm = worker.jvm
        self.interp = worker.jvm.interpreter
        self.threshold = manager.threshold
        # id(method) -> compiled fn, or False (blacklisted).
        self.cache: Dict[int, Any] = {}
        # id(method) -> MethodInfo: pins methods (and gives report names).
        self.methods: Dict[int, "MethodInfo"] = {}
        self.counters: Dict[int, int] = {}
        self.compiles = 0
        self.compile_failures: Dict[str, str] = {}  # method -> reason
        self.reasons = [0] * N_REASONS  # aggregated fn exit reasons
        self.interp_steps = 0
        # Wall-clock telemetry (None unless obs_wallclock): compile time
        # per method, interpreter-vs-JIT wall time per quantum.
        self.wall = manager.wall
        if self.wall is not None:
            # Instance attribute shadows the method: the hot path stays
            # probe-free when the knob is off.
            self.run_quantum = self._run_quantum_timed  # type: ignore
        self.jvm.jit = self
        self.interp.jit = self

    # -- promotion -----------------------------------------------------
    def note_invoke(self, method: "MethodInfo") -> None:
        """Interpreter callback on every non-native frame push."""
        key = id(method)
        if key in self.cache:
            return
        count = self.counters.get(key, 0) + 1
        if count >= self.threshold:
            self._compile(method)
        else:
            self.counters[key] = count

    def note_quantum(self, method: "MethodInfo") -> None:
        """Quantum-entry promotion: loops that never return still get
        hot (one tick per scheduler quantum spent in the method)."""
        key = id(method)
        if key in self.cache:
            return
        count = self.counters.get(key, 0) + 1
        if count >= self.threshold:
            self._compile(method)
        else:
            self.counters[key] = count

    def _compile(self, method: "MethodInfo") -> None:
        key = id(method)
        self.counters.pop(key, None)
        self.methods[key] = method
        t0 = time.monotonic_ns() if self.wall is not None else 0
        try:
            fn = compile_method(method, self)
        except Exception as exc:  # noqa: BLE001 - any failure → tier 0
            self.cache[key] = False
            self.compile_failures[f"{method.klass}.{method.name}"] = (
                f"{type(exc).__name__}: {exc}")
            return
        self.cache[key] = fn
        self.compiles += 1
        if self.wall is not None:
            compile_ns = time.monotonic_ns() - t0
            self.wall.observe(
                "jit.compile_ns", self.worker.node_id, compile_ns)
            self.manager.note_tier(self.worker.node_id, method, compile_ns)
        self.manager._on_compiled(self.worker.node_id, method)

    # -- execution -----------------------------------------------------
    def run_quantum(self, thread, budget_ns: int):
        """Drop-in for JThread.run_quantum's interpret loop."""
        consumed = 0
        interp = self.interp
        cache = self.cache
        frames = thread.frames
        if frames:
            self.note_quantum(frames[-1].method)
        while consumed < budget_ns and thread.state is _RUNNABLE:
            frame = frames[-1]
            fn = cache.get(id(frame.method))
            if fn is None or fn is False or frame.pc not in fn.entries:
                consumed += interp.step(thread)
                self.interp_steps += 1
                continue
            used, reason = fn(thread, frame, budget_ns - consumed, 0)
            consumed += used
            fn.stats[reason] += 1
            self.reasons[reason] += 1
            if self.manager.trace is not None and reason >= R_CALL:
                self.manager.trace.append(
                    (self.worker.node_id, thread.name,
                     f"{frame.method.klass}.{frame.method.name}",
                     frame.pc, REASON_NAMES[reason]))
            if reason == R_BUDGET:
                # Interpreter tail: reproduce tier 0's exact overshoot.
                while consumed < budget_ns and thread.state is _RUNNABLE:
                    consumed += interp.step(thread)
                    self.interp_steps += 1
                break
            if reason == R_DEOPT or reason == R_CALL:
                # The interpreter must execute this pc (deopt site, or
                # an invoke whose callee is not compiled).
                if consumed < budget_ns and thread.state is _RUNNABLE:
                    consumed += interp.step(thread)
                    self.interp_steps += 1
        return consumed, thread.state

    def _run_quantum_timed(self, thread, budget_ns: int):
        """``run_quantum`` with per-quantum wall-clock attribution
        (installed only under ``obs_wallclock``).  Same control flow;
        every interpreter step and compiled-fn call is bracketed with
        the monotonic clock, observed once per quantum."""
        consumed = 0
        interp_wall = 0
        jit_wall = 0
        interp = self.interp
        cache = self.cache
        frames = thread.frames
        clock = time.monotonic_ns
        if frames:
            self.note_quantum(frames[-1].method)
        while consumed < budget_ns and thread.state is _RUNNABLE:
            frame = frames[-1]
            fn = cache.get(id(frame.method))
            if fn is None or fn is False or frame.pc not in fn.entries:
                t0 = clock()
                consumed += interp.step(thread)
                interp_wall += clock() - t0
                self.interp_steps += 1
                continue
            t0 = clock()
            used, reason = fn(thread, frame, budget_ns - consumed, 0)
            jit_wall += clock() - t0
            consumed += used
            fn.stats[reason] += 1
            self.reasons[reason] += 1
            if self.manager.trace is not None and reason >= R_CALL:
                self.manager.trace.append(
                    (self.worker.node_id, thread.name,
                     f"{frame.method.klass}.{frame.method.name}",
                     frame.pc, REASON_NAMES[reason]))
            if reason == R_BUDGET:
                t0 = clock()
                while consumed < budget_ns and thread.state is _RUNNABLE:
                    consumed += interp.step(thread)
                    self.interp_steps += 1
                interp_wall += clock() - t0
                break
            if reason == R_DEOPT or reason == R_CALL:
                if consumed < budget_ns and thread.state is _RUNNABLE:
                    t0 = clock()
                    consumed += interp.step(thread)
                    interp_wall += clock() - t0
                    self.interp_steps += 1
        node = self.worker.node_id
        if interp_wall:
            self.wall.observe("jit.quantum.interp_ns", node, interp_wall)
        if jit_wall:
            self.wall.observe("jit.quantum.jit_ns", node, jit_wall)
        return consumed, thread.state

    # -- reporting -----------------------------------------------------
    def report(self) -> Dict[str, Any]:
        methods = {}
        for key, fn in self.cache.items():
            m = self.methods.get(key)
            name = f"{m.klass}.{m.name}" if m is not None else f"@{key:x}"
            if fn is False:
                continue
            methods[name] = {
                "tier": 1,
                "exits": {REASON_NAMES[i]: n
                          for i, n in enumerate(fn.stats) if n},
            }
        return {
            "node": self.worker.node_id,
            "compiled": self.compiles,
            "blacklisted": dict(self.compile_failures),
            "interp_steps": self.interp_steps,
            "exit_reasons": {REASON_NAMES[i]: n
                             for i, n in enumerate(self.reasons) if n},
            "methods": methods,
        }


class JitManager:
    """Runtime-level facade: attaches one agent per worker, aggregates."""

    def __init__(self, runtime: "JavaSplitRuntime") -> None:
        self.runtime = runtime
        self.threshold = runtime.config.jit_threshold
        self.agents: List[JitAgent] = []
        self.trace: Optional[List[tuple]] = (
            [] if runtime.config.jit_deopt_trace else None)
        # Wall-clock registry (obs attaches before jit; None w/o knob).
        obs = getattr(runtime, "obs", None)
        self.wall = None if obs is None else obs.wallclock
        # Tier-transition log: when (both clocks) each method went tier 1.
        self.tier_events: List[Dict[str, Any]] = []

    def note_tier(self, node_id: int, method: "MethodInfo",
                  compile_ns: int) -> None:
        """Record one tier-0 → tier-1 transition with both timestamps."""
        self.tier_events.append({
            "node": node_id,
            "method": f"{method.klass}.{method.name}",
            "tier": 1,
            "sim_ns": self.runtime.engine.now,
            "wall_ns": time.monotonic_ns(),
            "compile_ns": compile_ns,
        })

    def attach(self) -> None:
        for worker in self.runtime.workers:
            self.agents.append(JitAgent(self, worker))

    def on_worker_added(self, worker: "WorkerNode") -> None:
        self.agents.append(JitAgent(self, worker))

    # -- obs integration -----------------------------------------------
    def _metrics(self):
        obs = getattr(self.runtime, "obs", None)
        return None if obs is None else obs.metrics

    def _on_compiled(self, node_id: int, method: "MethodInfo") -> None:
        metrics = self._metrics()
        if metrics is not None:
            metrics.inc("jit.compiles", node_id)
        obs = getattr(self.runtime, "obs", None)
        if obs is not None:
            obs.flight_record(node_id, "jit.compile",
                              method=f"{method.klass}.{method.name}")

    def finalize_metrics(self) -> None:
        """Publish cumulative jit.* counters (called from run())."""
        metrics = self._metrics()
        if metrics is None:
            return
        for agent in self.agents:
            node = agent.worker.node_id
            for i, n in enumerate(agent.reasons):
                if n:
                    metrics.inc(f"jit.exit.{REASON_NAMES[i]}", node, n)
            if agent.compile_failures:
                metrics.inc("jit.blacklisted", node,
                            len(agent.compile_failures))

    def report(self) -> Dict[str, Any]:
        per_node = [a.report() for a in self.agents]
        exits: Dict[str, int] = {}
        for rep in per_node:
            for name, n in rep["exit_reasons"].items():
                exits[name] = exits.get(name, 0) + n
        methods: Dict[str, Dict[str, Any]] = {}
        for rep in per_node:
            for name, info in rep["methods"].items():
                agg = methods.setdefault(name, {"tier": 1, "exits": {}})
                for r, n in info["exits"].items():
                    agg["exits"][r] = agg["exits"].get(r, 0) + n
        out: Dict[str, Any] = {
            "threshold": self.threshold,
            "compiled_methods": sorted(methods),
            "compiles": sum(r["compiled"] for r in per_node),
            "blacklisted": {k: v for r in per_node
                            for k, v in r["blacklisted"].items()},
            "exit_reasons": exits,
            "deopts": exits.get("deopt", 0),
            "methods": methods,
            "nodes": per_node,
        }
        if self.tier_events:
            out["tier_events"] = self.tier_events[:200]
        if self.trace is not None:
            out["trace"] = [
                {"node": n, "thread": t, "method": m, "pc": pc, "reason": r}
                for n, t, m, pc, r in self.trace[:200]
            ]
        return out
