"""Tiered-execution manager: promotion counters, code cache, quanta.

One :class:`JitManager` attaches to the runtime (same pattern as the
ft/locality/policy/race/obs managers); it installs one :class:`JitAgent`
per worker.  The agent owns the per-node code cache — ``MethodInfo``
objects are *shared* across worker JVMs (one ``RewriteResult``), so the
cache is keyed by ``id(method)`` per agent, and each agent compiles its
own specialization bound to its own JVM's hooks and heap.

Tier 0 is the unmodified interpreter.  Tier 1 is the codegen'd Python
function (:mod:`repro.jit.codegen`).  Promotion is by invocation count
(``jit_threshold``); compile failures blacklist the method forever
(``cache[id] = False``) and record the reason.

``run_quantum`` replaces ``JThread.run_quantum``'s interpret loop:

* pc at a compiled entry → run the compiled function, account its
  reason;
* pc elsewhere (interpreter tails end quanta at arbitrary pcs), method
  not compiled, or blacklisted → one interpreter step;
* ``R_BUDGET`` → finish the quantum with the interpreter so the
  overshoot boundary is bit-identical to tier 0;
* ``R_DEOPT``/``R_CALL`` → one interpreter step executes the pc the
  compiled code could not (budget permitting — otherwise the next
  quantum re-enters the stub with fresh budget).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from ..sim.node import StreamState
from .codegen import (
    N_REASONS,
    R_BUDGET,
    R_CALL,
    R_DEOPT,
    REASON_NAMES,
    compile_method,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..jvm.classfile import MethodInfo
    from ..runtime.javasplit import JavaSplitRuntime
    from ..runtime.worker import WorkerNode

_RUNNABLE = StreamState.RUNNABLE


class JitAgent:
    """Per-worker tier-1 compiler + quantum driver."""

    def __init__(self, manager: "JitManager", worker: "WorkerNode") -> None:
        self.manager = manager
        self.worker = worker
        self.jvm = worker.jvm
        self.interp = worker.jvm.interpreter
        self.threshold = manager.threshold
        # id(method) -> compiled fn, or False (blacklisted).
        self.cache: Dict[int, Any] = {}
        # id(method) -> MethodInfo: pins methods (and gives report names).
        self.methods: Dict[int, "MethodInfo"] = {}
        self.counters: Dict[int, int] = {}
        self.compiles = 0
        self.compile_failures: Dict[str, str] = {}  # method -> reason
        self.reasons = [0] * N_REASONS  # aggregated fn exit reasons
        self.interp_steps = 0
        self.jvm.jit = self
        self.interp.jit = self

    # -- promotion -----------------------------------------------------
    def note_invoke(self, method: "MethodInfo") -> None:
        """Interpreter callback on every non-native frame push."""
        key = id(method)
        if key in self.cache:
            return
        count = self.counters.get(key, 0) + 1
        if count >= self.threshold:
            self._compile(method)
        else:
            self.counters[key] = count

    def note_quantum(self, method: "MethodInfo") -> None:
        """Quantum-entry promotion: loops that never return still get
        hot (one tick per scheduler quantum spent in the method)."""
        key = id(method)
        if key in self.cache:
            return
        count = self.counters.get(key, 0) + 1
        if count >= self.threshold:
            self._compile(method)
        else:
            self.counters[key] = count

    def _compile(self, method: "MethodInfo") -> None:
        key = id(method)
        self.counters.pop(key, None)
        self.methods[key] = method
        try:
            fn = compile_method(method, self)
        except Exception as exc:  # noqa: BLE001 - any failure → tier 0
            self.cache[key] = False
            self.compile_failures[f"{method.klass}.{method.name}"] = (
                f"{type(exc).__name__}: {exc}")
            return
        self.cache[key] = fn
        self.compiles += 1
        self.manager._on_compiled(self.worker.node_id, method)

    # -- execution -----------------------------------------------------
    def run_quantum(self, thread, budget_ns: int):
        """Drop-in for JThread.run_quantum's interpret loop."""
        consumed = 0
        interp = self.interp
        cache = self.cache
        frames = thread.frames
        if frames:
            self.note_quantum(frames[-1].method)
        while consumed < budget_ns and thread.state is _RUNNABLE:
            frame = frames[-1]
            fn = cache.get(id(frame.method))
            if fn is None or fn is False or frame.pc not in fn.entries:
                consumed += interp.step(thread)
                self.interp_steps += 1
                continue
            used, reason = fn(thread, frame, budget_ns - consumed, 0)
            consumed += used
            fn.stats[reason] += 1
            self.reasons[reason] += 1
            if self.manager.trace is not None and reason >= R_CALL:
                self.manager.trace.append(
                    (self.worker.node_id, thread.name,
                     f"{frame.method.klass}.{frame.method.name}",
                     frame.pc, REASON_NAMES[reason]))
            if reason == R_BUDGET:
                # Interpreter tail: reproduce tier 0's exact overshoot.
                while consumed < budget_ns and thread.state is _RUNNABLE:
                    consumed += interp.step(thread)
                    self.interp_steps += 1
                break
            if reason == R_DEOPT or reason == R_CALL:
                # The interpreter must execute this pc (deopt site, or
                # an invoke whose callee is not compiled).
                if consumed < budget_ns and thread.state is _RUNNABLE:
                    consumed += interp.step(thread)
                    self.interp_steps += 1
        return consumed, thread.state

    # -- reporting -----------------------------------------------------
    def report(self) -> Dict[str, Any]:
        methods = {}
        for key, fn in self.cache.items():
            m = self.methods.get(key)
            name = f"{m.klass}.{m.name}" if m is not None else f"@{key:x}"
            if fn is False:
                continue
            methods[name] = {
                "tier": 1,
                "exits": {REASON_NAMES[i]: n
                          for i, n in enumerate(fn.stats) if n},
            }
        return {
            "node": self.worker.node_id,
            "compiled": self.compiles,
            "blacklisted": dict(self.compile_failures),
            "interp_steps": self.interp_steps,
            "exit_reasons": {REASON_NAMES[i]: n
                             for i, n in enumerate(self.reasons) if n},
            "methods": methods,
        }


class JitManager:
    """Runtime-level facade: attaches one agent per worker, aggregates."""

    def __init__(self, runtime: "JavaSplitRuntime") -> None:
        self.runtime = runtime
        self.threshold = runtime.config.jit_threshold
        self.agents: List[JitAgent] = []
        self.trace: Optional[List[tuple]] = (
            [] if runtime.config.jit_deopt_trace else None)

    def attach(self) -> None:
        for worker in self.runtime.workers:
            self.agents.append(JitAgent(self, worker))

    def on_worker_added(self, worker: "WorkerNode") -> None:
        self.agents.append(JitAgent(self, worker))

    # -- obs integration -----------------------------------------------
    def _metrics(self):
        obs = getattr(self.runtime, "obs", None)
        return None if obs is None else obs.metrics

    def _on_compiled(self, node_id: int, method: "MethodInfo") -> None:
        metrics = self._metrics()
        if metrics is not None:
            metrics.inc("jit.compiles", node_id)

    def finalize_metrics(self) -> None:
        """Publish cumulative jit.* counters (called from run())."""
        metrics = self._metrics()
        if metrics is None:
            return
        for agent in self.agents:
            node = agent.worker.node_id
            for i, n in enumerate(agent.reasons):
                if n:
                    metrics.inc(f"jit.exit.{REASON_NAMES[i]}", node, n)
            if agent.compile_failures:
                metrics.inc("jit.blacklisted", node,
                            len(agent.compile_failures))

    def report(self) -> Dict[str, Any]:
        per_node = [a.report() for a in self.agents]
        exits: Dict[str, int] = {}
        for rep in per_node:
            for name, n in rep["exit_reasons"].items():
                exits[name] = exits.get(name, 0) + n
        methods: Dict[str, Dict[str, Any]] = {}
        for rep in per_node:
            for name, info in rep["methods"].items():
                agg = methods.setdefault(name, {"tier": 1, "exits": {}})
                for r, n in info["exits"].items():
                    agg["exits"][r] = agg["exits"].get(r, 0) + n
        out: Dict[str, Any] = {
            "threshold": self.threshold,
            "compiled_methods": sorted(methods),
            "compiles": sum(r["compiled"] for r in per_node),
            "blacklisted": {k: v for r in per_node
                            for k, v in r["blacklisted"].items()},
            "exit_reasons": exits,
            "deopts": exits.get("deopt", 0),
            "methods": methods,
            "nodes": per_node,
        }
        if self.trace is not None:
            out["trace"] = [
                {"node": n, "thread": t, "method": m, "pc": pc, "reason": r}
                for n, t, m, pc, r in self.trace[:200]
            ]
        return out
