"""Timestamps: scalar versions and vector clocks.

MTS-HLRC's scalability refinement (§3.1) replaces per-coherency-unit
*vector* timestamps with *scalar* ones — a single integer per object —
at the cost of fencing lock transfers on diff propagation.  Both forms
live here:

* scalar timestamps are plain ints (the home's per-object version
  counter); their wire size is :data:`SCALAR_TIMESTAMP_BYTES`;
* :class:`VectorClock` is the sparse per-thread vector used by the
  baseline HLRC mode and by the per-thread interval bookkeeping.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

SCALAR_TIMESTAMP_BYTES = 4
# One vector entry = (thread/node id, interval counter).
VECTOR_ENTRY_BYTES = 8


class VectorClock:
    """A sparse vector clock: missing entries are zero."""

    __slots__ = ("_entries",)

    def __init__(self, entries: Dict[int, int] | None = None) -> None:
        self._entries: Dict[int, int] = dict(entries or {})

    def get(self, tid: int) -> int:
        return self._entries.get(tid, 0)

    def tick(self, tid: int) -> int:
        """Advance one component; returns the new value."""
        value = self._entries.get(tid, 0) + 1
        self._entries[tid] = value
        return value

    def set(self, tid: int, value: int) -> None:
        if value < self._entries.get(tid, 0):
            raise ValueError("vector clock components never decrease")
        self._entries[tid] = value

    def merge(self, other: "VectorClock") -> None:
        """Pointwise max, in place."""
        for tid, value in other._entries.items():
            if value > self._entries.get(tid, 0):
                self._entries[tid] = value

    def dominates(self, other: "VectorClock") -> bool:
        """True if self >= other pointwise."""
        return all(
            self._entries.get(tid, 0) >= value
            for tid, value in other._entries.items()
        )

    def copy(self) -> "VectorClock":
        return VectorClock(self._entries)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._entries.items()))

    def wire_size(self) -> int:
        """Bytes this clock occupies in a message (4B count + entries)."""
        return 4 + VECTOR_ENTRY_BYTES * len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        a = {k: v for k, v in self._entries.items() if v}
        b = {k: v for k, v in other._entries.items() if v}
        return a == b

    def __hash__(self):  # pragma: no cover - clocks are mutable
        raise TypeError("VectorClock is unhashable")

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}:{v}" for k, v in self.items())
        return f"VC({inner})"


def merge_all(clocks: Iterable[VectorClock]) -> VectorClock:
    out = VectorClock()
    for clock in clocks:
        out.merge(clock)
    return out
