"""Owner-managed distributed lock queues (§3.2).

Unlike the classic distributed-queue algorithm, JavaSplit keeps each
lock's request queue *at the current owner* and ships it together with
the ownership token.  The home node of the associated object acts only as
a request router (it forwards requests to whoever it believes owns the
lock).  Because the owner holds both the request queue and the wait
queue, Java's ``wait``/``notify``/``notifyAll`` are communication-free,
and the queue can be ordered by thread priority.

This module is pure data structure + policy; the message choreography
lives in :mod:`repro.dsm.protocol`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class LockRequest:
    """One queued acquire (or parked waiter)."""

    node: int
    thread_id: int
    priority: int = 5
    seq: int = 0              # FIFO tiebreak within a priority level
    restore_count: int = 1    # re-entrancy depth to restore on grant
    # Telemetry: causal span id of the acquire chain (None unless
    # RuntimeConfig.obs_spans; shipped as a 6th token-tuple element and
    # billed separately, so wire_size stays the bare-protocol figure).
    obs_span: Optional[int] = None

    def sort_key(self) -> Tuple[int, int]:
        """Ordering key: higher priority first, FIFO within."""
        return (-self.priority, self.seq)

    def wire_size(self) -> int:
        """Bytes this structure occupies in a token message."""
        return 4 + 8 + 1 + 4 + 2


class LockToken:
    """The migrating lock state: ownership + queues + notice snapshot.

    ``seen_notices`` remembers, *per receiving node*, which write
    notices this lock has already delivered there, so each transfer
    ships only the delta that node is missing.  (A single shared
    snapshot would be wrong: the token may carry a notice past node A to
    node B, and A still needs it on the token's next visit.)
    """

    __slots__ = ("gid", "queue", "waitq", "seen_notices", "_seq")

    def __init__(self, gid: int) -> None:
        self.gid = gid
        self.queue: List[LockRequest] = []
        self.waitq: List[LockRequest] = []
        # node_id -> {notice key -> version} delivered to that node
        self.seen_notices: Dict[int, Dict[Any, int]] = {}
        self._seq = itertools.count(1)

    # ------------------------------------------------------------------
    def enqueue(self, req: LockRequest) -> None:
        """Insert by priority (high first), FIFO within a priority.

        A request from a (node, thread) already queued or parked is
        dropped: normal operation never produces one, but failure
        recovery re-issues requests for blocked threads whose original
        record may in fact have survived on a live token."""
        if self.holds_request(req.node, req.thread_id):
            return
        req.seq = next(self._seq)
        self.queue.append(req)
        self.queue.sort(key=LockRequest.sort_key)

    def holds_request(self, node: int, thread_id: int) -> bool:
        """True if this (node, thread) is already queued or parked."""
        return any(
            r.node == node and r.thread_id == thread_id
            for r in itertools.chain(self.queue, self.waitq)
        )

    def pop_next(self) -> Optional[LockRequest]:
        """Remove and return the next grantee, or None."""
        if not self.queue:
            return None
        return self.queue.pop(0)

    def peek_next(self) -> Optional[LockRequest]:
        """The next grantee without removing it."""
        return self.queue[0] if self.queue else None

    # ------------------------------------------------------------------
    # wait/notify — entirely local to the owner (§3.2)
    # ------------------------------------------------------------------
    def park_waiter(self, req: LockRequest) -> None:
        """Move a thread into the wait queue (Object.wait)."""
        self.waitq = [
            r for r in self.waitq
            if not (r.node == req.node and r.thread_id == req.thread_id)
        ]
        self.waitq.append(req)

    def notify_one(self) -> bool:
        """Move the longest-waiting waiter to the request queue."""
        if not self.waitq:
            return False
        self.enqueue(self.waitq.pop(0))
        return True

    def notify_all(self) -> int:
        n = len(self.waitq)
        while self.waitq:
            self.enqueue(self.waitq.pop(0))
        return n

    # ------------------------------------------------------------------
    def wire_size(self) -> int:
        """Bytes the token occupies when shipped with ownership."""
        size = 8 + 4 + 4  # gid + queue lengths
        size += sum(r.wire_size() for r in self.queue)
        size += sum(r.wire_size() for r in self.waitq)
        size += sum(4 + 12 * len(m) for m in self.seen_notices.values())
        return size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LockToken(gid={self.gid:#x}, queue={len(self.queue)}, "
            f"waiters={len(self.waitq)})"
        )


class NodeLockState:
    """One node's view of one shared object's lock."""

    __slots__ = ("gid", "token", "holder_tid", "count", "transit",
                 "last_sent_to", "pending_grant")

    def __init__(self, gid: int) -> None:
        self.gid = gid
        self.token: Optional[LockToken] = None
        self.holder_tid: Optional[int] = None
        self.count = 0
        # True while the token is committed to another node (possibly
        # still waiting on the diff fence) — local acquires must queue.
        self.transit = False
        # Where the token went, for forwarding late LOCK_FWDs.
        self.last_sent_to: Optional[int] = None
        # (request, notices) staged during a scalar-mode diff fence.
        self.pending_grant: Optional[LockRequest] = None

    @property
    def held(self) -> bool:
        """True while some thread owns the lock on this node."""
        return self.holder_tid is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NodeLockState(gid={self.gid:#x}, token={self.token is not None},"
            f" holder={self.holder_tid}, count={self.count}, "
            f"transit={self.transit})"
        )
