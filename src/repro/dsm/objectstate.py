"""Per-object DSM headers.

The paper's rewriter augments the top of each instrumented inheritance
tree with synthetic fields — ``__javasplit__state``,
``__javasplit__version``, ``__javasplit__locking_status``,
``__javasplit__global_id`` (Figure 2).  Our heap objects carry the same
information in a ``header`` slot (see :mod:`repro.jvm.heap` for why this
is equivalent); the access-check fast path reads ``header.state``.

States:

* ``LOCAL`` — never escaped its creating thread/node; not registered
  with the DSM.  Checks fall through; locking uses the §4.4 counter.
* ``HOME`` — this replica *is* the master copy (the node is the
  object's home).  Always valid.
* ``VALID`` — cached copy consistent with the required version.
* ``INVALID`` — cached copy invalidated by a write notice (or a fresh
  stub); the next access faults and fetches from home.
"""

from __future__ import annotations

import enum
from typing import Any, Optional


class ObjState(enum.IntEnum):
    LOCAL = 0
    HOME = 1
    VALID = 2
    INVALID = 3


class DSMHeader:
    """DSM bookkeeping attached to every heap object in rewritten code."""

    __slots__ = (
        "state", "gid", "version", "twin", "lock_count", "lock_owner",
        "class_name", "race",
    )

    def __init__(self, class_name: str) -> None:
        self.state = ObjState.LOCAL
        self.gid = 0                     # 0 = no global id yet (local)
        self.version = 0                 # scalar timestamp of this replica
        self.twin: Any = None            # pre-write copy (multiple-writer)
        # §4.4 local-object lock counter + owning thread.
        self.lock_count = 0
        self.lock_owner: Any = None
        self.class_name = class_name
        # Race-detector state for LOCAL objects (repro.race); None unless
        # the detector is enabled and the object has been observed.
        self.race: Any = None

    @property
    def is_local(self) -> bool:
        return self.state == ObjState.LOCAL

    @property
    def is_shared(self) -> bool:
        return self.state != ObjState.LOCAL

    @property
    def readable(self) -> bool:
        return self.state in (ObjState.LOCAL, ObjState.HOME, ObjState.VALID)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DSMHeader({self.class_name}, {self.state.name}, gid={self.gid:#x},"
            f" v={self.version})"
        )


def attach_header(obj: Any) -> DSMHeader:
    """Attach (or return the existing) DSM header of a heap object."""
    hdr = obj.header
    if hdr is None:
        hdr = DSMHeader(obj.class_name)
        obj.header = hdr
    return hdr


def header_of(obj: Any) -> Optional[DSMHeader]:
    return obj.header
