"""The MTS-HLRC distributed shared memory (the paper's §3).

Object-granularity, home-based, multiple-writer lazy release consistency
with the two MTS-HLRC scalability refinements (scalar timestamps +
bounded per-CU write notices) and the owner-managed distributed lock
queues that make wait/notify communication-free.

``DsmConfig(timestamp_mode="vector", notice_mode="full")`` recovers the
baseline HLRC behaviour for the ablation benchmarks.
"""

from .diffs import apply_diff, compute_diff, make_twin
from .directory import ClassIdRegistry, GidAllocator, home_of
from .locks import LockRequest, LockToken, NodeLockState
from .objectstate import DSMHeader, ObjState, attach_header, header_of
from .protocol import (
    SCALAR,
    VECTOR,
    DsmConfig,
    DsmEngine,
    DsmStats,
    ProtocolError,
)
from .serialization import (
    ClassSpec,
    SerializationError,
    deserialize_any,
    kind_of_type,
    serialize_any,
)
from .timestamps import VectorClock
from .write_notices import MODE_BOUNDED, MODE_FULL, Notice, NoticeTable

#: Preset: the paper's protocol (default).
MTS_HLRC = DsmConfig(timestamp_mode=SCALAR, notice_mode=MODE_BOUNDED)
#: Preset: baseline home-based LRC with vector timestamps and
#: keep-every-notice storage, for the §3.1 ablations.
HLRC_BASELINE = DsmConfig(timestamp_mode=VECTOR, notice_mode=MODE_FULL)

__all__ = [
    "apply_diff", "compute_diff", "make_twin",
    "ClassIdRegistry", "GidAllocator", "home_of",
    "LockRequest", "LockToken", "NodeLockState",
    "DSMHeader", "ObjState", "attach_header", "header_of",
    "SCALAR", "VECTOR", "DsmConfig", "DsmEngine", "DsmStats",
    "ProtocolError",
    "ClassSpec", "SerializationError", "deserialize_any", "kind_of_type",
    "serialize_any",
    "VectorClock",
    "MODE_BOUNDED", "MODE_FULL", "Notice", "NoticeTable",
    "MTS_HLRC", "HLRC_BASELINE",
]
