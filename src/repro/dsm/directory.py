"""Global ids, home assignment, and class-id registry.

Each shared object gets a 64-bit global id when it is promoted from
local to shared (§2): the high bits carry the creating node (which
becomes the object's *home* — the node keeping the master copy), the low
bits a per-node counter.  Homes are therefore computable from the gid
with no directory lookups, which is what makes the protocol's "send it
to the home" steps cheap.

Class ids give reference serialization a compact wire form; they are
assigned deterministically from the sorted class-name list at rewrite
time, so every node agrees without negotiation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

NODE_SHIFT = 40
COUNTER_MASK = (1 << NODE_SHIFT) - 1
MAX_NODE_ID = (1 << 23) - 1  # gids stay positive in a signed 64-bit long


class GidAllocator:
    """Per-node allocator of 64-bit global ids."""

    def __init__(self, node_id: int) -> None:
        if not 0 <= node_id <= MAX_NODE_ID:
            raise ValueError(f"node id {node_id} out of range")
        self.node_id = node_id
        self._counter = 0

    def allocate(self) -> int:
        self._counter += 1
        if self._counter > COUNTER_MASK:  # pragma: no cover - 2^40 objects
            raise OverflowError("gid counter exhausted")
        return (self.node_id << NODE_SHIFT) | self._counter

    @property
    def allocated(self) -> int:
        return self._counter


def home_of(gid: int) -> int:
    """The home node encoded in a global id."""
    if gid <= 0:
        raise ValueError(f"not a valid gid: {gid}")
    return gid >> NODE_SHIFT


class HomeDirectory:
    """Per-gid home redirect entries for migrated coherency units.

    Plain ``home_of(gid)`` stays the common case (no lookup); a redirect
    entry exists only for units the locality subsystem re-homed.  Each
    entry carries a monotonically increasing migration epoch so redirect
    gossip arriving out of order can never roll a mapping backwards.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, Tuple[int, int]] = {}  # gid -> (home, epoch)

    def set(self, gid: int, home: int, epoch: int) -> bool:
        """Install a redirect; returns False for stale (old-epoch) news."""
        current = self._entries.get(gid)
        if current is not None and current[1] >= epoch:
            return False
        self._entries[gid] = (home, epoch)
        return True

    def get(self, gid: int) -> Optional[int]:
        entry = self._entries.get(gid)
        return entry[0] if entry is not None else None

    def epoch(self, gid: int) -> int:
        entry = self._entries.get(gid)
        return entry[1] if entry is not None else 0

    def entry(self, gid: int) -> Optional[Tuple[int, int]]:
        return self._entries.get(gid)

    def items(self):
        return self._entries.items()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, gid: int) -> bool:
        return gid in self._entries


class ClassIdRegistry:
    """Deterministic class-name ↔ id mapping shared by all nodes.

    Ids start at 1 (0 is the null-reference class id on the wire)."""

    def __init__(self, class_names: Iterable[str] = ()) -> None:
        self._by_name: Dict[str, int] = {}
        self._by_id: List[str] = [""]  # id 0 reserved
        for name in sorted(set(class_names)):
            self._register(name)

    def _register(self, name: str) -> int:
        if name in self._by_name:
            return self._by_name[name]
        cid = len(self._by_id)
        self._by_id.append(name)
        self._by_name[name] = cid
        return cid

    def class_id_for(self, class_name: str) -> int:
        try:
            return self._by_name[class_name]
        except KeyError:
            raise KeyError(
                f"class {class_name!r} not in the registry; arrays and "
                f"rewritten classes must be registered at rewrite time"
            ) from None

    def class_name_for(self, class_id: int) -> str:
        if not 1 <= class_id < len(self._by_id):
            raise KeyError(f"unknown class id {class_id}")
        return self._by_id[class_id]

    def __len__(self) -> int:
        return len(self._by_id) - 1

    def names(self) -> List[str]:
        return self._by_id[1:]
