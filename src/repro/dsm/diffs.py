"""Twin/diff machinery for the multiple-writer protocol.

Before the first write after (re)validation, the writer snapshots the
object (*twin*).  At interval end (a release), the diff between the live
object and its twin is encoded field-by-field — this is the generated
``DSM_diff`` of Figure 2 — shipped to the object's home, applied to the
master copy, and the twin is refreshed.  Diffs carry only changed slots,
so write traffic scales with modified data, not object size.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..jvm.heap import ArrayObj, Obj
from .serialization import (
    ClassSpec,
    Reader,
    Resolver,
    SerializationError,
    Writer,
    kind_of_type,
    read_value,
    write_value,
)


def make_twin(ref: Any) -> list:
    """Snapshot an object's mutable slots (shallow, like the paper's twin)."""
    if isinstance(ref, ArrayObj):
        return list(ref.data)
    return list(ref.fields)


def _slots_of(ref: Any) -> list:
    return ref.data if isinstance(ref, ArrayObj) else ref.fields


def _kinds_of(ref: Any, spec: Optional[ClassSpec]) -> Tuple[str, ...] | None:
    if isinstance(ref, ArrayObj):
        return None  # uniform kind
    if spec is None:
        raise SerializationError(f"no spec for {ref.class_name}")
    return spec.kinds


def compute_diff(
    ref: Any,
    twin: list,
    spec: Optional[ClassSpec],
    resolver: Resolver,
) -> Optional[bytes]:
    """Encode changed slots of ``ref`` relative to ``twin``.

    Returns ``None`` when nothing changed.  Encoding: 4-byte count, then
    per entry a 4-byte slot index and the value in its field kind.
    """
    slots = _slots_of(ref)
    if len(slots) != len(twin):
        # Arrays cannot be resized in Java; a length change means the twin
        # is stale (protocol bug), so fail loudly.
        raise SerializationError(
            f"twin length mismatch for {ref.class_name}: "
            f"{len(twin)} vs {len(slots)}"
        )
    if isinstance(ref, ArrayObj):
        kind = kind_of_type(ref.elem_type)
        changed = [
            i for i, (a, b) in enumerate(zip(slots, twin)) if a is not b and a != b
        ]
        kinds = [kind] * len(changed)
    else:
        spec_kinds = _kinds_of(ref, spec)
        assert spec_kinds is not None
        changed = []
        kinds = []
        for i, (a, b) in enumerate(zip(slots, twin)):
            if a is not b and a != b:
                changed.append(i)
                kinds.append(spec_kinds[i])
            elif a is not b and isinstance(a, (Obj, ArrayObj)):
                # equal-compare on refs is identity at the VM level; the
                # first branch already covers it, this is unreachable.
                pass  # pragma: no cover
    if not changed:
        return None
    w = Writer()
    w.u32(len(changed))
    for i, kind in zip(changed, kinds):
        w.u32(i)
        write_value(w, kind, slots[i], resolver)
    return w.getvalue()


def apply_diff(
    ref: Any,
    spec: Optional[ClassSpec],
    data: bytes,
    resolver: Resolver,
) -> int:
    """Apply an encoded diff to a master copy; returns #slots changed."""
    slots = _slots_of(ref)
    if isinstance(ref, ArrayObj):
        uniform: Optional[str] = kind_of_type(ref.elem_type)
        kinds: Tuple[str, ...] = ()
    else:
        uniform = None
        maybe_kinds = _kinds_of(ref, spec)
        assert maybe_kinds is not None
        kinds = maybe_kinds
    r = Reader(data)
    n = r.u32()
    for _ in range(n):
        idx = r.u32()
        kind = uniform if uniform is not None else kinds[idx]
        if idx >= len(slots):
            raise SerializationError(
                f"diff index {idx} out of range for {ref.class_name}"
            )
        slots[idx] = read_value(r, kind, resolver)
    return n


def diff_entry_count(data: bytes) -> int:
    """Number of slots in an encoded diff (stats helper)."""
    return Reader(data).u32()


# ---------------------------------------------------------------------------
# Array-region variants (§4.3 extension: one array, many coherency units)
# ---------------------------------------------------------------------------

def make_region_twin(arr: ArrayObj, lo: int, hi: int) -> list:
    return list(arr.data[lo:hi])


def compute_region_diff(
    arr: ArrayObj, lo: int, twin: list, resolver: Resolver
) -> Optional[bytes]:
    """Diff of one region against its twin; indices are region-local."""
    kind = kind_of_type(arr.elem_type)
    hi = lo + len(twin)
    slots = arr.data[lo:hi]
    changed = [
        i for i, (a, b) in enumerate(zip(slots, twin))
        if a is not b and a != b
    ]
    if not changed:
        return None
    w = Writer()
    w.u32(len(changed))
    for i in changed:
        w.u32(i)
        write_value(w, kind, slots[i], resolver)
    return w.getvalue()


def apply_region_diff(
    arr: ArrayObj, lo: int, data: bytes, resolver: Resolver
) -> int:
    kind = kind_of_type(arr.elem_type)
    r = Reader(data)
    n = r.u32()
    for _ in range(n):
        idx = lo + r.u32()
        if idx >= len(arr.data):
            raise SerializationError(
                f"region diff index {idx} out of range for {arr.class_name}"
            )
        arr.data[idx] = read_value(r, kind, resolver)
    return n


def serialize_region(arr: ArrayObj, lo: int, hi: int, resolver: Resolver) -> bytes:
    kind = kind_of_type(arr.elem_type)
    w = Writer()
    w.u32(hi - lo)
    for value in arr.data[lo:hi]:
        write_value(w, kind, value, resolver)
    return w.getvalue()


def deserialize_region(
    arr: ArrayObj, lo: int, data: bytes, resolver: Resolver
) -> None:
    kind = kind_of_type(arr.elem_type)
    r = Reader(data)
    n = r.u32()
    for i in range(n):
        arr.data[lo + i] = read_value(r, kind, resolver)
