"""Class-specific serialization (the generated ``DSM_serialize`` /
``DSM_deserialize`` methods of Figure 2).

The paper rejects Java's built-in serialization (deep copies, reflection
overhead) in favour of per-class generated methods that write exactly the
object's own fields, shipping references as 64-bit global ids.  Here a
:class:`ClassSpec` is the generated artefact: an ordered list of field
kinds matching the class's field layout; :func:`serialize_object` /
:func:`deserialize_into` interpret it.  Arrays serialize per element
kind.  Everything produces real ``bytes`` so network cost accounting is
exact.

Reference fields need the environment to map refs ↔ gids and to create
invalid stub replicas for not-yet-seen objects; that is the
:class:`Resolver` protocol, implemented by the DSM engine.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, List, Optional, Protocol, Sequence, Tuple

from ..jvm.heap import ArrayObj, Obj

# Field kinds
K_INT = "i"      # ints and booleans
K_DOUBLE = "d"
K_STR = "s"
K_REF = "r"

_S64 = struct.Struct(">q")
_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")

_INT_MIN = -(1 << 63)
_INT_MAX = (1 << 63) - 1


class SerializationError(ValueError):
    """Malformed or unserializable data."""
    pass


def kind_of_type(t: str) -> str:
    """Map a declared mini-JVM type to a serialization kind."""
    if t in ("int", "boolean"):
        return K_INT
    if t == "double":
        return K_DOUBLE
    if t == "str":
        return K_STR
    return K_REF  # classes and arrays


@dataclass(frozen=True)
class ClassSpec:
    """Generated serializer spec for one class: field kinds in layout
    order (inherited fields first, exactly like the runtime layout)."""

    class_name: str
    kinds: Tuple[str, ...]
    field_names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        bad = [k for k in self.kinds if k not in (K_INT, K_DOUBLE, K_STR, K_REF)]
        if bad:
            raise SerializationError(f"bad field kinds {bad}")


class Resolver(Protocol):
    """Environment hooks for reference (de)serialization."""

    def gid_for(self, ref: Any) -> int:
        """Global id of a heap object, promoting it to shared if needed."""
        ...

    def class_id_for(self, class_name: str) -> int: ...

    def class_name_for(self, class_id: int) -> str: ...

    def replica_for(self, gid: int, class_name: str) -> Any:
        """Local replica for a gid, creating an INVALID stub if unseen."""
        ...


class Writer:
    """Append-only big-endian byte writer."""
    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def s64(self, value: int) -> None:
        """Signed 64-bit integer."""
        if not (_INT_MIN <= value <= _INT_MAX):
            raise SerializationError(f"int {value} exceeds 64 bits")
        self._parts.append(_S64.pack(value))

    def u32(self, value: int) -> None:
        """Unsigned 32-bit integer."""
        self._parts.append(_U32.pack(value))

    def f64(self, value: float) -> None:
        """IEEE-754 double."""
        self._parts.append(_F64.pack(value))

    def string(self, value: Optional[str]) -> None:
        """Optional UTF-8 string (1-byte null flag + length + bytes)."""
        if value is None:
            self._parts.append(b"\x00")
        else:
            raw = value.encode("utf-8")
            self._parts.append(b"\x01")
            self.u32(len(raw))
            self._parts.append(raw)

    def raw(self, data: bytes) -> None:
        """Append raw bytes."""
        self._parts.append(data)

    def getvalue(self) -> bytes:
        """The accumulated bytes."""
        return b"".join(self._parts)


class Reader:
    """Sequential reader matching Writer's encodings."""
    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def s64(self) -> int:
        """Signed 64-bit integer."""
        v = _S64.unpack_from(self._data, self._pos)[0]
        self._pos += 8
        return v

    def u32(self) -> int:
        """Unsigned 32-bit integer."""
        v = _U32.unpack_from(self._data, self._pos)[0]
        self._pos += 4
        return v

    def f64(self) -> float:
        """IEEE-754 double."""
        v = _F64.unpack_from(self._data, self._pos)[0]
        self._pos += 8
        return v

    def string(self) -> Optional[str]:
        """Optional UTF-8 string (1-byte null flag + length + bytes)."""
        flag = self._data[self._pos]
        self._pos += 1
        if flag == 0:
            return None
        n = self.u32()
        raw = self._data[self._pos:self._pos + n]
        self._pos += n
        return raw.decode("utf-8")

    @property
    def exhausted(self) -> bool:
        """True once every byte has been consumed."""
        return self._pos >= len(self._data)


# ---------------------------------------------------------------------------
# Value-level encode/decode
# ---------------------------------------------------------------------------
def write_value(w: Writer, kind: str, value: Any, resolver: Resolver) -> None:
    """Encode one field value by kind (refs become gids)."""
    if kind == K_INT:
        w.s64(int(value))
    elif kind == K_DOUBLE:
        w.f64(float(value))
    elif kind == K_STR:
        w.string(value)
    else:  # K_REF
        if value is None:
            w.s64(0)
            w.u32(0)
        elif isinstance(value, str):
            # A str stored in an Object-typed slot: inline, tagged with
            # the reserved class id 0xFFFFFFFF.
            w.s64(-1)
            w.u32(0xFFFFFFFF)
            w.string(value)
        else:
            gid = resolver.gid_for(value)
            w.s64(gid)
            w.u32(resolver.class_id_for(value.class_name))


def read_value(r: Reader, kind: str, resolver: Resolver) -> Any:
    """Decode one field value by kind (gids become replicas)."""
    if kind == K_INT:
        return r.s64()
    if kind == K_DOUBLE:
        return r.f64()
    if kind == K_STR:
        return r.string()
    gid = r.s64()
    class_id = r.u32()
    if gid == 0:
        return None
    if gid == -1 and class_id == 0xFFFFFFFF:
        return r.string()
    return resolver.replica_for(gid, resolver.class_name_for(class_id))


# ---------------------------------------------------------------------------
# Whole-object serialization
# ---------------------------------------------------------------------------
def serialize_object(obj: Obj, spec: ClassSpec, resolver: Resolver) -> bytes:
    """Encode an instance's fields per its ClassSpec."""
    if len(obj.fields) != len(spec.kinds):
        raise SerializationError(
            f"{spec.class_name}: layout has {len(obj.fields)} fields but "
            f"spec has {len(spec.kinds)}"
        )
    w = Writer()
    for kind, value in zip(spec.kinds, obj.fields):
        write_value(w, kind, value, resolver)
    return w.getvalue()


def deserialize_into(obj: Obj, spec: ClassSpec, data: bytes, resolver: Resolver) -> None:
    """Decode into an existing instance, field by field."""
    r = Reader(data)
    fields = obj.fields
    for i, kind in enumerate(spec.kinds):
        fields[i] = read_value(r, kind, resolver)


def serialize_array(arr: ArrayObj, resolver: Resolver) -> bytes:
    """Encode an array: length then elements by kind."""
    kind = kind_of_type(arr.elem_type)
    w = Writer()
    w.u32(len(arr.data))
    for value in arr.data:
        write_value(w, kind, value, resolver)
    return w.getvalue()


def deserialize_array(arr: ArrayObj, data: bytes, resolver: Resolver) -> None:
    """Decode an array, replacing its element storage."""
    kind = kind_of_type(arr.elem_type)
    r = Reader(data)
    n = r.u32()
    arr.data = [read_value(r, kind, resolver) for _ in range(n)]


def serialize_any(ref: Any, spec: Optional[ClassSpec], resolver: Resolver) -> bytes:
    """Serialize either an instance (needs its spec) or an array."""
    if isinstance(ref, ArrayObj):
        return serialize_array(ref, resolver)
    if spec is None:
        raise SerializationError(f"no serializer spec for {ref.class_name}")
    return serialize_object(ref, spec, resolver)


def deserialize_any(ref: Any, spec: Optional[ClassSpec], data: bytes, resolver: Resolver) -> None:
    """Deserialize into an instance (via spec) or an array."""
    if isinstance(ref, ArrayObj):
        deserialize_array(ref, data, resolver)
    else:
        if spec is None:
            raise SerializationError(f"no serializer spec for {ref.class_name}")
        deserialize_into(ref, spec, data, resolver)
