"""Write-notice maintenance.

A write notice records "object G was modified; you need at least version
V (or the writes of interval I of writer W)".  HLRC keeps every notice a
node has ever seen, which grows without bound unless globally collected;
MTS-HLRC's refinement (§3.1) keeps only the most recent notice per
coherency unit, bounding storage by the number of live shared objects and
eliminating the global collection requirement.

:class:`NoticeTable` implements both policies behind one interface so the
A2 ablation can measure the storage difference on identical workloads:

* ``bounded`` (MTS-HLRC): latest notice per gid only.
* ``full`` (HLRC): additionally appends every notice to a log that is
  never collected (the paper's memory-overflow concern, made countable).

Timestamp forms (§3.1, A1 ablation):

* scalar — notice is ``(gid, version)``; 12 bytes on the wire.
* vector — notice is ``(gid, writer, interval)``; a node's requirement
  for an object is the per-writer max, so the stored form grows with the
  number of writers per object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

GID_BYTES = 8
SCALAR_NOTICE_BYTES = GID_BYTES + 4
VECTOR_NOTICE_BYTES = GID_BYTES + 4 + 4

MODE_BOUNDED = "bounded"
MODE_FULL = "full"


@dataclass(frozen=True)
class Notice:
    """One write notice (vector form carries writer; scalar sets it -1)."""

    gid: int
    version: int
    writer: int = -1

    @property
    def is_scalar(self) -> bool:
        """True for scalar-timestamp notices."""
        return self.writer < 0

    def wire_size(self) -> int:
        """Bytes this notice occupies in a message."""
        return SCALAR_NOTICE_BYTES if self.is_scalar else VECTOR_NOTICE_BYTES


class NoticeTable:
    """Per-node write-notice store."""

    def __init__(self, mode: str = MODE_BOUNDED) -> None:
        if mode not in (MODE_BOUNDED, MODE_FULL):
            raise ValueError(f"bad notice mode {mode!r}")
        self.mode = mode
        # gid -> scalar version (scalar notices)
        self._scalar: Dict[int, int] = {}
        # gid -> writer -> interval (vector notices)
        self._vector: Dict[int, Dict[int, int]] = {}
        # HLRC-style uncollected log (``full`` mode only)
        self._log: List[Notice] = []

    # ------------------------------------------------------------------
    def add(self, notice: Notice) -> bool:
        """Merge a notice; returns True if it advanced the table."""
        advanced = False
        if notice.is_scalar:
            if notice.version > self._scalar.get(notice.gid, 0):
                self._scalar[notice.gid] = notice.version
                advanced = True
        else:
            per_writer = self._vector.setdefault(notice.gid, {})
            if notice.version > per_writer.get(notice.writer, 0):
                per_writer[notice.writer] = notice.version
                advanced = True
        if self.mode == MODE_FULL:
            self._log.append(notice)
        return advanced

    def add_all(self, notices: Iterable[Notice]) -> List[Notice]:
        """Merge many; returns those that advanced the table (i.e. that
        require invalidations)."""
        return [n for n in notices if self.add(n)]

    # ------------------------------------------------------------------
    def required_scalar(self, gid: int) -> int:
        """Scalar version required for a coherency unit."""
        return self._scalar.get(gid, 0)

    def required_vector(self, gid: int) -> Dict[int, int]:
        """Per-writer intervals required for a coherency unit."""
        return dict(self._vector.get(gid, {}))

    # ------------------------------------------------------------------
    def delta_since(self, seen: Dict[int, int]) -> List[Notice]:
        """Scalar-mode delta: notices newer than the ``seen`` snapshot.

        ``seen`` is updated in place (it travels with the lock token, so
        the next releaser only sends what this acquirer hasn't got)."""
        delta = []
        for gid, version in self._scalar.items():
            if version > seen.get(gid, 0):
                delta.append(Notice(gid, version))
                seen[gid] = version
        return delta

    def delta_since_vector(
        self, seen: Dict[Tuple[int, int], int]
    ) -> List[Notice]:
        """Vector-mode delta keyed by (gid, writer)."""
        delta = []
        for gid, per_writer in self._vector.items():
            for writer, interval in per_writer.items():
                if interval > seen.get((gid, writer), 0):
                    delta.append(Notice(gid, interval, writer))
                    seen[(gid, writer)] = interval
        return delta

    # ------------------------------------------------------------------
    # A2 ablation instrumentation
    # ------------------------------------------------------------------
    @property
    def stored_notices(self) -> int:
        """How many notices this node currently stores (A2 metric)."""
        if self.mode == MODE_FULL:
            return len(self._log)
        return len(self._scalar) + sum(len(v) for v in self._vector.values())

    def storage_bytes(self) -> int:
        """Approximate bytes of stored notices (A2 metric)."""
        if self.mode == MODE_FULL:
            return sum(n.wire_size() for n in self._log)
        return (
            len(self._scalar) * SCALAR_NOTICE_BYTES
            + sum(len(v) for v in self._vector.values()) * VECTOR_NOTICE_BYTES
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NoticeTable({self.mode}, scalar={len(self._scalar)}, "
            f"vector={len(self._vector)}, log={len(self._log)})"
        )
