"""The MTS-HLRC protocol engine (§3).

One :class:`DsmEngine` per node.  It plays three roles at once:

1. **JVM hooks** — the DSM pseudo-instructions of rewritten bytecode
   land here: access checks (read/write miss handling), acquire/release
   (distributed monitors), static-holder resolution, allocation headers,
   thread spawn, wait/notify.
2. **Home node** — serves fetches from the master copies it hosts,
   applies incoming diffs (bumping per-object scalar versions), routes
   lock requests to current owners.
3. **Cache** — maintains replicas, twins, the write-notice table, and
   the per-node lock states.

Protocol summary (scalar-timestamp MTS-HLRC, the default):

* read miss  → FETCH_REQ to home → FETCH_REPLY(data, version); whole
  object granularity.
* first write after validation → twin; release → diffs batched per home
  → DIFF → DIFF_ACK(new versions) → write notices.
* lock transfer to a *remote* requester waits until *all* of this
  node's outstanding diffs are acknowledged (the scalar-timestamp fence
  of §3.1); the token then carries the notice **delta** relative to what
  it already delivered (bounded per-CU notices, §3.1), plus the request
  and wait queues (§3.2), so wait/notify stay communication-free.

The vector-timestamp baseline mode (``timestamp_mode="vector"``,
classic HLRC) skips the fence: notices name (writer, interval) pairs,
fetches carry the required vector and homes defer replies until the
required intervals have been applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..jvm.heap import ArrayObj, Obj
from ..jvm.interpreter import NO_VALUE
from ..jvm.jvm import JThread, JVM
from ..net.message import (HEADER_BYTES, M_LOC_BULK_REPLY, OBS_SPAN_KEY,
                           Message, estimate_size)
from ..net.message import (  # canonical registry lives with the codec
    M_CONSOLE, M_DIFF, M_DIFF_ACK, M_FETCH_REPLY, M_FETCH_REQ,
    M_FT_REDIFF, M_FT_REDIFF_ACK, M_LOCK_FWD, M_LOCK_REQ, M_OWNER_UPDATE,
    M_SPAWN, M_TOKEN)
from ..net.transport import Transport
from ..sim import cost_model as cm
from .diffs import (
    apply_diff,
    apply_region_diff,
    compute_diff,
    compute_region_diff,
    deserialize_region,
    make_region_twin,
    make_twin,
    serialize_region,
)
from .directory import ClassIdRegistry, GidAllocator, HomeDirectory, home_of
from .locks import LockRequest, LockToken, NodeLockState
from .objectstate import DSMHeader, ObjState, attach_header
from .serialization import ClassSpec, deserialize_any, serialize_any
from .write_notices import MODE_BOUNDED, Notice, NoticeTable

SCALAR = "scalar"
VECTOR = "vector"


class ProtocolError(RuntimeError):
    """A DSM invariant was violated (always a bug, never data)."""
    pass


@dataclass
class DsmConfig:
    """Protocol configuration: timestamp mode, notice storage, the local-lock fast path, and the array-region extension."""
    timestamp_mode: str = SCALAR          # 'scalar' (MTS-HLRC) | 'vector' (HLRC)
    notice_mode: str = MODE_BOUNDED       # 'bounded' | 'full' (A2 ablation)
    local_lock_opt: bool = True           # §4.4 lock-counter fast path
    # §4.3 extension: arrays longer than this many elements become
    # multiple coherency units of this region size (None = paper default,
    # one CU per array).
    array_region_elems: Optional[int] = None


@dataclass
class RegionInfo:
    """Per-node region bookkeeping for one region-granular array."""

    elems: int
    states: List[ObjState]
    versions: List[int]
    twins: Dict[int, list] = field(default_factory=dict)
    length_known: bool = True

    @property
    def n_regions(self) -> int:
        """Number of regions in the array."""
        return len(self.states)

    def bounds(self, region: int, total_len: int) -> Tuple[int, int]:
        """Element range [lo, hi) of one region."""
        lo = region * self.elems
        return lo, min(lo + self.elems, total_len)

    def region_of(self, index: int) -> int:
        """Region index containing an element index."""
        return index // self.elems


@dataclass
class DsmStats:
    """Per-node protocol counters, aggregated into run reports."""
    fetches: int = 0
    fetch_bytes: int = 0
    diffs_sent: int = 0
    diff_bytes: int = 0
    lock_requests: int = 0
    token_transfers: int = 0
    invalidations: int = 0
    promotions: int = 0
    local_acquires: int = 0
    shared_acquires: int = 0
    fence_waits: int = 0
    deferred_fetches: int = 0
    region_fetches: int = 0
    # ----- adaptive locality (src/repro/locality) ---------------------
    migrations_out: int = 0     # units this home granted away
    migrations_in: int = 0      # units this node became home of
    fwd_diffs: int = 0          # diff entries forwarded by an old home
    home_forwards: int = 0      # fetch/lock/owner messages re-routed
    prefetch_bulk: int = 0      # bulk-fetch messages issued
    prefetch_units: int = 0     # units installed from bulk replies
    prefetch_hits: int = 0      # demand fetches satisfied by a prefetch
    agg_frames: int = 0         # aggregate frames sent
    agg_subframes: int = 0      # logical messages carried inside them
    # ----- adaptive coherence policies (src/repro/policy) -------------
    pol_promotions: int = 0     # units promoted to a policy (home side)
    pol_demotions: int = 0      # units demoted back to invalidate
    pol_pushes: int = 0         # write-update unit copies pushed
    pol_push_installs: int = 0  # pushed copies installed by a reader
    pol_bcasts: int = 0         # read-mostly broadcast copies sent
    pol_bcast_installs: int = 0  # broadcast copies installed
    pol_grants: int = 0         # migratory ownership grants sent
    pol_grant_installs: int = 0  # migratory grants installed


@dataclass
class ThreadDsm:
    """Per-thread DSM state: the local interval counter."""

    interval: int = 0


class DsmEngine:
    """Per-node DSM: JVM hooks + protocol message handlers."""

    def __init__(
        self,
        jvm: JVM,
        transport: Transport,
        specs: Dict[str, ClassSpec],
        class_registry: ClassIdRegistry,
        config: Optional[DsmConfig] = None,
        choose_spawn_node: Optional[Callable[[], int]] = None,
        static_gids: Optional[Dict[str, Tuple[int, str]]] = None,
        console: Optional[List[str]] = None,
        master_node: int = 0,
    ) -> None:
        self.jvm = jvm
        self.node_id = transport.node_id
        self.transport = transport
        self.engine = jvm.node.engine
        self.cost_model = jvm.cost_model
        self.specs = specs
        self.registry = class_registry
        self.config = config or DsmConfig()
        self.choose_spawn_node = choose_spawn_node or (lambda: self.node_id)
        # class_name -> (gid, holder_class_name) for C_static holders
        self.static_gids = static_gids or {}
        self.console = console if console is not None else []
        self.master_node = master_node
        self.stats = DsmStats()

        # Optional runtime callback: a shipped thread began on this node
        # (used by the load balancer to retire in-flight placements).
        self.on_spawn_arrival: Optional[Callable[[int], None]] = None

        self.gids = GidAllocator(self.node_id)
        self.cache: Dict[int, Any] = {}
        # §4.3 extension: gid -> RegionInfo for region-granular arrays.
        self._regions: Dict[int, "RegionInfo"] = {}
        self.notice_table = NoticeTable(self.config.notice_mode)
        self.lock_states: Dict[int, NodeLockState] = {}
        self.lock_owner: Dict[int, int] = {}     # home role: gid -> owner node
        # keyed (gid, region); region None = whole object
        self._fetch_waiters: Dict[Tuple[int, Optional[int]], List[JThread]] = {}
        self._dirty: Set[int] = set()            # gids of twinned replicas
        self._dirty_home: Set[int] = set()       # gids of home-written masters
        self._threads: Dict[int, JThread] = {}
        # Node-level flush sequence: tags diffs/notices in vector mode (a
        # per-node monotonic interval id shared by all local threads).
        self._flush_seq = 0
        # Scalar-mode fence: outstanding diff-flush acks + deferred sends.
        self._outstanding_acks = 0
        self._fence_queue: List[Callable[[], None]] = []
        self._next_ack_id = 0
        # Vector mode: home-side applied intervals + deferred fetches,
        # cache-side seen intervals.
        self._applied: Dict[int, Dict[int, int]] = {}
        self._deferred_fetch: Dict[int, List[Message]] = {}
        self._replica_vc: Dict[int, Dict[int, int]] = {}
        # ------------------------------------------------------------------
        # Fault tolerance (src/repro/ft).  All of this is inert unless an
        # FtNodeAgent is attached as ``self.ft``:
        #   _home_map        re-homing indirection: origin node -> adoptive
        #                    home (gids name their origin in the high bits;
        #                    after recovery the buddy serves them)
        #   _pending_diffs   ack_id -> (home, payload, size) of unacked
        #                    flushes, so recovery can redirect them
        #   _blocked_on      tid -> (gid, restore) while a thread is blocked
        #                    on a lock grant, so recovery can re-issue lost
        #                    requests and stale re-grants can be detected
        #   _ft_token_freeze recovery is scanning for live tokens; no token
        #                    may leave this node until it finishes
        self.ft: Optional[Any] = None
        # ------------------------------------------------------------------
        # Adaptive locality (src/repro/locality).  Inert unless a
        # LocalityAgent is attached as ``self.locality``:
        #   _loc_dir        per-gid home redirects for migrated units
        #                   (epoch-guarded; consulted by home_node)
        #   _fetch_targets  where each in-flight fetch was actually sent
        #                   (a migrated unit's fetch may not target
        #                   home_of(gid)), for failure-recovery reissue
        self.locality: Optional[Any] = None
        # ------------------------------------------------------------------
        # Data-race detection (src/repro/race).  Inert unless a RaceAgent
        # is attached as ``self.race``: the hooks below feed it the
        # happens-before edges (lock grant/release, spawn, promote) and
        # interval boundaries; access events come from the interpreter.
        self.race: Optional[Any] = None
        # ------------------------------------------------------------------
        # Adaptive coherence policies (src/repro/policy).  Inert unless
        # a PolicyAgent is attached as ``self.policy``: the hooks below
        # feed its sharing-pattern classifier (fetch serves, diff
        # applies, home advances) and carry its per-unit protocol
        # actions (update pushes, read-mostly broadcasts, migratory
        # grants riding diff acks and lock tokens).
        self.policy: Optional[Any] = None
        # ------------------------------------------------------------------
        # Telemetry (src/repro/obs).  Inert unless an ObsAgent is
        # attached as ``self.obs``: the hooks below mark transaction
        # boundaries (fetch/flush/lock spans), thread stalls, and — only
        # with spans enabled — piggyback span ids on protocol payloads.
        self.obs: Optional[Any] = None
        self._loc_dir = HomeDirectory()
        self._fetch_targets: Dict[Tuple[int, Optional[int]], int] = {}
        self._home_map: Dict[int, int] = {}
        self._pending_diffs: Dict[int, Tuple[int, Dict[str, Any], int]] = {}
        self._blocked_on: Dict[int, Tuple[int, int]] = {}
        self._ft_token_freeze = False
        self._ft_frozen_sends: List[Callable[[], None]] = []

        for mtype, handler in (
            (M_FETCH_REQ, self._on_fetch_req),
            (M_FETCH_REPLY, self._on_fetch_reply),
            (M_DIFF, self._on_diff),
            (M_DIFF_ACK, self._on_diff_ack),
            (M_LOCK_REQ, self._on_lock_req),
            (M_LOCK_FWD, self._on_lock_fwd),
            (M_TOKEN, self._on_token),
            (M_OWNER_UPDATE, self._on_owner_update),
            (M_SPAWN, self._on_spawn),
            (M_CONSOLE, self._on_console),
            (M_FT_REDIFF, self._on_ft_rediff),
            (M_FT_REDIFF_ACK, self._on_ft_rediff_ack),
        ):
            transport.on(mtype, handler)

    # ==================================================================
    # Home-table indirection (fault tolerance)
    # ==================================================================
    def home_node(self, gid: int) -> int:
        """Current home of a gid: its origin node unless the locality
        subsystem migrated the unit, or the home died and its coherency
        units were adopted by a buddy (the two compose: a migrated
        unit's new home can itself die and be re-homed)."""
        if self.locality is not None:
            redirected = self._loc_dir.get(gid)
            if redirected is not None:
                return self._home_map.get(redirected, redirected)
        home = home_of(gid)
        return self._home_map.get(home, home)

    def set_gid_home(self, gid: int, home: int, epoch: int) -> bool:
        """Install a per-gid home redirect (locality migration).  Epoch-
        guarded: stale news never rolls a newer mapping back."""
        return self._loc_dir.set(gid, home, epoch)

    # ==================================================================
    # Setup helpers
    # ==================================================================
    def install_static_holder(self, class_name: str, gid: int, holder_class: str) -> Any:
        """Create a C_static master copy on this (the master) node."""
        rtc = self.jvm.lookup(holder_class)
        obj = Obj(rtc)
        hdr = attach_header(obj)
        hdr.gid = gid
        hdr.state = ObjState.HOME
        hdr.version = 1
        self.cache[gid] = obj
        self.lock_owner[gid] = self.node_id
        st = self._lock_state(gid)
        st.token = LockToken(gid)
        return obj

    def reserve_gids(self, count: int) -> None:
        """Skip gids that were pre-assigned (static holders on master)."""
        for _ in range(count):
            self.gids.allocate()

    def thread_dsm(self, thread: JThread) -> ThreadDsm:
        """Per-thread DSM state, created on first use."""
        if thread.dsm is None:
            thread.dsm = ThreadDsm()
        return thread.dsm

    # ==================================================================
    # Resolver protocol (serialization callbacks)
    # ==================================================================
    def gid_for(self, ref: Any) -> int:
        """Resolver hook: global id of a ref, promoting if needed."""
        gid = self.promote(ref)
        if self.ft is not None:
            # Lazy-replication publish point: the ref is about to cross
            # the wire, so a survivor may come to depend on it.
            self.ft.on_ref_serialized(gid)
        return gid

    def class_id_for(self, class_name: str) -> int:
        """Resolver hook: wire id for a class name."""
        return self.registry.class_id_for(class_name)

    def class_name_for(self, class_id: int) -> str:
        """Resolver hook: class name for a wire id."""
        return self.registry.class_name_for(class_id)

    def replica_for(self, gid: int, class_name: str) -> Any:
        """Resolver hook: local replica for a gid (INVALID stub if new)."""
        obj = self.cache.get(gid)
        if obj is not None:
            return obj
        if self.home_node(gid) == self.node_id:
            raise ProtocolError(
                f"node {self.node_id} is home of gid {gid:#x} but has no "
                f"master copy"
            )
        if class_name.endswith("[]"):
            obj = ArrayObj(class_name[:-2], 0)
        else:
            obj = Obj(self.jvm.lookup(class_name))
        hdr = attach_header(obj)
        hdr.gid = gid
        hdr.state = ObjState.INVALID
        hdr.version = 0
        self.cache[gid] = obj
        return obj

    # ==================================================================
    # Promotion: local -> shared (§2)
    # ==================================================================
    def promote(self, ref: Any) -> int:
        """Local -> shared: assign a gid; this node becomes the home."""
        hdr = attach_header(ref)
        if hdr.gid:
            return hdr.gid
        gid = self.gids.allocate()
        hdr.gid = gid
        hdr.state = ObjState.HOME
        hdr.version = 1
        self.cache[gid] = ref
        region_elems = self.config.array_region_elems
        if (
            region_elems is not None
            and isinstance(ref, ArrayObj)
            and len(ref.data) > region_elems
        ):
            n = (len(ref.data) + region_elems - 1) // region_elems
            self._regions[gid] = RegionInfo(
                elems=region_elems,
                states=[ObjState.HOME] * n,
                versions=[1] * n,
            )
        self.lock_owner[gid] = self.node_id
        st = self._lock_state(gid)
        st.token = LockToken(gid)
        # Carry over a §4.4 local-lock counter held at promotion time.
        if hdr.lock_count > 0 and hdr.lock_owner is not None:
            st.holder_tid = hdr.lock_owner.tid
            st.count = hdr.lock_count
        if self.race is not None:
            # Migrate header-local detector metadata into the home store
            # (must see hdr.race before it is cleared).
            self.race.on_promote(ref, hdr, gid)
        hdr.lock_count = 0
        hdr.lock_owner = None
        self.stats.promotions += 1
        if self.ft is not None:
            self.ft.on_promote(gid)
        return gid

    # ==================================================================
    # JVM hooks: allocation / threads
    # ==================================================================
    def on_new(self, obj: Any) -> None:
        """Allocation hook: attach a LOCAL DSM header."""
        attach_header(obj)  # starts LOCAL

    def on_thread_started(self, thread: JThread) -> None:
        """Track live threads for lock-grant completion."""
        self._threads[thread.tid] = thread
        self.thread_dsm(thread)

    def on_thread_finished(self, thread: JThread) -> None:
        """Drop finished threads from the live-thread map."""
        self._threads.pop(thread.tid, None)
        if self.ft is not None:
            tobj = thread.thread_obj
            if tobj is not None and tobj.header is not None \
                    and tobj.header.gid:
                self.ft.on_thread_done(tobj.header.gid)

    def _thread(self, tid: int) -> JThread:
        try:
            return self._threads[tid]
        except KeyError:
            raise ProtocolError(
                f"node {self.node_id}: no live thread {tid}"
            ) from None

    # ==================================================================
    # JVM hooks: access checks
    # ==================================================================
    def read_check(self, thread: JThread, ref: Any, index: Any = None) -> Tuple[bool, int]:
        """Hook behind DSM_READCHECK: pass through or fetch-and-block."""
        hdr: DSMHeader = ref.header
        if hdr is None:
            # Object allocated outside hook-aware paths (defensive).
            attach_header(ref)
            return True, 0
        if hdr.gid and hdr.gid in self._regions:
            return self._region_read_check(thread, ref, hdr, index)
        if hdr.state != ObjState.INVALID:
            return True, 0
        self._start_fetch(thread, hdr)
        return False, self.cost_model[cm.PROTO_HANDLER_NS]

    def _region_read_check(self, thread, ref, hdr, index) -> Tuple[bool, int]:
        reg = self._regions[hdr.gid]
        if index is None:
            # ARRAYLENGTH (or a non-indexed touch): needs the true length.
            if reg.length_known:
                return True, 0
            region = 0
        else:
            region = reg.region_of(index)
            if not 0 <= region < reg.n_regions:
                return True, 0  # out of bounds: let the access raise
            if reg.states[region] != ObjState.INVALID:
                return True, 0
        self._start_fetch(thread, hdr, region)
        return False, self.cost_model[cm.PROTO_HANDLER_NS]

    def write_check(self, thread: JThread, ref: Any, value: Any, index: Any = None) -> Tuple[bool, int]:
        """Hook behind DSM_WRITECHECK: twin, mark dirty, or fetch."""
        hdr: DSMHeader = ref.header
        if hdr is None:
            attach_header(ref)
            return True, 0
        state = hdr.state
        if state == ObjState.LOCAL:
            return True, 0
        if hdr.gid and hdr.gid in self._regions:
            return self._region_write_check(thread, ref, hdr, index)
        if state == ObjState.INVALID:
            self._start_fetch(thread, hdr)
            return False, self.cost_model[cm.PROTO_HANDLER_NS]
        if state == ObjState.HOME:
            self._dirty_home.add(hdr.gid)
            return True, 0
        # VALID cached copy: twin before first write (multiple-writer).
        if hdr.twin is None:
            hdr.twin = make_twin(ref)
            self._dirty.add(hdr.gid)
        return True, 0

    def _region_write_check(self, thread, ref, hdr, index) -> Tuple[bool, int]:
        reg = self._regions[hdr.gid]
        if index is None:
            return True, 0  # defensive: non-indexed write cannot occur
        region = reg.region_of(index)
        if not 0 <= region < reg.n_regions:
            return True, 0  # out of bounds: let the access raise
        state = reg.states[region]
        if state == ObjState.HOME:
            self._dirty_home.add((hdr.gid, region))
            return True, 0
        if state == ObjState.INVALID:
            self._start_fetch(thread, hdr, region)
            return False, self.cost_model[cm.PROTO_HANDLER_NS]
        if region not in reg.twins:
            lo, hi = reg.bounds(region, len(ref.data))
            reg.twins[region] = make_region_twin(ref, lo, hi)
            self._dirty.add((hdr.gid, region))
        return True, 0

    def _start_fetch(self, thread: JThread, hdr: DSMHeader,
                     region: Optional[int] = None) -> None:
        gid = hdr.gid
        waiters = self._fetch_waiters.setdefault((gid, region), [])
        waiters.append(thread)
        if self.obs is not None:
            self.obs.on_fetch_block(thread, gid, region)
        if len(waiters) > 1:
            return  # request already in flight
        key = gid if region is None else (gid, region)
        payload: Dict[str, Any] = {"gid": gid, "region": region}
        if self.config.timestamp_mode == VECTOR:
            payload["required"] = self.notice_table.required_vector(key)
        else:
            payload["required"] = self.notice_table.required_scalar(key)
        if self.locality is not None:
            self._fetch_targets[(gid, region)] = self.home_node(gid)
            if self.locality.fetch_covered(gid, region):
                # A prefetch for this unit is already in flight; its bulk
                # reply will install the data and wake the waiters.
                if self.obs is not None:
                    self.obs.on_fetch_start(gid, region, None)
                return
        self.stats.fetches += 1
        if region is not None:
            self.stats.region_fetches += 1
        if self.obs is not None:
            self.obs.on_fetch_start(gid, region, payload)
        self.transport.send(self.home_node(gid), M_FETCH_REQ, payload)

    # ==================================================================
    # JVM hooks: synchronization
    # ==================================================================
    def acquire(self, thread: JThread, ref: Any) -> Tuple[bool, int]:
        """Hook behind DSM_ACQUIRE: counter fast path, local grant, queueing, or a lock request to the home node."""
        hdr: DSMHeader = ref.header
        if hdr.is_local:
            if self.config.local_lock_opt:
                # §4.4 fast path: a counter, cheaper than original Java.
                if hdr.lock_owner is None or hdr.lock_owner is thread:
                    hdr.lock_owner = thread
                    hdr.lock_count += 1
                    self.stats.local_acquires += 1
                    if self.race is not None:
                        self.race.on_local_acquired(thread, hdr)
                    return True, self.cost_model[cm.LOCAL_LOCK_OP]
            # Second thread contends: the object escapes.
            self.promote(ref)
        gid = hdr.gid
        st = self._lock_state(gid)
        cost = self.cost_model[cm.SHARED_ACQUIRE]
        self.stats.shared_acquires += 1
        if st.token is not None and not st.transit:
            if st.holder_tid is None:
                st.holder_tid = thread.tid
                st.count = 1
                if self.race is not None:
                    self.race.on_lock_granted(thread.tid, gid)
                return True, cost
            if st.holder_tid == thread.tid:
                st.count += 1
                return True, cost
            req = LockRequest(self.node_id, thread.tid, thread.priority)
            if self.obs is not None:
                req.obs_span = self.obs.on_lock_block(thread, gid)
            st.token.enqueue(req)
            self._blocked_on[thread.tid] = (gid, 1)
            return False, cost
        if st.token is not None and st.transit:
            # Token committed to a remote node but still fenced here: the
            # request joins the queue and travels with the token.
            req = LockRequest(self.node_id, thread.tid, thread.priority)
            if self.obs is not None:
                req.obs_span = self.obs.on_lock_block(thread, gid)
            st.token.enqueue(req)
            self._blocked_on[thread.tid] = (gid, 1)
            return False, cost
        # No token here: route through the home node.
        self.stats.lock_requests += 1
        self._blocked_on[thread.tid] = (gid, 1)
        payload = {
            "gid": gid,
            "node": self.node_id,
            "tid": thread.tid,
            "priority": thread.priority,
            "restore": 1,
        }
        if self.obs is not None:
            sid = self.obs.on_lock_block(thread, gid)
            if sid is not None:
                payload[OBS_SPAN_KEY] = sid
        self.transport.send(self.home_node(gid), M_LOCK_REQ, payload)
        return False, cost

    def release(self, thread: JThread, ref: Any) -> int:
        """Hook behind DSM_RELEASE: end the interval (flush diffs) and hand the token to the next requester."""
        hdr: DSMHeader = ref.header
        if hdr.is_local:
            if hdr.lock_owner is not thread or hdr.lock_count <= 0:
                raise ProtocolError("release of unheld local lock")
            hdr.lock_count -= 1
            if hdr.lock_count == 0:
                hdr.lock_owner = None
                if self.race is not None:
                    self.race.on_local_released(thread, hdr)
            return self.cost_model[cm.LOCAL_LOCK_OP]
        gid = hdr.gid
        st = self._lock_state(gid)
        if st.holder_tid != thread.tid:
            raise ProtocolError(
                f"monitorexit by non-owner (gid {gid:#x}, thread "
                f"{thread.tid}, holder {st.holder_tid})"
            )
        cost = self.cost_model[cm.SHARED_RELEASE]
        st.count -= 1
        if st.count > 0:
            return cost
        st.holder_tid = None
        if self.race is not None:
            self.race.on_lock_released(thread.tid, gid)
        self.end_interval(thread)
        self._service_queue(st)
        return cost

    # ------------------------------------------------------------------
    # wait / notify (invoked through rewritten natives)
    # ------------------------------------------------------------------
    def dsm_wait(self, thread: JThread, ref: Any) -> None:
        """Object.wait over the token's wait queue (communication-free, §3.2)."""
        hdr: DSMHeader = ref.header
        if hdr.is_local:
            # wait() implies another thread will notify: the object
            # escapes its creating thread now.
            if hdr.lock_owner is not thread or hdr.lock_count <= 0:
                raise ProtocolError("wait() by non-owner")
            self.promote(ref)
        gid = hdr.gid
        st = self._lock_state(gid)
        if st.holder_tid != thread.tid or st.token is None:
            raise ProtocolError("wait() by non-owner")
        saved = st.count
        st.holder_tid = None
        st.count = 0
        req = LockRequest(self.node_id, thread.tid, thread.priority,
                          restore_count=saved)
        if self.obs is not None:
            req.obs_span = self.obs.on_lock_block(thread, gid, kind="wait")
        st.token.park_waiter(req)
        self._blocked_on[thread.tid] = (gid, saved)
        if self.race is not None:
            self.race.on_lock_released(thread.tid, gid)
        # wait() is a release point.
        self.end_interval(thread)
        self._service_queue(st)

    def dsm_notify(self, thread: JThread, ref: Any, all_: bool) -> None:
        """Object.notify/notifyAll over the token's wait queue."""
        hdr: DSMHeader = ref.header
        if hdr.is_local:
            # Owner notifying a local object: no one can be waiting on a
            # never-escaped object, so this is a no-op.
            if hdr.lock_owner is not thread or hdr.lock_count <= 0:
                raise ProtocolError("notify() by non-owner")
            return
        st = self._lock_state(hdr.gid)
        if st.holder_tid != thread.tid or st.token is None:
            raise ProtocolError("notify() by non-owner")
        if all_:
            st.token.notify_all()
        else:
            st.token.notify_one()

    # ------------------------------------------------------------------
    # Thread spawn (rewritten Thread.start)
    # ------------------------------------------------------------------
    def spawn(self, thread: JThread, tobj: Any, priority: int) -> int:
        """Ship a Thread object to the node chosen by the load balancer."""
        gid = self.promote(tobj)
        self._check_and_set_started(thread, tobj)
        target = self.choose_spawn_node()
        payload = {
            "gid": gid,
            "class_name": tobj.class_name,
            "priority": priority,
        }
        if self.ft is not None:
            self.ft.on_spawn(gid, tobj.class_name, priority, target)
        if self.race is not None:
            # Fork edge: ship the parent's clock to the child.
            payload["race"] = self.race.on_spawn_ship(thread, gid)
            if target == self.node_id:
                self.race.note_spawn_vc(gid, payload["race"])
        if target == self.node_id:
            self._local_spawn(gid, tobj.class_name, priority)
        else:
            # Spawning publishes the Thread object's current state: flush
            # it so the remote node's fetch observes the constructor's
            # writes (the spawn itself is a release-like event).
            self.end_interval(thread)
            self.transport.send(target, M_SPAWN, payload)
        return target

    def _check_and_set_started(self, thread: JThread, tobj: Any) -> None:
        """Double-start detection on the rewritten Thread's ``started``
        flag.  The starter is almost always the creator (home), so the
        flag is locally readable; for the exotic case of starting a
        stale remote replica the check is best-effort."""
        from ..jvm.errors import JavaRuntimeError

        hdr: DSMHeader = tobj.header
        try:
            idx = self.jvm.field_index("javasplit.Thread", "started")
        except Exception:  # pragma: no cover - Thread class always linked
            return
        if hdr.state != ObjState.INVALID and tobj.fields[idx]:
            raise JavaRuntimeError("thread already started")
        ok, _ = self.write_check(thread, tobj, 1)
        if ok:
            tobj.fields[idx] = 1

    def _local_spawn(self, gid: int, class_name: str, priority: int) -> None:
        obj = self.replica_for(gid, class_name)
        run = obj.rtclass.method("__runWrapper")
        from ..jvm.frame import Frame
        jt = JThread(self.jvm, Frame(run, [obj]), thread_obj=obj,
                     priority=priority,
                     name=f"{class_name}-{gid & 0xFFFF:x}")
        self.jvm.live_jthreads[id(obj)] = jt
        if self.race is not None:
            self.race.on_thread_begin(jt, gid)
        self.jvm.call_function(jt)
        if self.ft is not None:
            self.ft.on_thread_start(gid)
        if self.on_spawn_arrival is not None:
            self.on_spawn_arrival(self.node_id)

    def _on_spawn(self, msg: Message) -> None:
        p = msg.payload
        if self.race is not None:
            self.race.note_spawn_vc(p["gid"], p.get("race"))
        self._local_spawn(p["gid"], p["class_name"], p["priority"])

    # ------------------------------------------------------------------
    # Console forwarding (rewritten Sys.print — §4.1 wrapped native I/O)
    # ------------------------------------------------------------------
    def print_line(self, text: str) -> None:
        """Console output wrapper: forwards lines to the master node."""
        self.jvm.println(text)
        if self.node_id == self.master_node:
            self.console.append(text)
        else:
            self.transport.send(self.master_node, M_CONSOLE, {"text": text})

    def _on_console(self, msg: Message) -> None:
        self.console.append(msg.payload["text"])

    # ------------------------------------------------------------------
    # Static holders (§4.2)
    # ------------------------------------------------------------------
    def static_ref(self, thread: JThread, class_name: str) -> Tuple[Any, int]:
        """Hook behind DSM_STATICREF: the node's cached C_static replica."""
        entry = self.static_gids.get(class_name)
        if entry is None:
            raise ProtocolError(f"no static holder registered for {class_name}")
        gid, holder_class = entry
        obj = self.cache.get(gid)
        if obj is None:
            obj = self.replica_for(gid, holder_class)
        return obj, 0

    # ==================================================================
    # Interval end: diff flush (multiple-writer LRC)
    # ==================================================================
    def end_interval(self, thread: JThread) -> None:
        """Release point: flush this node's pending diffs (§3)."""
        tds = self.thread_dsm(thread)
        tds.interval += 1
        self._flush(list(self._dirty), flush_home=True)
        if self.race is not None:
            # Ship buffered access events not carried by this interval's
            # diffs (the agent piggybacked on same-destination M_DIFFs).
            self.race.on_end_interval(thread)

    def _flush(self, gids, flush_home: bool) -> None:
        """Flush pending writes: diffs of the given cached replicas to
        their homes, plus (optionally) version bumps of home-written
        masters.  Tagged with a node-level monotonic interval."""
        self._flush_seq += 1
        interval = self._flush_seq
        by_home: Dict[int, List[Tuple[Any, bytes, Optional[int]]]] = {}
        for entry in gids:
            if entry not in self._dirty:
                continue
            self._dirty.discard(entry)
            if isinstance(entry, tuple):
                gid, region = entry
                obj = self.cache[gid]
                reg = self._regions[gid]
                twin = reg.twins.pop(region, None)
                if twin is None:
                    continue
                lo, _hi = reg.bounds(region, len(obj.data))
                diff = compute_region_diff(obj, lo, twin, self)
                if diff is None:
                    continue
                by_home.setdefault(
                    self.home_node(gid), []).append((gid, diff, region))
                continue
            gid = entry
            obj = self.cache[gid]
            hdr: DSMHeader = obj.header
            twin = hdr.twin
            hdr.twin = None
            if twin is None:
                continue
            diff = compute_diff(obj, twin, self.specs.get(self._spec_key(obj)), self)
            if diff is None:
                continue
            by_home.setdefault(self.home_node(gid), []).append((gid, diff, None))
        if flush_home:
            # Home-written masters: bump version locally, notice at once.
            advanced: List[Tuple[Any, int]] = []
            for entry in list(self._dirty_home):
                self._dirty_home.discard(entry)
                if isinstance(entry, tuple):
                    gid, region = entry
                    reg = self._regions[gid]
                    reg.versions[region] += 1
                    key = (gid, region)
                    version = reg.versions[region]
                else:
                    gid = entry
                    obj = self.cache[gid]
                    hdr = obj.header
                    hdr.version += 1
                    key = gid
                    version = hdr.version
                advanced.append((key, version))
                if self.config.timestamp_mode == VECTOR:
                    self._applied.setdefault(key, {})[self.node_id] = interval
                    self.notice_table.add(Notice(key, interval, self.node_id))
                else:
                    self.notice_table.add(Notice(key, version))
            if advanced and self.ft is not None:
                self.ft.on_home_advance(advanced)
            if advanced and self.policy is not None:
                # Promoted units the home itself wrote: push fresh
                # copies (write-update) or broadcast (read-mostly).
                self.policy.on_home_advance(advanced)
        for home, entries in by_home.items():
            ack_id = self._next_ack_id
            self._next_ack_id += 1
            self._outstanding_acks += 1
            payload = {
                "entries": list(entries),
                "ack_id": ack_id,
                "writer": self.node_id,
                "interval": interval,
            }
            self.stats.diffs_sent += len(entries)
            size = HEADER_BYTES + sum(14 + len(d) for _, d, _r in entries)
            if self.obs is not None:
                size += self.obs.on_flush(home, ack_id, payload,
                                          len(entries), size - HEADER_BYTES)
            self.stats.diff_bytes += size
            self._pending_diffs[ack_id] = (home, payload, size)
            if self.config.timestamp_mode == VECTOR:
                # No fence: the notice is known locally right away.
                for gid, _, region in entries:
                    key = gid if region is None else (gid, region)
                    self.notice_table.add(Notice(key, interval, self.node_id))
            self.transport.send(home, M_DIFF, payload, size_bytes=size)

    def _spec_key(self, obj: Any) -> str:
        return obj.class_name

    def _apply_diff_entries(self, p: Dict[str, Any]) -> List[Tuple[Any, int]]:
        """Apply one diff payload's entries to local masters; returns the
        (key, new_version) acks.  Shared by the M_DIFF handler and the
        recovery-time M_FT_REDIFF handler."""
        acks: List[Tuple[Any, int]] = []
        writer = p["writer"]
        interval = p["interval"]
        for gid, diff, region in p["entries"]:
            obj = self.cache.get(gid)
            if obj is None:
                raise ProtocolError(
                    f"diff for unknown master gid {gid:#x} at node "
                    f"{self.node_id}"
                )
            hdr: DSMHeader = obj.header
            if region is not None:
                reg = self._regions[gid]
                lo, _hi = reg.bounds(region, len(obj.data))
                apply_region_diff(obj, lo, diff, self)
                reg.versions[region] += 1
                key: Any = (gid, region)
                version = reg.versions[region]
            else:
                apply_diff(obj, self.specs.get(self._spec_key(obj)), diff, self)
                hdr.version += 1
                key = gid
                version = hdr.version
            acks.append((key, version))
            if self.config.timestamp_mode == VECTOR:
                applied = self._applied.setdefault(key, {})
                applied[writer] = max(applied.get(writer, 0), interval)
                self.notice_table.add(Notice(key, interval, writer))
                self._retry_deferred_fetches(key)
            else:
                self.notice_table.add(Notice(key, version))
        return acks

    def _on_diff(self, msg: Message) -> None:
        p = msg.payload
        if self.locality is not None and self.locality.intercept_diff(msg):
            # Some entries name units migrated away: the locality agent
            # split the batch, forwarded the remote parts, and will send
            # one combined M_DIFF_ACK when everything is applied.
            return
        acks = self._apply_diff_entries(p)
        if self.ft is not None:
            self.ft.on_home_advance(acks)
        ack_payload: Dict[str, Any] = {"ack_id": p["ack_id"],
                                       "versions": acks}
        if self.locality is not None:
            grants = self.locality.consider_migration(msg)
            if grants:
                ack_payload["migrate"] = grants
        if self.policy is not None:
            # Classifier feed + write-time policy actions; migratory
            # bootstrap grants ride the same fenced M_DIFF_ACK field as
            # locality migration grants (install_grants applies both).
            pol_grants = self.policy.on_diff_applied(msg)
            if pol_grants:
                ack_payload.setdefault("migrate", []).extend(pol_grants)
        delay = self.cost_model[cm.PROTO_HANDLER_NS]
        if self.obs is not None:
            now = self.engine.now
            self.obs.on_diff_apply(msg.src, p["ack_id"], len(p["entries"]),
                                   now, now + delay)
        self.engine.schedule(delay, lambda: self.transport.send(
            msg.src, M_DIFF_ACK, ack_payload
        ))

    def _on_diff_ack(self, msg: Message) -> None:
        if self.obs is not None:
            self.obs.on_diff_ack(msg.payload["ack_id"])
        self._pending_diffs.pop(msg.payload["ack_id"], None)
        for key, version in msg.payload["versions"]:
            self.notice_table.add(Notice(key, version))
        if self.locality is not None:
            grants = msg.payload.get("migrate")
            if grants:
                self.locality.install_grants(msg.src, grants)
        self._outstanding_acks -= 1
        if self._outstanding_acks < 0:  # pragma: no cover - defensive
            raise ProtocolError("diff ack underflow")
        if self._outstanding_acks == 0:
            queue, self._fence_queue = self._fence_queue, []
            for action in queue:
                action()

    # ------------------------------------------------------------------
    # Recovery: pending diffs redirected to an adoptive home
    # ------------------------------------------------------------------
    def _on_ft_rediff(self, msg: Message) -> None:
        """Adoptive-home side: apply a diff whose original home died
        before acknowledging it.  Content-idempotent even if the dead
        home had already applied it (diffs carry absolute slot values),
        so at worst the version inflates — versions only ever need to be
        monotonic."""
        p = msg.payload
        if self.locality is not None and self.locality.intercept_rediff(msg):
            return
        acks = self._apply_diff_entries(p)
        if self.ft is not None:
            self.ft.on_home_advance(acks)
        delay = self.cost_model[cm.PROTO_HANDLER_NS]
        self.engine.schedule(delay, lambda: self.transport.send(
            msg.src, M_FT_REDIFF_ACK,
            {"ack_id": p["ack_id"], "versions": acks}
        ))

    def _on_ft_rediff_ack(self, msg: Message) -> None:
        ack_id = msg.payload["ack_id"]
        if ack_id not in self._pending_diffs:
            return  # the original home's ack won the race; already settled
        if self.obs is not None:
            self.obs.on_diff_ack(ack_id)
        del self._pending_diffs[ack_id]
        for key, version in msg.payload["versions"]:
            self.notice_table.add(Notice(key, version))
        self._outstanding_acks -= 1
        if self._outstanding_acks == 0:
            queue, self._fence_queue = self._fence_queue, []
            for action in queue:
                action()

    def ft_redirect_pending(self, dead: int, new_home: int) -> int:
        """Re-send every unacked diff that was destined for ``dead`` to
        its adoptive home.  Returns the number of redirected flushes."""
        redirected = 0
        for ack_id in sorted(self._pending_diffs):
            home, payload, size = self._pending_diffs[ack_id]
            if home != dead:
                continue
            self._pending_diffs[ack_id] = (new_home, payload, size)
            self.transport.send(new_home, M_FT_REDIFF, payload,
                                size_bytes=size)
            redirected += 1
        return redirected

    def _when_fence_clear(self, action: Callable[[], None]) -> None:
        """Run ``action`` once all outstanding diffs are acked (§3.1's
        scalar-timestamp lock-transfer delay).  Vector mode never waits."""
        if self.config.timestamp_mode == VECTOR or self._outstanding_acks == 0:
            action()
        else:
            self.stats.fence_waits += 1
            self._fence_queue.append(action)

    # ==================================================================
    # Fetch handling
    # ==================================================================
    def _on_fetch_req(self, msg: Message) -> None:
        gid = msg.payload["gid"]
        region = msg.payload.get("region")
        if self.locality is not None and self.locality.redirect_fetch(msg):
            return  # unit migrated away: forwarded to the current home
        obj = self.cache.get(gid)
        if obj is None:
            raise ProtocolError(
                f"fetch for unknown gid {gid:#x} at home {self.node_id}"
            )
        if gid in self._regions and region is None:
            region = 0  # regioned array touched without an index
        key = gid if region is None else (gid, region)
        if self.config.timestamp_mode == VECTOR:
            required: Dict[int, int] = msg.payload["required"]
            applied = self._applied.get(key, {})
            if any(applied.get(w, 0) < v for w, v in required.items()):
                self.stats.deferred_fetches += 1
                self._deferred_fetch.setdefault(key, []).append(msg)
                return
        # A forwarded request names the original requester; a direct one
        # is answered to its sender.
        requester = msg.payload.get("requester", msg.src)
        if self.policy is not None:
            self.policy.on_fetch_served(requester, gid, region, obj)
        self._serve_fetch(requester, obj, region)

    def _retry_deferred_fetches(self, key: Any) -> None:
        queue = self._deferred_fetch.get(key)
        if not queue:
            return
        applied = self._applied.get(key, {})
        gid = key[0] if isinstance(key, tuple) else key
        region = key[1] if isinstance(key, tuple) else None
        still = []
        for msg in queue:
            required = msg.payload["required"]
            if any(applied.get(w, 0) < v for w, v in required.items()):
                still.append(msg)
            else:
                self._serve_fetch(msg.src, self.cache[gid], region)
        self._deferred_fetch[key] = still

    def _serve_fetch(self, requester: int, obj: Any,
                     region: Optional[int] = None) -> None:
        hdr: DSMHeader = obj.header
        gid = hdr.gid
        if self.ft is not None:
            # Replicate BEFORE the reply leaves: anything a survivor can
            # have observed must be reconstructible from the buddy.
            self.ft.on_serve(gid, region)
        payload: Dict[str, Any] = {
            "gid": gid,
            "class_name": obj.class_name,
            "region": region,
        }
        if region is not None:
            reg = self._regions[gid]
            lo, hi = reg.bounds(region, len(obj.data))
            data = serialize_region(obj, lo, hi, self)
            payload["version"] = reg.versions[region]
            payload["total_len"] = len(obj.data)
            payload["region_elems"] = reg.elems
            key: Any = (gid, region)
        else:
            data = serialize_any(obj, self.specs.get(self._spec_key(obj)), self)
            payload["version"] = hdr.version
            key = gid
        payload["data"] = data
        if self.config.timestamp_mode == VECTOR:
            payload["applied"] = dict(self._applied.get(key, {}))
        size = HEADER_BYTES + 24 + len(data)
        self.stats.fetch_bytes += size
        delay = (
            self.cost_model[cm.PROTO_HANDLER_NS]
            + len(data) * self.cost_model[cm.SERIALIZE_PER_BYTE_NS]
        )
        if self.obs is not None:
            now = self.engine.now
            self.obs.on_fetch_serve(requester, gid, region, now, now + delay,
                                    size)
        self.engine.schedule(delay, lambda: self.transport.send(
            requester, M_FETCH_REPLY, payload, size_bytes=size
        ))

    def _on_fetch_reply(self, msg: Message) -> None:
        p = msg.payload
        gid, region = self._install_unit(p)
        if self.locality is not None:
            self._fetch_targets.pop((gid, region), None)
        waiters = self._fetch_waiters.pop((gid, region), [])
        extra: List[JThread] = []
        if region == 0:
            # A no-index (length) waiter may also be parked on region 0.
            extra = self._fetch_waiters.pop((gid, None), [])
        if self.obs is not None:
            self.obs.on_fetch_done(gid, region,
                                   [t.tid for t in waiters + extra],
                                   msg.size_bytes)
        for thread in waiters:
            thread.wake()
        for thread in extra:
            thread.wake()

    def _install_unit(self, p: Dict[str, Any]) -> Tuple[int, Optional[int]]:
        """Install one fetched coherency unit payload into the local
        cache (shared by fetch replies and prefetch bulk replies)."""
        gid = p["gid"]
        region = p.get("region")
        obj = self.cache.get(gid)
        if obj is None:
            obj = self.replica_for(gid, p["class_name"])
        hdr: DSMHeader = obj.header
        if region is not None:
            reg = self._regions.get(gid)
            total_len = p["total_len"]
            if reg is None:
                elems = p["region_elems"]
                n = (total_len + elems - 1) // elems
                reg = RegionInfo(
                    elems=elems,
                    states=[ObjState.INVALID] * n,
                    versions=[0] * n,
                    length_known=True,
                )
                self._regions[gid] = reg
            if len(obj.data) != total_len:
                from ..jvm.classfile import default_value
                obj.data = [default_value(obj.elem_type)] * total_len
            lo, _hi = reg.bounds(region, total_len)
            deserialize_region(obj, lo, p["data"], self)
            reg.states[region] = ObjState.VALID
            reg.versions[region] = p["version"]
            reg.twins.pop(region, None)
            reg.length_known = True
            hdr.state = ObjState.VALID  # "present"; regions carry the truth
            key: Any = (gid, region)
        else:
            deserialize_any(obj, self.specs.get(self._spec_key(obj)), p["data"], self)
            hdr.version = p["version"]
            hdr.state = ObjState.VALID
            hdr.twin = None
            key = gid
        if self.config.timestamp_mode == VECTOR:
            self._replica_vc[key] = dict(p.get("applied", {}))
        return gid, region

    # ==================================================================
    # Adaptive-locality primitives (driven by repro.locality)
    # ==================================================================
    def _serve_bulk(self, requester: int, gids: List[int]) -> List[Dict[str, Any]]:
        """Answer one prefetch bulk-fetch: serialize every requested
        whole-object unit this node masters into a single reply frame.
        The reply always echoes the requested gids so the requester can
        retire its in-flight bookkeeping even for units served elsewhere.
        Returns the units served (for external cross-checking)."""
        units: List[Dict[str, Any]] = []
        total = 0
        for gid in gids:
            obj = self.cache.get(gid)
            if obj is None or gid in self._regions:
                continue
            hdr = obj.header
            if hdr is None or hdr.state != ObjState.HOME:
                continue
            if self.ft is not None:
                self.ft.on_serve(gid, None)
            unit = self.ft_serialize_unit(gid)
            if unit is None:  # pragma: no cover - defensive
                continue
            units.append(unit)
            total += len(unit["data"])
        size = HEADER_BYTES + sum(24 + len(u["data"]) for u in units)
        self.stats.fetch_bytes += size
        payload = {"requested": list(gids), "units": units}
        delay = (
            self.cost_model[cm.PROTO_HANDLER_NS]
            + total * self.cost_model[cm.SERIALIZE_PER_BYTE_NS]
        )
        self.engine.schedule(delay, lambda: self.transport.send(
            requester, M_LOC_BULK_REPLY, payload, size_bytes=size
        ))
        return units

    def _loc_grant_unit(self, gid: int) -> Optional[Dict[str, Any]]:
        """Serialize a mastered unit for a migration grant and demote
        the local copy to an invalid replica (the grantee becomes the
        home).  A pending home write is published first so the grant
        carries a committed version, mirroring the release-time flush."""
        obj = self.cache.get(gid)
        if obj is None:
            return None
        hdr: DSMHeader = obj.header
        if hdr is None or hdr.state != ObjState.HOME:
            return None
        if gid in self._dirty_home:
            self._dirty_home.discard(gid)
            hdr.version += 1
            self.notice_table.add(Notice(gid, hdr.version))
            if self.ft is not None:
                self.ft.on_home_advance([(gid, hdr.version)])
        unit = self.ft_serialize_unit(gid)
        if unit is None:  # pragma: no cover - defensive
            return None
        hdr.state = ObjState.INVALID
        hdr.twin = None
        return unit

    # ==================================================================
    # Invalidation
    # ==================================================================
    def _apply_notices(self, notices: List[Notice]) -> None:
        # Merge into the table for onward propagation; but decide
        # invalidation against each REPLICA's version, never the table:
        # diff acks advance the table without refreshing the replica, so
        # table advancement is not a proxy for replica freshness.
        self.notice_table.add_all(notices)
        to_flush = []
        to_invalidate = []
        for notice in notices:
            key = notice.gid
            region: Optional[int] = None
            gid = key
            if isinstance(key, tuple):
                gid, region = key
            obj = self.cache.get(gid)
            if obj is None:
                continue
            hdr: DSMHeader = obj.header
            if region is not None:
                reg = self._regions.get(gid)
                if reg is None or reg.states[region] != ObjState.VALID:
                    continue
                if self.config.timestamp_mode == VECTOR:
                    seen = self._replica_vc.get(key, {})
                    if seen.get(notice.writer, 0) >= notice.version:
                        continue
                elif reg.versions[region] >= notice.version:
                    continue
            else:
                if hdr.state != ObjState.VALID:
                    continue
                if self.config.timestamp_mode == VECTOR:
                    seen = self._replica_vc.get(key, {})
                    if seen.get(notice.writer, 0) >= notice.version:
                        continue
                elif hdr.version >= notice.version:
                    continue
            # A dirty replica's pending local writes are committed program
            # actions: flush the diff home *before* invalidating, or the
            # multiple-writer merge loses them.
            if key in self._dirty:
                to_flush.append(key)
            if key not in to_invalidate:
                to_invalidate.append(key)
        if to_flush:
            self._flush(to_flush, flush_home=False)
        for key in to_invalidate:
            if isinstance(key, tuple):
                gid, region = key
                reg = self._regions[gid]
                reg.states[region] = ObjState.INVALID
                reg.twins.pop(region, None)
            else:
                hdr = self.cache[key].header
                hdr.state = ObjState.INVALID
                hdr.twin = None
            self.stats.invalidations += 1

    # ==================================================================
    # Lock choreography
    # ==================================================================
    def _lock_state(self, gid: int) -> NodeLockState:
        st = self.lock_states.get(gid)
        if st is None:
            st = NodeLockState(gid)
            self.lock_states[gid] = st
        return st

    def _on_lock_req(self, msg: Message) -> None:
        """Home role: route the request to the current owner (§3.2)."""
        p = msg.payload
        gid = p["gid"]
        if self.locality is not None \
                and self.locality.redirect_lock_req(msg):
            return  # unit migrated away: re-routed to the current home
        owner = self.lock_owner.get(gid)
        if owner is None:
            raise ProtocolError(
                f"lock request for unregistered gid {gid:#x}"
            )
        if owner == self.node_id:
            self._on_lock_fwd(msg)
        else:
            if self.obs is not None:
                self.obs.on_lock_route(p, owner)
            self.transport.send(owner, M_LOCK_FWD, dict(p))

    def _on_lock_fwd(self, msg: Message) -> None:
        p = msg.payload
        gid = p["gid"]
        st = self._lock_state(gid)
        if st.token is not None:
            req = LockRequest(
                p["node"], p["tid"], p["priority"],
                restore_count=p.get("restore", 1),
            )
            if self.obs is not None:
                self.obs.on_lock_enqueue(p, req)
            st.token.enqueue(req)
            self._service_queue(st)
            return
        # Token has moved on: chase it.
        target = st.last_sent_to
        if target is None:
            if self.node_id == self.home_node(gid):
                target = self.lock_owner.get(gid)
            if target is None or target == self.node_id:
                if (self.ft is not None
                        and self.node_id != self.home_node(gid)):
                    # Routing hint wiped by failure recovery: fall back
                    # to the (possibly adoptive) home, which re-routes
                    # via its owner table.
                    target = self.home_node(gid)
                else:
                    raise ProtocolError(
                        f"node {self.node_id} cannot route lock request "
                        f"for gid {gid:#x}"
                    )
        if self.obs is not None:
            self.obs.on_lock_route(p, target)
        self.transport.send(target, M_LOCK_FWD, dict(p))

    def _service_queue(self, st: NodeLockState) -> None:
        """Grant a free token to the next queued requester, if any."""
        if st.token is None or st.transit or st.holder_tid is not None:
            return
        while True:
            req = st.token.peek_next()
            if req is None:
                return
            if req.node == self.node_id:
                st.token.pop_next()
                if self.ft is not None:
                    # A recovery re-issue can produce a second grant for a
                    # request that was already satisfied; the thread is no
                    # longer blocked on this lock, so skip it.
                    entry = self._blocked_on.get(req.thread_id)
                    if entry is None or entry[0] != st.gid:
                        continue
                    st.count = entry[1]
                else:
                    st.count = req.restore_count
                st.holder_tid = req.thread_id
                self._blocked_on.pop(req.thread_id, None)
                if self.race is not None:
                    self.race.on_lock_granted(req.thread_id, st.gid)
                if self.obs is not None:
                    self.obs.on_lock_granted(req.thread_id, st.gid)
                self._thread(req.thread_id).complete(NO_VALUE)
                return
            if self._ft_token_freeze:
                # Recovery is scanning for live tokens: hold the token
                # here; the orchestrator re-services every queue after.
                return
            # Remote transfer: fence on outstanding diffs (scalar mode).
            st.token.pop_next()
            st.transit = True
            st.pending_grant = req
            if (self.obs is not None
                    and self.config.timestamp_mode != VECTOR
                    and self._outstanding_acks > 0):
                self.obs.on_fence_enter(st.gid, req)
            self._when_fence_clear(lambda: self._send_token(st, req))
            return

    def _send_token(self, st: NodeLockState, req: LockRequest) -> None:
        token = st.token
        assert token is not None
        if self.ft is not None and req.node in self.transport.dead_peers:
            # The grantee died while this transfer waited on the fence:
            # keep the token and serve the next live requester instead.
            st.transit = False
            st.pending_grant = None
            self._service_queue(st)
            return
        if self._ft_token_freeze:
            # Recovery is counting live tokens; commit the send but hold
            # the frame until the freeze lifts.
            self._ft_frozen_sends.append(
                lambda: self._send_token(st, req))
            return
        # Per-receiver delta: what THIS node's table has that the token
        # has not yet delivered to req.node specifically.
        per_receiver = token.seen_notices.setdefault(req.node, {})
        if self.config.timestamp_mode == VECTOR:
            delta = self.notice_table.delta_since_vector(per_receiver)
        else:
            delta = self.notice_table.delta_since(per_receiver)
        if self.obs is None:
            queue_wire = [
                (r.node, r.thread_id, r.priority, r.seq, r.restore_count)
                for r in token.queue
            ]
            waitq_wire = [
                (r.node, r.thread_id, r.priority, r.seq, r.restore_count)
                for r in token.waitq
            ]
        else:
            # 6th element: each queued request's causal span id, so the
            # acquire chain survives the token migration (billed by
            # on_token_send only when spans are actually on).
            queue_wire = [
                (r.node, r.thread_id, r.priority, r.seq, r.restore_count,
                 r.obs_span)
                for r in token.queue
            ]
            waitq_wire = [
                (r.node, r.thread_id, r.priority, r.seq, r.restore_count,
                 r.obs_span)
                for r in token.waitq
            ]
        payload = {
            "gid": token.gid,
            "grant": (req.node, req.thread_id, req.priority, req.restore_count),
            "queue": queue_wire,
            "waitq": waitq_wire,
            "seen": {n: dict(m) for n, m in token.seen_notices.items()},
            "delta": [(n.gid, n.version, n.writer) for n in delta],
        }
        size = HEADER_BYTES + token.wire_size() + sum(n.wire_size() for n in delta)
        if self.race is not None:
            # HB edge: ship this node's view of the lock's release clock.
            vc = self.race.lock_vc_wire(token.gid)
            payload["race"] = vc
            size += 8 + estimate_size(vc)
        if self.obs is not None:
            size += self.obs.on_token_send(token.gid, req, payload)
        if self.policy is not None:
            # Migratory policy: the unit's master may travel with the
            # token (``pol_grant`` field); the grant's bytes are billed
            # onto the token frame.
            size += self.policy.on_token_send(token.gid, req, payload)
        st.token = None
        st.transit = False
        st.pending_grant = None
        st.last_sent_to = req.node
        self.stats.token_transfers += 1
        self.transport.send(req.node, M_TOKEN, payload, size_bytes=size)

    def _on_token(self, msg: Message) -> None:
        p = msg.payload
        gid = p["gid"]
        st = self._lock_state(gid)
        if self.obs is not None:
            self.obs.on_token_arrive(p, gid)
        token = LockToken(gid)
        # Queue entries are 5-tuples, or 6-tuples (…, obs_span) when the
        # sender had telemetry attached; parse both.
        token.queue = [
            LockRequest(e[0], e[1], e[2], e[3], e[4],
                        obs_span=e[5] if len(e) > 5 else None)
            for e in p["queue"]
        ]
        token.waitq = [
            LockRequest(e[0], e[1], e[2], e[3], e[4],
                        obs_span=e[5] if len(e) > 5 else None)
            for e in p["waitq"]
        ]
        token.seen_notices = {n: dict(m) for n, m in p["seen"].items()}
        if self.race is not None:
            # Install the lock clock carried with the token (absent on a
            # recovery re-issue: the detector runs degraded after a kill).
            self.race.install_lock_vc(gid, p.get("race"))
        st.token = token
        st.last_sent_to = None
        if self.policy is not None:
            # Install a token-borne migratory master FIRST: the fresh
            # master makes the delta's own notice for the unit a no-op
            # and the owner update below resolves locally.
            self.policy.on_token_arrive(p)
        # Acquire-side of the sync point: invalidate per the notice delta.
        notices = [Notice(g, v, w) for g, v, w in p["delta"]]
        self._apply_notices(notices)
        if self.locality is not None:
            # Sharing-pattern prefetch: bulk-fetch the units this delta
            # just invalidated (they are the acquirer's likely next reads).
            self.locality.on_token_notices(notices)
        # Tell the home who owns the lock now.
        home = self.home_node(gid)
        if home != self.node_id:
            self.transport.send(home, M_OWNER_UPDATE, {
                "gid": gid, "owner": self.node_id,
            })
        else:
            self.lock_owner[gid] = self.node_id
        node, tid, _prio, restore = p["grant"]
        if node != self.node_id:  # pragma: no cover - defensive
            raise ProtocolError("token granted to the wrong node")
        if self.ft is not None:
            entry = self._blocked_on.get(tid)
            if entry is None or entry[0] != gid:
                # Stale grant from a recovery re-issue: the thread was
                # already granted (and may have moved on).  Keep the
                # token and serve whoever is actually waiting.
                self._service_queue(st)
                return
            restore = entry[1]
        st.holder_tid = tid
        st.count = restore
        self._blocked_on.pop(tid, None)
        if self.race is not None:
            self.race.on_lock_granted(tid, gid)
        if self.obs is not None:
            self.obs.on_lock_granted(tid, gid)
        self._thread(tid).complete(NO_VALUE)

    def _on_owner_update(self, msg: Message) -> None:
        p = msg.payload
        if self.locality is not None \
                and self.locality.redirect_owner_update(msg):
            return  # unit migrated away: re-routed to the current home
        self.lock_owner[p["gid"]] = p["owner"]

    # ==================================================================
    # Fault-tolerance recovery primitives (driven by repro.ft.recovery)
    # ==================================================================
    def ft_serialize_unit(self, key: Any) -> Optional[Dict[str, Any]]:
        """Serialize one home coherency unit for buddy replication, in
        the same format a fetch reply uses."""
        gid, region = key if isinstance(key, tuple) else (key, None)
        obj = self.cache.get(gid)
        if obj is None:
            return None
        unit: Dict[str, Any] = {
            "gid": gid,
            "region": region,
            "class_name": obj.class_name,
        }
        if region is not None:
            reg = self._regions.get(gid)
            if reg is None:
                return None
            lo, hi = reg.bounds(region, len(obj.data))
            unit["data"] = serialize_region(obj, lo, hi, self)
            unit["version"] = reg.versions[region]
            unit["total_len"] = len(obj.data)
            unit["region_elems"] = reg.elems
        else:
            unit["data"] = serialize_any(
                obj, self.specs.get(self._spec_key(obj)), self)
            unit["version"] = obj.header.version
        return unit

    def ft_home_keys(self) -> List[Any]:
        """Keys of every coherency unit this node is (origin) home of."""
        keys: List[Any] = []
        for gid, obj in self.cache.items():
            hdr = obj.header
            if hdr is None or home_of(gid) != self.node_id:
                continue
            reg = self._regions.get(gid)
            if reg is not None:
                keys.extend((gid, r) for r in range(reg.n_regions))
            elif hdr.state == ObjState.HOME:
                keys.append(gid)
        return keys

    def ft_install_master(self, unit: Dict[str, Any]) -> None:
        """Adopt one replicated coherency unit as a local master.  Local
        uncommitted writes to a cached replica of the same unit are
        merged back on top (they are program actions the multiple-writer
        protocol has not lost yet)."""
        gid = unit["gid"]
        region = unit["region"]
        obj = self.cache.get(gid)
        if obj is None:
            class_name = unit["class_name"]
            if class_name.endswith("[]"):
                obj = ArrayObj(class_name[:-2], 0)
            else:
                obj = Obj(self.jvm.lookup(class_name))
            hdr = attach_header(obj)
            hdr.gid = gid
            hdr.state = ObjState.INVALID
            hdr.version = 0
            self.cache[gid] = obj
        hdr = obj.header
        if region is not None:
            total_len = unit["total_len"]
            reg = self._regions.get(gid)
            if reg is None:
                elems = unit["region_elems"]
                n = (total_len + elems - 1) // elems
                reg = RegionInfo(
                    elems=elems,
                    states=[ObjState.INVALID] * n,
                    versions=[0] * n,
                    length_known=True,
                )
                self._regions[gid] = reg
            if len(obj.data) != total_len:
                from ..jvm.classfile import default_value
                obj.data = [default_value(obj.elem_type)] * total_len
            lo, _hi = reg.bounds(region, total_len)
            twin = reg.twins.pop(region, None)
            local_diff = None
            if twin is not None:
                local_diff = compute_region_diff(obj, lo, twin, self)
                self._dirty.discard((gid, region))
            deserialize_region(obj, lo, unit["data"], self)
            reg.states[region] = ObjState.HOME
            reg.versions[region] = max(reg.versions[region],
                                       unit["version"])
            hdr.state = ObjState.HOME
            if local_diff is not None:
                apply_region_diff(obj, lo, local_diff, self)
                self._dirty_home.add((gid, region))
        else:
            spec = self.specs.get(self._spec_key(obj))
            twin = hdr.twin
            hdr.twin = None
            local_diff = None
            if twin is not None:
                local_diff = compute_diff(obj, twin, spec, self)
                self._dirty.discard(gid)
            deserialize_any(obj, spec, unit["data"], self)
            hdr.version = max(hdr.version, unit["version"])
            hdr.state = ObjState.HOME
            if local_diff is not None:
                apply_diff(obj, spec, local_diff, self)
                self._dirty_home.add(gid)

    def ft_set_home(self, origin: int, new_home: int) -> None:
        """Point the home table of a failed origin node at its buddy."""
        self._home_map[origin] = new_home

    def ft_set_token_freeze(self, frozen: bool) -> None:
        """Freeze/unfreeze outbound token transfers.  Unfreezing flushes
        transfers the fence released during the freeze and re-services
        every lock queue."""
        self._ft_token_freeze = frozen
        if frozen:
            return
        sends, self._ft_frozen_sends = self._ft_frozen_sends, []
        for action in sends:
            action()
        for gid in sorted(self.lock_states):
            self._service_queue(self.lock_states[gid])

    def ft_purge_dead(self, dead: int) -> None:
        """Drop every trace of a dead node from local lock state: its
        queued requests and parked waiters can never be granted, and
        routing hints pointing at it would black-hole lock requests."""
        for gid in sorted(self.lock_states):
            st = self.lock_states[gid]
            if st.last_sent_to == dead:
                st.last_sent_to = None
            token = st.token
            if token is None:
                continue
            token.queue = [r for r in token.queue if r.node != dead]
            token.waitq = [r for r in token.waitq if r.node != dead]
            token.seen_notices.pop(dead, None)

    def ft_reissue_fetches(self, dead: int) -> int:
        """Re-send fetch requests that were in flight to a dead home;
        the adoptive home answers them from the replica store."""
        reissued = 0
        for (gid, region), waiters in list(self._fetch_waiters.items()):
            if not waiters:
                continue
            # Migrated units' fetches may have targeted a node other
            # than home_of(gid); _fetch_targets records where each
            # in-flight (or prefetch-covered) fetch actually went.
            if self.locality is not None:
                target_was = self._fetch_targets.get(
                    (gid, region), home_of(gid))
            else:
                target_was = home_of(gid)
            if target_was != dead:
                continue
            key = gid if region is None else (gid, region)
            payload: Dict[str, Any] = {"gid": gid, "region": region}
            if self.config.timestamp_mode == VECTOR:
                payload["required"] = self.notice_table.required_vector(key)
            else:
                payload["required"] = self.notice_table.required_scalar(key)
            self.stats.fetches += 1
            target = self.home_node(gid)
            if self.locality is not None:
                self._fetch_targets[(gid, region)] = target
            self.transport.send(target, M_FETCH_REQ, payload)
            reissued += 1
        return reissued

    def ft_reissue_blocked(self) -> int:
        """Re-issue lock requests for locally blocked threads whose
        request (or parked-waiter record) may have died with the failed
        node.  Duplicates are suppressed by the token queues' per-thread
        dedup; a re-grant of an already-granted request is skipped by
        the stale-grant check.  A waiter parked on a lost token wakes
        spuriously — legal, Java wait loops re-check their condition."""
        reissued = 0
        for tid in sorted(self._blocked_on):
            gid, restore = self._blocked_on[tid]
            thread = self._threads.get(tid)
            if thread is None:
                continue
            st = self.lock_states.get(gid)
            if st is not None and st.token is not None:
                if st.token.holds_request(self.node_id, tid):
                    continue  # original record survived with the token
                # Token is local (possibly freshly re-issued) but the
                # request record died with the old holder: requeue here.
                st.token.enqueue(LockRequest(
                    self.node_id, tid, thread.priority,
                    restore_count=restore,
                ))
                reissued += 1
                continue
            self.stats.lock_requests += 1
            self.transport.send(self.home_node(gid), M_LOCK_REQ, {
                "gid": gid,
                "node": self.node_id,
                "tid": tid,
                "priority": thread.priority,
                "restore": restore,
            })
            reissued += 1
        return reissued

    # ==================================================================
    # Introspection / testing helpers
    # ==================================================================
    def replica(self, gid: int) -> Any:
        """Introspection: the local replica for a gid, if any."""
        return self.cache.get(gid)

    def quiesced(self) -> bool:
        """No fences pending and no parked fetch waiters."""
        return self._outstanding_acks == 0 and not self._fetch_waiters
