"""Deliberately-racy MiniJava programs: positive controls for the
detector.

The sources also exist as files under ``examples/`` (for the
``python -m repro race`` CLI); a test asserts the two copies stay in
sync.  Both programs are *deterministically* racy: the conflicting
accesses are unordered under every schedule, so the detector must report
them on every seed.
"""

from __future__ import annotations

# Two threads increment one unsynchronized shared counter field.  The
# classic read-modify-write race: both the read and the write of
# ``Counter.count`` in ``run()`` conflict across threads.
RACY_COUNTER_SOURCE = """\
class Counter {
    int count;

    Counter() {
        this.count = 0;
    }
}

class CounterWorker extends Thread {
    Counter c;
    int n;

    CounterWorker(Counter c, int n) {
        this.c = c;
        this.n = n;
    }

    void run() {
        for (int i = 0; i < n; i++) {
            c.count = c.count + 1;   // racy read-modify-write
        }
    }
}

class RacyCounter {
    static int main() {
        Counter c = new Counter();
        CounterWorker[] ts = new CounterWorker[2];
        for (int t = 0; t < 2; t++) {
            ts[t] = new CounterWorker(c, 25);
            ts[t].start();
        }
        for (int t = 0; t < 2; t++) { ts[t].join(); }
        Sys.print("count = " + c.count);
        return c.count;
    }
}
"""

# Two threads write overlapping row ranges of one shared array with no
# synchronization: elements 6..9 are written by both.
RACY_ARRAY_SOURCE = """\
class RowWorker extends Thread {
    int[] data;
    int lo;
    int hi;

    RowWorker(int[] data, int lo, int hi) {
        this.data = data;
        this.lo = lo;
        this.hi = hi;
    }

    void run() {
        for (int i = lo; i < hi; i++) {
            data[i] = data[i] + 1;   // rows [lo, hi) -- ranges overlap
        }
    }
}

class RacyArray {
    static int main() {
        int n = 16;
        int[] data = new int[n];
        RowWorker[] ts = new RowWorker[2];
        ts[0] = new RowWorker(data, 0, 10);
        ts[1] = new RowWorker(data, 6, 16);
        ts[0].start();
        ts[1].start();
        ts[0].join();
        ts[1].join();
        int sum = 0;
        for (int i = 0; i < n; i++) { sum += data[i]; }
        Sys.print("sum = " + sum);
        return sum;
    }
}
"""

RACY_SOURCES = {
    "racy_counter": RACY_COUNTER_SOURCE,
    "racy_array": RACY_ARRAY_SOURCE,
}
