"""Vector clocks for the race detector.

The detector deliberately contrasts with the coherence protocol's §3.1
*scalar* timestamps: it maintains full vector clocks per thread and per
lock, entirely outside the coherence path, and piggybacks them on the
messages the protocol already sends (lock tokens, thread shipping).

Two implementation points matter for cost and correctness:

- **Copy-on-write snapshots.**  A thread's vector clock only changes at
  synchronization operations (acquire joins a lock clock, release ticks
  the thread's own component, spawn joins the parent's clock).  Every
  access between two sync operations therefore shares one immutable
  snapshot: :meth:`ThreadClock.snapshot` freezes the current dict and
  the next mutation copies it first.  This makes per-access metadata a
  reference, not a dict copy — and snapshot *identity* doubles as the
  per-interval deduplication key.
- **Order-independent concurrency test.**  Access events arrive at a
  unit's home out of happens-before order (they ship at release time
  over a network with jitter).  Each retained access therefore stores
  its full clock snapshot, and :func:`concurrent` checks *both*
  directions — ``a`` not ordered before ``b`` AND ``b`` not ordered
  before ``a`` — so the verdict does not depend on arrival order.
"""

from __future__ import annotations

from typing import Dict


class ThreadClock:
    """One thread's vector clock with copy-on-write snapshots."""

    __slots__ = ("tid", "vc", "_frozen")

    def __init__(self, tid: int) -> None:
        self.tid = tid
        # Component starts at 1 so a clock value of 0 always means
        # "never heard of that thread" in get(..., 0) lookups.
        self.vc: Dict[int, int] = {tid: 1}
        self._frozen = False

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[int, int]:
        """Freeze and return the current clock dict (shared, immutable
        by convention; identity changes exactly when the clock does)."""
        self._frozen = True
        return self.vc

    def _thaw(self) -> None:
        if self._frozen:
            self.vc = dict(self.vc)
            self._frozen = False

    # ------------------------------------------------------------------
    def join(self, other: Dict[int, int]) -> None:
        """Pointwise max with another clock (acquire/spawn edge)."""
        if not other:
            return
        vc = self.vc
        for t, c in other.items():
            if vc.get(t, 0) < c:
                self._thaw()
                vc = self.vc
                vc[t] = c

    def tick(self) -> None:
        """Advance this thread's own component (release/fork edge)."""
        self._thaw()
        self.vc[self.tid] = self.vc.get(self.tid, 0) + 1

    @property
    def clock(self) -> int:
        """This thread's own component (its current epoch)."""
        return self.vc.get(self.tid, 0)


def concurrent(a_tid: int, a_clock: int, a_vc: Dict[int, int],
               b_tid: int, b_clock: int, b_vc: Dict[int, int]) -> bool:
    """True iff neither access happens-before the other.

    ``x`` happens-before ``y`` iff ``y``'s snapshot has seen ``x``'s
    epoch (``y_vc[x_tid] >= x_clock``).  Checking both directions makes
    the test symmetric, so out-of-order event arrival cannot turn an
    ordered pair into a phantom race.
    """
    return a_clock > b_vc.get(a_tid, 0) and b_clock > a_vc.get(b_tid, 0)
