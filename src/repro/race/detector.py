"""RaceManager / RaceAgent: the distributed data-race detector.

One :class:`RaceManager` per runtime (when ``race_detect`` is on) owns a
per-node :class:`RaceAgent`, mirroring the ``ft``/``locality`` subsystem
shape.  Each agent is attached as ``worker.dsm.race`` (sync-edge hooks)
and as the interpreter's ``race_hook`` (access observation), so both
local and shared accesses are observed at the very instrumentation
points the paper already pays for (§2, §4).

Architecture
------------
- **Accessor side.**  Every checked field/array access records an event:
  ``(unit, slot, thread, clock snapshot, read/write, site, lockset)``.
  Accesses to LOCAL (never-promoted) objects are analyzed in place on
  the object's header; accesses to shared units are analyzed at the
  unit's *home* — immediately when the accessor is the home, otherwise
  the event is buffered and shipped at the next release point
  (piggybacked on the diff the interval flush already sends to that
  home when there is one, else in a standalone ``race.sync`` message).
  Events are deduplicated per interval: a thread's clock is constant
  between two sync operations, so one read + one write per (unit, slot)
  per interval carries all the information.
- **Home side.**  Per (unit, slot) the home keeps FastTrack-style
  metadata: a single last-access *epoch* per kind, adaptively promoted
  to a per-thread table (the "read vector clock") on the first
  concurrent second reader/writer.  Because events arrive out of
  happens-before order, every retained access keeps its full clock
  snapshot and the concurrency test is symmetric (see ``vc.py``).
- **Lockset.**  The same event stream feeds an Eraser-style state
  machine per slot (Virgin → Exclusive → Shared → Shared-Modified with
  candidate-lockset intersection), refined hybrid-style (after
  O'Callahan & Choi): each thread also maintains a *limited* clock
  carrying only fork/join edges (spawn shipping + Thread-object
  monitors, whose ``finished`` handshake IS the join), and an empty
  lockset only becomes a report when the conflicting pair is unordered
  under that limited relation.  This kills the classic Eraser false
  alarms on the fork/join idiom (constructor write before ``start()``,
  result read after ``join()``) while keeping Eraser's
  lock-schedule-insensitivity.  ``race_mode`` selects ``"hb"``,
  ``"lockset"``, or ``"both"`` (the default: happens-before verdicts
  annotated with the lockset diagnosis, plus lockset-only findings).
- **Reporting.**  Each race is reported once — keyed by (class, field
  or ``[]``, the unordered pair of access sites) — with both
  conflicting sites (class, field/array index, bytecode pc, source
  line, node, thread, simulated time).  ``race_suppress`` patterns
  (``Class.field`` / ``Class[]``) silence *documented* benign races the
  way a ThreadSanitizer suppression file would; suppressed findings are
  still counted.

Precision notes
---------------
- The §4.4 local-lock fast path is a real mutual-exclusion edge between
  same-node threads, so local acquires/releases maintain a lock clock
  on the object's header; promotion migrates it (and the per-slot
  metadata) into the home store.
- After a node-failure recovery all detector state is wiped and the run
  is marked ``degraded``: re-issued lock tokens cannot carry the dead
  node's lock clocks, and analyzing across the wipe would fabricate
  races.  No false positives — at the cost of misses spanning the kill.
- With home migration (``locality_migration``) a unit's metadata can
  split across the old and the new home; cross-store pairs are missed,
  never invented (each store checks independently).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from ..dsm.protocol import M_DIFF
from ..net.message import M_RACE_SYNC, estimate_size
from ..rewriter.naming import original_name
from .vc import ThreadClock, concurrent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.javasplit import JavaSplitRuntime
    from ..runtime.worker import WorkerNode

# Eraser state machine (per slot).
VIRGIN, EXCLUSIVE, SHARED, SHARED_MOD = range(4)

_ERASER_NAMES = {VIRGIN: "virgin", EXCLUSIVE: "exclusive",
                 SHARED: "shared", SHARED_MOD: "shared-modified"}


def _lock_key_sort(key: Any) -> Tuple[int, Any]:
    """Deterministic ordering over mixed gid/local lock keys."""
    return (0, key, 0, 0) if isinstance(key, int) else (1,) + tuple(key)


class AccessRecord:
    """One observed access, with its frozen clock snapshots.

    ``vc`` is the full happens-before snapshot (every sync edge);
    ``fj`` is the *limited* snapshot carrying only fork/join edges —
    the relation the lockset engine filters against (see
    ``RaceAgent._pair_for``).  Both ticks mirror, so ``clock`` is the
    accessing thread's own component of either.
    """

    __slots__ = ("tid", "clock", "vc", "fj", "write", "site", "lockset",
                 "time_ns", "node")

    def __init__(self, tid: int, clock: int, vc: Dict[int, int],
                 fj: Dict[int, int], write: bool,
                 site: Tuple[str, str, int, int],
                 lockset: FrozenSet[Any], time_ns: int, node: int) -> None:
        self.tid = tid
        self.clock = clock
        self.vc = vc
        self.fj = fj
        self.write = write
        self.site = site          # (class, method, pc, line)
        self.lockset = lockset
        self.time_ns = time_ns
        self.node = node

    def site_dict(self) -> Dict[str, Any]:
        klass, method, pc, line = self.site
        return {
            "kind": "write" if self.write else "read",
            "class": original_name(klass),
            "method": method,
            "pc": pc,
            "line": line,
            "node": self.node,
            "thread": self.tid,
            "time_ns": self.time_ns,
        }


class SlotState:
    """Detector metadata for one (unit, slot).

    ``w``/``r`` hold the FastTrack-compressed access history: ``None``,
    a single :class:`AccessRecord` (the epoch fast path), or a per-tid
    dict (the promoted "vector clock" form).
    """

    __slots__ = ("w", "r", "estate", "eowner", "cset", "last_by_tid",
                 "last_w_by_tid")

    def __init__(self) -> None:
        self.w: Any = None
        self.r: Any = None
        self.estate = VIRGIN
        self.eowner: Optional[int] = None
        self.cset: Optional[set] = None
        # Most recent access / most recent WRITE per thread (lockset
        # site pairing).  Writes are tracked separately because a
        # thread's later reads would otherwise shadow its write and
        # leave a racing read with only read candidates to pair with.
        self.last_by_tid: Dict[int, AccessRecord] = {}
        self.last_w_by_tid: Dict[int, AccessRecord] = {}

    def records(self, structure: Any):
        if structure is None:
            return ()
        if isinstance(structure, dict):
            return structure.values()
        return (structure,)


class LocalRaceState:
    """Per-object detector state while the object is still LOCAL."""

    __slots__ = ("key", "lock_vc", "slots")

    def __init__(self, key: Tuple[str, int, int]) -> None:
        self.key = key                     # ("l", node, seq) lock key
        # §4.4 local-lock clock: (full VC, fork/join VC) release pair.
        self.lock_vc: Optional[Tuple[Dict[int, int], Dict[int, int]]] = None
        self.slots: Dict[Any, SlotState] = {}


@dataclass
class RaceReport:
    """One reported race: two conflicting sites on one variable."""

    class_name: str
    slot: Any                    # field name, or int array index
    engine: str                  # "hb" or "lockset"
    a: AccessRecord
    b: AccessRecord
    detected_ns: int
    unit: Any                    # gid or local key
    lockset: Optional[List[Any]] = None   # candidate set (lockset modes)
    suppressed: bool = False

    @property
    def variable(self) -> str:
        base = original_name(self.class_name)
        if isinstance(self.slot, int):
            return f"{base}[{self.slot}]"
        return f"{base}.{self.slot}"

    @property
    def suppress_key(self) -> str:
        base = original_name(self.class_name)
        if isinstance(self.slot, int):
            return f"{base}[]"
        return f"{base}.{self.slot}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "variable": self.variable,
            "engine": self.engine,
            "detected_ns": self.detected_ns,
            "sites": [self.a.site_dict(), self.b.site_dict()],
            "lockset": self.lockset,
            "suppressed": self.suppressed,
        }

    def format(self) -> str:
        lines = [f"race on {self.variable} [{self.engine}]"
                 + (f"  lockset={self.lockset}" if self.lockset else "")]
        for s in (self.a, self.b):
            d = s.site_dict()
            lines.append(
                f"  {d['kind']:5s} {d['class']}.{d['method']} pc={d['pc']}"
                f" line={d['line']}  node={d['node']} thread={d['thread']}"
                f" t={d['time_ns'] / 1e6:.3f}ms")
        return "\n".join(lines)


class RaceManager:
    """Race-detection subsystem root, attached to one runtime."""

    def __init__(self, runtime: "JavaSplitRuntime") -> None:
        self.runtime = runtime
        cfg = runtime.config
        self.mode = cfg.race_mode
        self.max_reports = cfg.race_max_reports
        self.suppress = tuple(cfg.race_suppress)
        self.agents: Dict[int, "RaceAgent"] = {}
        self.reports: List[RaceReport] = []
        self.suppressed_count = 0
        self.dropped_reports = 0
        self.degraded = False
        self._seen: set = set()
        self._finalized = False
        self.drained_events = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self) -> None:
        for w in self.runtime.workers:
            self._attach_worker(w)

    def _attach_worker(self, worker: "WorkerNode") -> None:
        agent = RaceAgent(self, worker)
        self.agents[worker.node_id] = agent
        worker.dsm.race = agent
        agent.attach()

    def on_worker_added(self, worker: "WorkerNode") -> None:
        self._attach_worker(worker)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def add_report(self, agent: "RaceAgent", engine: str, class_name: str,
                   slot: Any, a: AccessRecord, b: AccessRecord,
                   unit: Any, cset: Optional[set]) -> None:
        slot_kind = slot if isinstance(slot, str) else "[]"
        pair = frozenset(((a.site, a.write), (b.site, b.write)))
        key = (class_name, slot_kind, pair)
        if key in self._seen:
            return
        self._seen.add(key)
        # Deterministic site order: earlier access first, tid tiebreak.
        if (a.time_ns, a.tid) > (b.time_ns, b.tid):
            a, b = b, a
        report = RaceReport(
            class_name=class_name, slot=slot, engine=engine, a=a, b=b,
            detected_ns=agent.engine.now, unit=unit,
            lockset=(sorted(cset, key=_lock_key_sort)
                     if cset is not None else None),
        )
        if any(report.suppress_key == pat for pat in self.suppress):
            report.suppressed = True
            self.suppressed_count += 1
            agent.emit("race.suppressed", report.variable)
            return
        if len(self.reports) >= self.max_reports:
            self.dropped_reports += 1
            return
        self.reports.append(report)
        agent.emit("race.report", f"{report.variable} [{engine}]")

    # ------------------------------------------------------------------
    # Failure recovery: wipe — never analyze across a recovery epoch.
    # ------------------------------------------------------------------
    def on_recovery(self, dead: int) -> None:
        self.degraded = True
        for agent in self.agents.values():
            agent.wipe()
        live = [a for n, a in sorted(self.agents.items())
                if not a.worker.dead]
        if live:
            live[0].emit("race.wipe", f"node {dead} died; metadata reset")

    # ------------------------------------------------------------------
    # End of run: drain events still buffered on the accessor side (a
    # main thread's trailing accesses never reach a release point).
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        if self._finalized:
            return
        self._finalized = True
        for node_id in sorted(self.agents):
            agent = self.agents[node_id]
            if agent.worker.dead:
                continue
            for home in sorted(agent.buffers):
                for ev in agent.buffers[home]:
                    target = self.agents.get(agent.dsm.home_node(ev[0]))
                    if target is None or target.worker.dead:
                        target = agent
                    target.process_wire_event(ev)
                    self.drained_events += 1
            agent.buffers.clear()

    # ------------------------------------------------------------------
    def sorted_reports(self) -> List[RaceReport]:
        return sorted(
            self.reports,
            key=lambda r: (r.detected_ns, r.variable, r.engine,
                           r.a.time_ns, r.b.time_ns))

    def report(self) -> Dict[str, Any]:
        """Summary dict for RunReport.race."""
        agents = [self.agents[n] for n in sorted(self.agents)]
        return {
            "mode": self.mode,
            "races": len(self.reports),
            "reports": [r.to_dict() for r in self.sorted_reports()],
            "suppressed": self.suppressed_count,
            "reports_dropped": self.dropped_reports,
            "degraded": self.degraded,
            "events_observed": sum(a.events_observed for a in agents),
            "events_shipped": sum(a.events_shipped for a in agents),
            "events_piggybacked": sum(a.events_piggybacked for a in agents),
            "events_drained": self.drained_events,
            "sync_msgs": sum(a.sync_msgs for a in agents),
            "read_promotions": sum(a.read_promotions for a in agents),
            "write_promotions": sum(a.write_promotions for a in agents),
        }


class RaceAgent:
    """Per-node detector: clocks, event capture, home-side analysis."""

    def __init__(self, manager: RaceManager, worker: "WorkerNode") -> None:
        self.manager = manager
        self.worker = worker
        self.dsm = worker.dsm
        self.engine = worker.dsm.engine
        self.node_id = worker.node_id
        self.mode = manager.mode
        self.hb = manager.mode in ("hb", "both")
        self.eraser = manager.mode in ("lockset", "both")
        # Optional tracer callback: (node, kind, detail).
        self.event_sink: Optional[Callable[[int, str, str], None]] = None

        self.clocks: Dict[int, ThreadClock] = {}
        # Limited happens-before: a second clock per thread that joins
        # only on fork/join edges (spawn shipping + Thread-object
        # monitors), ticking in lockstep with the full one.  The
        # lockset engine filters against THIS relation, keeping
        # Eraser's lock-schedule insensitivity (see ``_pair_for``).
        self.fj: Dict[int, ThreadClock] = {}
        self.held: Dict[int, set] = {}          # tid -> held lock keys
        # gid -> (full VC, fork/join VC) release pair.
        self.lock_vc: Dict[int, Tuple[Dict[int, int], Dict[int, int]]] = {}
        self.pending_spawn: Dict[int, tuple] = {}
        # gid -> "is this a javasplit.Thread monitor" (join-edge gids).
        self._thread_monitor: Dict[int, bool] = {}
        # Home-side per-unit metadata: gid -> slot -> SlotState.
        self.units: Dict[int, Dict[Any, SlotState]] = {}
        self.unit_class: Dict[int, str] = {}
        # Accessor-side event buffers per destination home node.
        self.buffers: Dict[int, List[tuple]] = {}
        # Per-interval dedup: (unit key, slot, tid, write) -> snapshot id.
        self._dedup: Dict[tuple, int] = {}
        self._local_seq = 0

        self.events_observed = 0
        self.events_shipped = 0
        self.events_piggybacked = 0
        self.sync_msgs = 0
        self.read_promotions = 0
        self.write_promotions = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self) -> None:
        transport = self.dsm.transport
        transport.on(M_RACE_SYNC, self._on_race_sync)

        # Piggyback pending event batches on diffs already headed to the
        # same home (the flush and the events share a destination).
        inner_send = transport.send

        def race_send(dst, msg_type, payload=None, size_bytes=0):
            if (msg_type == M_DIFF and payload is not None
                    and self.buffers.get(dst)):
                evs = self.buffers.pop(dst)
                payload = dict(payload)
                payload["race_ev"] = evs
                self.events_piggybacked += len(evs)
                if size_bytes > 0:
                    size_bytes += 8 + estimate_size(evs)
            return inner_send(dst, msg_type, payload, size_bytes)

        transport.send = race_send

        on_diff = transport._handlers[M_DIFF]

        def race_on_diff(msg):
            evs = msg.payload.get("race_ev")
            if evs:
                self.ingest(evs)
            on_diff(msg)

        transport._handlers[M_DIFF] = race_on_diff

        self.worker.jvm.interpreter.race_hook = self.observe

    def emit(self, kind: str, detail: str) -> None:
        if self.event_sink is not None:
            self.event_sink(self.node_id, kind, detail)

    def wipe(self) -> None:
        """Recovery epoch boundary: drop all analysis state."""
        self.units.clear()
        self.unit_class.clear()
        self.buffers.clear()
        self._dedup.clear()
        self.lock_vc.clear()
        # Thread clocks and held-lock sets survive: they describe live
        # threads, not analyzed history.

    # ------------------------------------------------------------------
    # Clock plumbing
    # ------------------------------------------------------------------
    def clock_of(self, tid: int) -> ThreadClock:
        clk = self.clocks.get(tid)
        if clk is None:
            clk = self.clocks[tid] = ThreadClock(tid)
        return clk

    def fj_of(self, tid: int) -> ThreadClock:
        clk = self.fj.get(tid)
        if clk is None:
            clk = self.fj[tid] = ThreadClock(tid)
        return clk

    def _is_thread_monitor(self, gid: int) -> bool:
        """Is this gid a ``javasplit.Thread`` monitor?  Its wait/notify
        handshake on ``finished`` IS the join edge, so (only) these
        lock edges feed the limited fork/join clocks."""
        cached = self._thread_monitor.get(gid)
        if cached is None:
            obj = self.dsm.cache.get(gid)
            if obj is None:
                return False  # no replica yet: re-resolve on next grant
            rtclass = getattr(obj, "rtclass", None)
            cached = bool(rtclass is not None
                          and rtclass.is_subtype_of("javasplit.Thread"))
            self._thread_monitor[gid] = cached
        return cached

    # ---- monitor edges (protocol hooks) ------------------------------
    def on_lock_granted(self, tid: int, gid: int) -> None:
        pair = self.lock_vc.get(gid)
        if pair is not None:
            self.clock_of(tid).join(pair[0])
            if pair[1] and self._is_thread_monitor(gid):
                self.fj_of(tid).join(pair[1])
        self.held.setdefault(tid, set()).add(gid)

    def on_lock_released(self, tid: int, gid: int) -> None:
        clk = self.clock_of(tid)
        fj = self.fj_of(tid)
        self.lock_vc[gid] = (clk.snapshot(), fj.snapshot())
        clk.tick()
        fj.tick()
        held = self.held.get(tid)
        if held is not None:
            held.discard(gid)

    def on_local_acquired(self, thread, hdr) -> None:
        ls = self._local_state(hdr)
        tid = thread.tid
        if ls.lock_vc is not None:
            # Local monitors are never join edges: a started Thread
            # object is always promoted, so only the full clock joins.
            self.clock_of(tid).join(ls.lock_vc[0])
        self.held.setdefault(tid, set()).add(ls.key)

    def on_local_released(self, thread, hdr) -> None:
        ls = self._local_state(hdr)
        tid = thread.tid
        clk = self.clock_of(tid)
        fj = self.fj_of(tid)
        ls.lock_vc = (clk.snapshot(), fj.snapshot())
        clk.tick()
        fj.tick()
        held = self.held.get(tid)
        if held is not None:
            held.discard(ls.key)

    # ---- token / spawn clock shipping --------------------------------
    def lock_vc_wire(self, gid: int) -> list:
        pair = self.lock_vc.get(gid)
        return [pair[0], pair[1]] if pair is not None else [{}, {}]

    def install_lock_vc(self, gid: int, pair: Optional[list]) -> None:
        if pair:
            self.lock_vc[gid] = (dict(pair[0]), dict(pair[1]))
        else:
            self.lock_vc[gid] = ({}, {})

    def on_spawn_ship(self, thread, gid: int) -> list:
        """Fork edge: snapshot the parent clocks for the child, tick."""
        clk = self.clock_of(thread.tid)
        fj = self.fj_of(thread.tid)
        vc, fjvc = clk.snapshot(), fj.snapshot()
        clk.tick()
        fj.tick()
        return [vc, fjvc]

    def note_spawn_vc(self, gid: int, pair: Optional[list]) -> None:
        if pair:
            self.pending_spawn[gid] = tuple(pair)

    def on_thread_begin(self, jthread, gid: int) -> None:
        pair = self.pending_spawn.pop(gid, None)
        if pair:
            self.clock_of(jthread.tid).join(pair[0])
            self.fj_of(jthread.tid).join(pair[1])

    # ------------------------------------------------------------------
    # Promotion: migrate header-local metadata into the home store
    # (promote() always makes *this* node the unit's home).
    # ------------------------------------------------------------------
    def on_promote(self, ref: Any, hdr, gid: int) -> None:
        ls: Optional[LocalRaceState] = hdr.race
        self.unit_class.setdefault(gid, hdr.class_name)
        if ls is None:
            return
        hdr.race = None
        rtclass = getattr(ref, "rtclass", None)
        if rtclass is not None:
            self._thread_monitor[gid] = \
                rtclass.is_subtype_of("javasplit.Thread")
        self.lock_vc[gid] = ls.lock_vc if ls.lock_vc is not None else ({}, {})
        # The local lock key becomes the gid: remap held sets, candidate
        # locksets, and retained records of this unit's slots.
        for held in self.held.values():
            if ls.key in held:
                held.discard(ls.key)
                held.add(gid)
        for slot, st in ls.slots.items():
            if st.cset is not None and ls.key in st.cset:
                st.cset.discard(ls.key)
                st.cset.add(gid)
            for structure in (st.w, st.r):
                for rec in st.records(structure):
                    if ls.key in rec.lockset:
                        rec.lockset = frozenset(
                            gid if k == ls.key else k for k in rec.lockset)
        store = self.units.setdefault(gid, {})
        store.update(ls.slots)
        # Re-key interval dedup entries from the local key to the gid.
        for key in [k for k in self._dedup if k[0] == ls.key]:
            self._dedup[(gid,) + key[1:]] = self._dedup.pop(key)

    def _local_state(self, hdr) -> LocalRaceState:
        ls = hdr.race
        if ls is None:
            self._local_seq += 1
            ls = hdr.race = LocalRaceState(("l", self.node_id,
                                            self._local_seq))
        return ls

    # ------------------------------------------------------------------
    # Access observation (interpreter race_hook)
    # ------------------------------------------------------------------
    def observe(self, thread, ref, slot, is_write, frame, instr) -> None:
        hdr = getattr(ref, "header", None)
        if hdr is None:
            return
        tid = thread.tid
        clk = self.clock_of(tid)
        snap = clk.snapshot()
        fjsnap = self.fj_of(tid).snapshot()
        gid = hdr.gid
        unit_key: Any = gid
        if not gid:
            unit_key = self._local_state(hdr).key
        dedup_key = (unit_key, slot, tid, is_write)
        snap_id = (id(snap), id(fjsnap))
        if self._dedup.get(dedup_key) == snap_id:
            return
        self._dedup[dedup_key] = snap_id
        self.events_observed += 1
        method = frame.method
        site = (method.klass, method.name, frame.pc, instr.line)
        lockset = frozenset(self.held.get(tid) or ())
        rec = AccessRecord(tid, snap.get(tid, 0), snap, fjsnap, is_write,
                           site, lockset, self.engine.now, self.node_id)
        if not gid:
            ls = hdr.race
            self._analyze(ls.slots, slot, rec, hdr.class_name, ls.key)
            return
        self.unit_class.setdefault(gid, hdr.class_name)
        home = self.dsm.home_node(gid)
        if home == self.node_id:
            self._analyze(self.units.setdefault(gid, {}), slot, rec,
                          self.unit_class[gid], gid)
            return
        self.buffers.setdefault(home, []).append((
            gid, self.dsm.class_id_for(hdr.class_name), slot, tid,
            rec.clock, snap, fjsnap, 1 if is_write else 0, site,
            sorted(lockset, key=_lock_key_sort), rec.time_ns, self.node_id,
        ))

    # ------------------------------------------------------------------
    # Event shipping (release points) and reception
    # ------------------------------------------------------------------
    def on_end_interval(self, thread) -> None:
        """Release point: ship buffered events not already piggybacked
        on this interval's diffs."""
        if not self.buffers:
            return
        transport = self.dsm.transport
        for home in sorted(self.buffers):
            evs = self.buffers.pop(home)
            if not evs:
                continue
            self.events_shipped += len(evs)
            self.sync_msgs += 1
            transport.send(home, M_RACE_SYNC, {"events": evs})
            self.emit("race.sync", f"-> n{home} ({len(evs)} events)")

    def _on_race_sync(self, msg) -> None:
        self.ingest(msg.payload["events"])

    def ingest(self, events) -> None:
        for ev in events:
            self.process_wire_event(ev)

    def process_wire_event(self, ev) -> None:
        (gid, class_id, slot, tid, clock, vc, fj, write, site, lockset,
         time_ns, node) = ev
        class_name = self.dsm.class_name_for(class_id)
        self.unit_class.setdefault(gid, class_name)
        rec = AccessRecord(
            tid, clock, vc, fj, bool(write), tuple(site),
            frozenset(k if isinstance(k, int) else tuple(k)
                      for k in lockset),
            time_ns, node)
        self._analyze(self.units.setdefault(gid, {}), slot, rec,
                      class_name, gid)

    # ------------------------------------------------------------------
    # Home-side analysis
    # ------------------------------------------------------------------
    def _analyze(self, slots: Dict[Any, SlotState], slot: Any,
                 rec: AccessRecord, class_name: str, unit: Any) -> None:
        st = slots.get(slot)
        if st is None:
            st = slots[slot] = SlotState()
        if self.hb:
            self._hb_check(st, rec, class_name, slot, unit)
        if self.eraser:
            self._eraser_check(st, rec, class_name, slot, unit)
            st.last_by_tid[rec.tid] = rec
            if rec.write:
                st.last_w_by_tid[rec.tid] = rec

    def _hb_check(self, st: SlotState, rec: AccessRecord,
                  class_name: str, slot: Any, unit: Any) -> None:
        cset = st.cset if self.eraser else None
        for prev in st.records(st.w):
            if prev.tid != rec.tid and concurrent(
                    prev.tid, prev.clock, prev.vc,
                    rec.tid, rec.clock, rec.vc):
                self.manager.add_report(self, "hb", class_name, slot,
                                        prev, rec, unit, cset)
        if rec.write:
            for prev in st.records(st.r):
                if prev.tid != rec.tid and concurrent(
                        prev.tid, prev.clock, prev.vc,
                        rec.tid, rec.clock, rec.vc):
                    self.manager.add_report(self, "hb", class_name, slot,
                                            prev, rec, unit, cset)
            st.w = self._retain(st.w, rec, write=True)
        else:
            st.r = self._retain(st.r, rec, write=False)

    def _retain(self, structure: Any, rec: AccessRecord,
                write: bool) -> Any:
        """FastTrack adaptive storage: epoch -> per-tid table."""
        if structure is None:
            return rec
        if isinstance(structure, dict):
            structure[rec.tid] = rec
            return structure
        if structure.tid == rec.tid:
            return rec
        # Second thread: promote the epoch to a full per-thread table.
        if write:
            self.write_promotions += 1
        else:
            self.read_promotions += 1
        return {structure.tid: structure, rec.tid: rec}

    def _eraser_check(self, st: SlotState, rec: AccessRecord,
                      class_name: str, slot: Any, unit: Any) -> None:
        if st.estate == VIRGIN:
            st.estate = EXCLUSIVE
            st.eowner = rec.tid
            return
        if st.estate == EXCLUSIVE:
            if rec.tid == st.eowner:
                return
            st.estate = SHARED_MOD if rec.write else SHARED
            st.cset = set(rec.lockset)
        else:
            assert st.cset is not None
            st.cset &= rec.lockset
            if rec.write:
                st.estate = SHARED_MOD
        if st.estate == SHARED_MOD and not st.cset:
            prev = self._pair_for(st, rec)
            if prev is not None:
                self.manager.add_report(self, "lockset", class_name, slot,
                                        prev, rec, unit, st.cset)

    @staticmethod
    def _pair_for(st: SlotState, rec: AccessRecord) -> Optional[AccessRecord]:
        """Most recent *conflicting, concurrent* access by another
        thread (lockset site pairing).

        Pure Eraser would report here unconditionally — and false-alarm
        on the fork/join idiom (a constructor write before ``start()``,
        or a result read after ``join()``, holds no lock yet is
        perfectly ordered).  The standard hybrid refinement (after
        O'Callahan & Choi): filter the pair against a *limited*
        happens-before relation carrying only fork/join edges, NOT lock
        edges.  Fork/join-ordered pairs are never races under any
        schedule, so dropping them loses nothing; lock edges stay out
        of the filter so Eraser keeps its schedule-insensitivity (a
        benign unlocked read that happens to be lock-ordered on THIS
        schedule is still reported, like Eraser would).  Ordered pairs
        leave the state machine in SHARED_MOD with an empty cset, so a
        later genuinely-unordered access still reports.
        """
        candidates = st.last_by_tid if rec.write else st.last_w_by_tid
        best = None
        for tid, prev in sorted(candidates.items()):
            if tid == rec.tid:
                continue
            if not concurrent(prev.tid, prev.clock, prev.fj,
                              rec.tid, rec.clock, rec.fj):
                continue
            if best is None or prev.time_ns > best.time_ns:
                best = prev
        return best
