"""Distributed data-race detection: FastTrack-style happens-before +
Eraser-style lockset analysis over the DSM access checks.

JavaSplit already pays for an access check before every field/array
access and routes every ``monitorenter``/``monitorexit`` through the DSM
synchronization handlers (§2, §4) — exactly the instrumentation points a
dynamic race detector needs.  This subsystem taps them to make the
runtime a correctness tool for the programs it executes, behind
``RuntimeConfig`` knobs that are all off by default:

- ``race_detect``: master switch.  When off no agent is attached, no
  payload field is added, and runs are byte-identical to a build without
  the subsystem.
- ``race_mode``: ``"hb"`` (vector-clock happens-before), ``"lockset"``
  (Eraser state machine), or ``"both"`` (default — precise HB verdicts
  annotated with the lockset diagnosis, plus lockset-only findings).
- ``race_suppress``: ``Class.field`` / ``Class[]`` patterns for
  *documented* benign races (e.g. tsp's deliberately stale
  ``MinTour.best`` bound read), in the spirit of a ThreadSanitizer
  suppression file.
- ``race_max_reports``: cap on retained reports.

The detector's vector clocks deliberately contrast with the coherence
protocol's §3.1 scalar timestamps: they live entirely outside the
coherence path and piggyback on messages the protocol already sends
(lock tokens, thread shipping, interval diffs).
"""

from .detector import AccessRecord, RaceAgent, RaceManager, RaceReport
from .vc import ThreadClock, concurrent

__all__ = [
    "AccessRecord",
    "RaceAgent",
    "RaceManager",
    "RaceReport",
    "ThreadClock",
    "concurrent",
]
