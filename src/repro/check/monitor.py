"""Protocol invariant monitor for the MTS-HLRC engine.

Attaches to every :class:`~repro.dsm.protocol.DsmEngine` of a runtime and
observes the protocol from the outside — it wraps hook methods and
message handlers but keeps its own independent bookkeeping (e.g. its own
ledger of unacked diffs), so a protocol mutation that corrupts the
engine's internal counters is still caught.

Invariants checked (violations are collected, or raised with
``strict=True``):

``release-flush``
    A release point (``end_interval``) leaves no pending twinned writes
    behind — the diff flush of §3 is not skippable.
``fence``
    In scalar-timestamp mode a lock token never leaves a node while that
    node has diffs that are not yet acknowledged by their homes (the
    §3.1 scalar-timestamp condition).  Checked against the monitor's own
    diff/ack ledger.
``version-monotonic``
    A home's per-coherency-unit version advances by exactly one per
    applied diff and never regresses in fetch replies.
``diff-base``
    A diff is only applied to a master that is at least as new as the
    twin the diff was computed against.
``single-home``
    Every shared object has exactly one master copy, resident on the
    node its gid names (``home_of``) — or, once the adaptive-locality
    subsystem has migrated it, on the node the home directory names.
    Each migration handoff and recovery adoption is additionally
    checked *at the instant it installs*: no two live nodes may hold a
    master of the same unit, ever.
``bounded-notices``
    In bounded scalar mode a node never stores more than one notice per
    coherency unit (the paper's §5 storage claim; vector timestamps
    keep one per CU *per writer*).
``fetch-version``
    A fetch reply's version satisfies the version the cache's notice
    table required when the fetch was issued, and never moves a replica
    backwards in time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from ..dsm.objectstate import ObjState
from ..dsm.directory import home_of
from ..dsm.protocol import M_DIFF, M_FT_REDIFF, SCALAR, DsmEngine
from ..net.message import M_LOC_FWD_DIFF, M_POL_BCAST, M_POL_PUSH, Message

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.javasplit import JavaSplitRuntime


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation."""

    time_ns: int
    node: int
    kind: str
    detail: str

    def __str__(self) -> str:
        return (f"[{self.time_ns / 1e6:.3f}ms n{self.node}] "
                f"{self.kind}: {self.detail}")


class MonitorError(AssertionError):
    """Raised in strict mode on the first violation."""


class InvariantMonitor:
    """Observes all DSM engines of one runtime and records violations."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.violations: List[Violation] = []
        # Optional callback fired on every violation with (node, kind,
        # detail) — before the strict-mode raise, so the flight recorder
        # dumps its postmortem even when the violation aborts the run.
        self.on_violation: Optional[Any] = None
        self._engine = None               # sim engine, for timestamps
        self._workers: List[Any] = []
        # gid -> node that promoted it (single-home claims).
        self._home_claims: Dict[int, int] = {}
        # Independent diff/ack ledger: node -> outstanding diff ack ids.
        # Keyed by ack id (not a count) so a fault-tolerance redirect of
        # an already-sent diff (``ft.rediff``, same ack id) does not
        # double-count, and the losing copy's ack can be ignored.
        self._unacked: Dict[int, Set[int]] = {}
        # Twin base versions in flight: (writer, key) -> FIFO of bases.
        self._bases: Dict[Tuple[int, Any], Deque[int]] = {}
        # Highest version a home has served / applied, per key.
        self._served: Dict[Any, int] = {}
        # Required version recorded when a cache issued a fetch.
        self._required: Dict[Tuple[int, Any], int] = {}
        # Distinct CU keys ever noticed, per node (bounded-storage bound).
        self._cu_keys: Dict[int, Set[Any]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, runtime: "JavaSplitRuntime",
               strict: bool = False) -> "InvariantMonitor":
        """Instrument every worker of a runtime; returns the monitor."""
        monitor = cls(strict=strict)
        monitor._engine = runtime.engine
        for worker in runtime.workers:
            monitor._wrap(worker.dsm)
            monitor._workers.append(worker)
        # Instrument late joiners too (same invariants apply to them).
        runtime.worker_added_hooks.append(monitor._on_worker_added)
        obs = getattr(runtime, "obs", None)
        if obs is not None and getattr(obs, "flight_enabled", False):
            monitor.on_violation = obs.dump_on_violation
        return monitor

    def _on_worker_added(self, worker: Any) -> None:
        self._wrap(worker.dsm)
        self._workers.append(worker)

    # ------------------------------------------------------------------
    def report(self, node: int, kind: str, detail: str) -> None:
        v = Violation(self._engine.now if self._engine else 0,
                      node, kind, detail)
        self.violations.append(v)
        if self.on_violation is not None:
            self.on_violation(node, kind, detail)
        if self.strict:
            raise MonitorError(str(v))

    @property
    def ok(self) -> bool:
        """True while no invariant has been violated."""
        return not self.violations

    def summary(self) -> str:
        if not self.violations:
            return "invariant monitor: ok"
        lines = [f"invariant monitor: {len(self.violations)} violation(s)"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def _wrap(self, dsm: DsmEngine) -> None:
        node = dsm.node_id
        scalar = dsm.config.timestamp_mode == SCALAR
        # With the adaptive-locality subsystem on, a diff can be split
        # (entries homed elsewhere are forwarded, not applied here) and
        # a migration grant can advance the version past the +1 the
        # plain apply produces — the per-entry checks adapt below.
        has_loc = dsm.locality is not None
        self._unacked.setdefault(node, set())
        self._cu_keys.setdefault(node, set())

        # --- promote: single-home claims -----------------------------
        promote = dsm.promote

        def checked_promote(ref):
            fresh = ref.header is None or not ref.header.gid
            gid = promote(ref)
            if fresh:
                if home_of(gid) != node:
                    self.report(node, "single-home",
                                f"promoted gid {gid:#x} homed at node "
                                f"{home_of(gid)}")
                prior = self._home_claims.setdefault(gid, node)
                if prior != node:
                    self.report(node, "single-home",
                                f"gid {gid:#x} already claimed by node "
                                f"{prior}")
            return gid

        dsm.promote = checked_promote

        # --- end_interval: releases must flush -----------------------
        end_interval = dsm.end_interval

        def checked_end_interval(thread):
            end_interval(thread)
            if dsm._dirty or dsm._dirty_home:
                left = list(dsm._dirty) + list(dsm._dirty_home)
                self.report(node, "release-flush",
                            f"release left unflushed writes: {left}")

        dsm.end_interval = checked_end_interval

        # --- transport.send: diff ledger + twin base capture ---------
        transport_send = dsm.transport.send

        def checked_send(dst, msg_type, payload=None, size_bytes=0):
            if msg_type == M_DIFF:
                self._unacked[node].add(payload["ack_id"])
                for gid, _diff, region in payload["entries"]:
                    key = gid if region is None else (gid, region)
                    base = self._version_of(dsm, gid, region)
                    self._bases.setdefault((node, key),
                                           deque()).append(base)
            elif msg_type == M_FT_REDIFF:
                # Recovery re-sends an already-ledgered diff to the
                # adoptive home; same ack id, so the set-add is a no-op
                # and the twin bases must not be re-queued.
                self._unacked[node].add(payload["ack_id"])
            return transport_send(dst, msg_type, payload, size_bytes)

        dsm.transport.send = checked_send

        # --- diff apply at home --------------------------------------
        # Wrap the *registered* handler (not the engine method) so
        # several observers compose in attach order.
        on_diff = dsm.transport._handlers[M_DIFF]

        def pre_applied_entries(payload):
            """Version snapshot of the entries this node will apply
            (skipping entries a locality split forwards elsewhere);
            also returns the keys the locality agent will DROP because
            they are this node's own pre-grant diffs, already folded
            into the master it installed."""
            pre = {}
            folded = set()
            for gid, _diff, region in payload["entries"]:
                if has_loc and region is None \
                        and dsm.home_node(gid) != node:
                    continue  # forwarded to the migrated home, not applied
                key = gid if region is None else (gid, region)
                if has_loc and region is None and \
                        dsm.locality.folds_own_diff(gid, payload["writer"]):
                    folded.add(key)
                pre[key] = self._version_of(dsm, gid, region)
            return pre, folded

        def post_applied_entries(payload, pre, folded):
            """Version and twin-base checks after a diff apply; shared
            by M_DIFF and the locality forward."""
            writer = payload["writer"]
            for key, before in pre.items():
                gid, region = (key if isinstance(key, tuple)
                               else (key, None))
                fifo = self._bases.get((writer, key))
                if key in folded:
                    # Dropped, not applied: settle the twin-base FIFO
                    # slot but expect no version movement.
                    if fifo:
                        fifo.popleft()
                    continue
                after = self._version_of(dsm, gid, region)
                # A migration grant resolves the home's own pending
                # write on top of the apply, so +2 is legitimate with
                # locality on; regression never is.
                bad = (after < before + 1) if has_loc \
                    else (after != before + 1)
                if before is not None and bad:
                    self.report(node, "version-monotonic",
                                f"diff apply moved {key!r} "
                                f"{before} -> {after}")
                if fifo:
                    base = fifo.popleft()
                    if before is not None and before < base:
                        self.report(node, "diff-base",
                                    f"diff for {key!r} from node {writer} "
                                    f"built on version {base} applied to "
                                    f"master at {before}")

        def checked_on_diff(msg: Message):
            pre, folded = pre_applied_entries(msg.payload)
            on_diff(msg)
            post_applied_entries(msg.payload, pre, folded)

        self._replace_handler(dsm, M_DIFF, checked_on_diff)

        # --- locality: forwarded diff applies at the migrated home ----
        on_fwd_diff = dsm.transport._handlers.get(M_LOC_FWD_DIFF)
        if on_fwd_diff is not None:
            def checked_on_fwd_diff(msg: Message):
                pre, folded = pre_applied_entries(msg.payload)
                on_fwd_diff(msg)
                post_applied_entries(msg.payload, pre, folded)

            self._replace_handler(dsm, M_LOC_FWD_DIFF,
                                  checked_on_fwd_diff)

        # --- diff acks: ledger settle --------------------------------
        from ..dsm.protocol import M_DIFF_ACK, M_FT_REDIFF_ACK

        on_diff_ack = dsm.transport._handlers[M_DIFF_ACK]

        def checked_on_diff_ack(msg: Message):
            ack_id = msg.payload["ack_id"]
            if ack_id not in self._unacked[node]:
                self.report(node, "fence",
                            f"ack for unknown diff {ack_id} observed")
            self._unacked[node].discard(ack_id)
            on_diff_ack(msg)

        dsm.transport._handlers[M_DIFF_ACK] = checked_on_diff_ack

        on_rediff_ack = dsm.transport._handlers[M_FT_REDIFF_ACK]

        def checked_on_rediff_ack(msg: Message):
            # A rediff ack can lose the race against the original ack;
            # the engine ignores it then, and so does the ledger.
            self._unacked[node].discard(msg.payload["ack_id"])
            on_rediff_ack(msg)

        dsm.transport._handlers[M_FT_REDIFF_ACK] = checked_on_rediff_ack

        # --- token transfer: the scalar-timestamp fence --------------
        send_token = dsm._send_token

        def checked_send_token(st, req):
            if scalar and self._unacked[node]:
                self.report(node, "fence",
                            f"token for gid {st.gid:#x} leaving with "
                            f"{len(self._unacked[node])} unacked diff(s)")
            send_token(st, req)

        dsm._send_token = checked_send_token

        # --- fetch path ----------------------------------------------
        start_fetch = dsm._start_fetch

        def checked_start_fetch(thread, hdr, region=None):
            key = hdr.gid if region is None else (hdr.gid, region)
            if scalar:
                self._required[(node, key)] = \
                    dsm.notice_table.required_scalar(key)
            start_fetch(thread, hdr, region)

        dsm._start_fetch = checked_start_fetch

        serve_fetch = dsm._serve_fetch

        def checked_serve_fetch(requester, obj, region=None):
            gid = obj.header.gid
            key = gid if region is None else (gid, region)
            version = self._version_of(dsm, gid, region)
            last = self._served.get(key)
            if last is not None and version is not None and version < last:
                self.report(node, "version-monotonic",
                            f"home served {key!r} at version {version} "
                            f"after serving {last}")
            if version is not None:
                self._served[key] = max(self._served.get(key, 0), version)
            serve_fetch(requester, obj, region)

        dsm._serve_fetch = checked_serve_fetch

        # --- locality: bulk prefetch serves publish versions too ------
        serve_bulk = dsm._serve_bulk

        def checked_serve_bulk(requester, gids):
            for gid in gids:
                obj = dsm.cache.get(gid)
                if obj is None or obj.header is None \
                        or obj.header.state != ObjState.HOME \
                        or gid in dsm._regions:
                    continue  # not served; the reply only echoes it
                version = obj.header.version
                last = self._served.get(gid)
                if last is not None and version < last:
                    self.report(node, "version-monotonic",
                                f"bulk serve of gid {gid:#x} at version "
                                f"{version} after serving {last}")
                self._served[gid] = max(self._served.get(gid, 0), version)
            return serve_bulk(requester, gids)

        dsm._serve_bulk = checked_serve_bulk

        # --- per-instant single-home across migrations/adoptions ------
        # ft_install_master is the one door through which a master ever
        # moves (migration grants and recovery adoptions both use it);
        # right after it runs, no other live node may still hold a
        # master of the same whole-object unit.
        ft_install = dsm.ft_install_master

        def checked_ft_install_master(unit):
            ft_install(unit)
            if unit.get("region") is None:
                gid = unit["gid"]
                holders = []
                for w in self._workers:
                    if getattr(w, "dead", False):
                        continue
                    obj = w.dsm.cache.get(gid)
                    if obj is not None and obj.header is not None \
                            and obj.header.state == ObjState.HOME:
                        holders.append(w.node_id)
                if len(holders) > 1:
                    self.report(node, "single-home",
                                f"gid {gid:#x} has master copies on "
                                f"nodes {holders} at install")

        dsm.ft_install_master = checked_ft_install_master

        from ..dsm.protocol import M_FETCH_REPLY

        on_fetch_reply = dsm.transport._handlers[M_FETCH_REPLY]

        def checked_on_fetch_reply(msg: Message):
            p = msg.payload
            gid = p["gid"]
            region = p.get("region")
            key = gid if region is None else (gid, region)
            before = self._version_of(dsm, gid, region)
            on_fetch_reply(msg)
            version = p["version"]
            if before is not None and version < before:
                self.report(node, "fetch-version",
                            f"reply moved replica {key!r} backwards "
                            f"{before} -> {version}")
            required = self._required.pop((node, key), None)
            if required is not None and version < required:
                self.report(node, "fetch-version",
                            f"reply for {key!r} at version {version} "
                            f"below required {required}")

        self._replace_handler(dsm, M_FETCH_REPLY, checked_on_fetch_reply)

        # --- policy: a push/broadcast install never moves a replica
        # backwards and never touches a master -------------------------
        def checked_on_pol_push(msg: Message, _inner=None):
            gid = msg.payload["gid"]
            obj = dsm.cache.get(gid)
            was_home = (obj is not None and obj.header is not None
                        and obj.header.state == ObjState.HOME)
            before = self._version_of(dsm, gid, None)
            _inner(msg)
            after = self._version_of(dsm, gid, None)
            if before is not None and after is not None and after < before:
                self.report(node, "version-monotonic",
                            f"push moved replica gid {gid:#x} backwards "
                            f"{before} -> {after}")
            if was_home and after != before:
                self.report(node, "single-home",
                            f"push overwrote the master of gid {gid:#x}")

        for mtype in (M_POL_PUSH, M_POL_BCAST):
            pol_inner = dsm.transport._handlers.get(mtype)
            if pol_inner is not None:
                self._replace_handler(
                    dsm, mtype,
                    lambda msg, _inner=pol_inner:
                    checked_on_pol_push(msg, _inner=_inner))

        # --- bounded notice storage ----------------------------------
        table = dsm.notice_table
        table_add = table.add
        # The one-notice-per-CU bound is the MTS (scalar) claim; vector
        # timestamps legitimately keep one notice per (CU, writer).
        bounded = table.mode == "bounded" and scalar
        keys = self._cu_keys[node]

        def checked_add(notice):
            advanced = table_add(notice)
            keys.add(notice.gid)
            if bounded and table.stored_notices > len(keys):
                self.report(node, "bounded-notices",
                            f"{table.stored_notices} notices stored for "
                            f"{len(keys)} coherency units")
            return advanced

        table.add = checked_add

    # ------------------------------------------------------------------
    @staticmethod
    def _replace_handler(dsm: DsmEngine, msg_type: str, wrapper) -> None:
        dsm.transport._handlers[msg_type] = wrapper

    @staticmethod
    def _version_of(dsm: DsmEngine, gid: int,
                    region: Optional[int]) -> Optional[int]:
        """Current local version of a coherency unit (master or replica)."""
        obj = dsm.cache.get(gid)
        if obj is None:
            return None
        if region is not None:
            reg = dsm._regions.get(gid)
            return None if reg is None else reg.versions[region]
        return obj.header.version

    # ------------------------------------------------------------------
    # End-of-run structural scan
    # ------------------------------------------------------------------
    def finalize(self) -> List[Violation]:
        """Post-run structural checks; returns all violations so far.

        Workers that died mid-run are skipped: their frozen cache is no
        longer part of the system (recovery re-homed their masters)."""
        holders: Dict[int, List[int]] = {}
        for worker in self._workers:
            if getattr(worker, "dead", False):
                continue
            dsm = worker.dsm
            node = dsm.node_id
            for gid, obj in dsm.cache.items():
                hdr = obj.header
                if hdr is None:
                    continue
                if hdr.state == ObjState.HOME:
                    holders.setdefault(gid, []).append(node)
                    # home_node() follows recovery's re-homing redirects
                    # (it is home_of() when no node has died).
                    if dsm.home_node(gid) != node:
                        self.report(node, "single-home",
                                    f"master for gid {gid:#x} resident at "
                                    f"node {node}, homed at "
                                    f"{dsm.home_node(gid)}")
            if dsm._outstanding_acks:
                self.report(node, "fence",
                            f"{dsm._outstanding_acks} diff ack(s) "
                            "outstanding at end of run")
        for gid, nodes in holders.items():
            if len(nodes) != 1:
                self.report(nodes[0], "single-home",
                            f"gid {gid:#x} has {len(nodes)} master copies "
                            f"(nodes {nodes})")
        return self.violations
