"""Seeded schedule-exploration runner behind ``python -m repro check``.

One invocation sweeps *N* seeds over one benchmark application.  Each
seed builds a fresh simulated cluster whose network jitter (and fault
injector, when faults are requested) is driven by that seed, so the
protocol sees a different message interleaving every time.  Every run
executes under the :class:`~repro.check.monitor.InvariantMonitor` and
the :class:`~repro.check.oracle.SingleCopyOracle`, and its program
result is compared against one un-instrumented single-JVM reference
run.  Any divergence anywhere is a consistency violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..apps import raytracer, series, tsp
from ..dsm.protocol import DsmConfig
from ..lang import compile_source
from ..rewriter import rewrite_application
from ..runtime.config import RuntimeConfig
from ..runtime.javasplit import JavaSplitRuntime, run_original
from ..sim.engine import NS_PER_MS
from .faults import FaultInjector, FaultPlan, FaultStats
from .monitor import InvariantMonitor, Violation
from .oracle import SingleCopyOracle

#: Jitter applied to every checked run so distinct seeds genuinely
#: explore distinct message interleavings (the base latency model is
#: deterministic).  Well under the transport RTO, so ARQ stays quiet on
#: fault-free links.
DEFAULT_JITTER_NS = 2 * NS_PER_MS

#: Small app instances: the point is schedule diversity across many
#: seeds, not workload realism, so each run must stay cheap.
APP_SOURCES: Dict[str, Callable[[], str]] = {
    "series": lambda: series.make_source(n_coeffs=24, steps=40, n_threads=3),
    "tsp": lambda: tsp.make_source(n_cities=7, n_threads=3, seed=42),
    "raytracer": lambda: raytracer.make_source(
        resolution=8, n_threads=3, n_spheres=16, seed=1234),
}


@dataclass
class SeedResult:
    """Outcome of one seeded run."""

    seed: int
    violations: List[Violation] = field(default_factory=list)
    result_matches: bool = True
    console_matches: bool = True
    error: Optional[str] = None
    simulated_ns: int = 0
    messages: int = 0
    installs_checked: int = 0
    finals_checked: int = 0
    faults: Optional[FaultStats] = None

    @property
    def ok(self) -> bool:
        return (not self.violations and self.result_matches
                and self.console_matches and self.error is None)


@dataclass
class CheckReport:
    """Everything one ``repro check`` sweep learned."""

    app: str
    faults: str
    nodes: int
    results: List[SeedResult] = field(default_factory=list)
    reference_result: Any = None

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failed_seeds(self) -> List[int]:
        return [r.seed for r in self.results if not r.ok]

    def summary(self) -> str:
        n = len(self.results)
        installs = sum(r.installs_checked for r in self.results)
        finals = sum(r.finals_checked for r in self.results)
        injected = sum(
            (r.faults.dropped + r.faults.duplicated + r.faults.delayed
             + r.faults.reordered) if r.faults else 0
            for r in self.results)
        lines = [
            f"check: app={self.app} nodes={self.nodes} "
            f"faults={self.faults or 'none'}",
            f"  seeds run           : {n}",
            f"  installs cross-checked: {installs}",
            f"  final units checked : {finals}",
            f"  faults injected     : {injected}",
        ]
        if self.ok:
            lines.append(f"  verdict             : OK "
                         f"({n}/{n} seeds consistent)")
        else:
            lines.append(f"  verdict             : FAILED "
                         f"(seeds {self.failed_seeds})")
            for r in self.results:
                if r.ok:
                    continue
                if r.error:
                    lines.append(f"  seed {r.seed}: error: {r.error}")
                if not r.result_matches:
                    lines.append(f"  seed {r.seed}: result diverges "
                                 f"from reference")
                if not r.console_matches:
                    lines.append(f"  seed {r.seed}: console diverges "
                                 f"from reference")
                for v in r.violations:
                    lines.append(f"  seed {r.seed}: {v}")
        return "\n".join(lines)


def app_source(app: str) -> str:
    """MiniJava source of one named benchmark at checking scale."""
    try:
        return APP_SOURCES[app]()
    except KeyError:
        raise ValueError(
            f"unknown app {app!r} (choose from "
            f"{', '.join(sorted(APP_SOURCES))})") from None


def run_check(
    app: str = "series",
    seeds: int = 25,
    faults: str = "",
    nodes: int = 3,
    fault_rate: float = 0.05,
    timestamp_mode: str = "scalar",
    region_elems: Optional[int] = None,
    jitter_ns: int = DEFAULT_JITTER_NS,
    strict: bool = False,
    progress: Optional[Callable[[SeedResult], None]] = None,
) -> CheckReport:
    """Sweep ``seeds`` seeded schedules of ``app`` under the oracle.

    ``faults`` is a comma-separated subset of drop/dup/delay/reorder
    (``""`` checks clean runs).  Each seeded run attaches the fault
    injector (seeded by the run seed), the invariant monitor, and the
    single-copy oracle; results are compared against one
    ``run_original`` reference execution.
    """
    if seeds < 1:
        raise ValueError("seeds must be >= 1 (a 0-seed sweep proves nothing)")
    if faults:
        FaultPlan.from_spec(faults)  # reject bad specs before any run
    source = app_source(app)
    classfiles = compile_source(source)
    reference = run_original(classfiles=classfiles)
    ref_console = sorted(reference.console)
    rewritten = rewrite_application(classfiles)

    report = CheckReport(app=app, faults=faults, nodes=nodes,
                         reference_result=reference.result)
    for seed in range(seeds):
        plan = FaultPlan.from_spec(faults, seed=seed, rate=fault_rate) \
            if faults else FaultPlan(seed=seed)
        config = RuntimeConfig(
            num_nodes=nodes,
            net_jitter_ns=jitter_ns,
            seed=seed,
            reliable_transport=plan.lossy,
            dsm=DsmConfig(
                timestamp_mode=timestamp_mode,
                array_region_elems=region_elems,
            ),
        )
        sr = SeedResult(seed=seed)
        runtime = JavaSplitRuntime(rewritten, config)
        injector = FaultInjector.attach(runtime, plan) if faults else None
        monitor = InvariantMonitor.attach(runtime, strict=strict)
        oracle = SingleCopyOracle.attach(runtime)
        try:
            run = runtime.run()
            sr.simulated_ns = run.simulated_ns
            sr.messages = run.net.messages if run.net else 0
            sr.result_matches = run.result == reference.result
            sr.console_matches = sorted(run.console) == ref_console
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            if strict:
                raise
            sr.error = f"{type(exc).__name__}: {exc}"
        monitor.finalize()
        if sr.error is None:
            # A crashed run leaves the heap mid-protocol; skip the
            # convergence scan and report the crash itself.
            oracle.finalize()
        sr.violations = list(monitor.violations) + list(oracle.violations)
        sr.installs_checked = oracle.checked_installs
        sr.finals_checked = oracle.checked_final
        if injector is not None:
            sr.faults = injector.stats
        report.results.append(sr)
        if progress is not None:
            progress(sr)
    return report
