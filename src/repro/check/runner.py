"""Seeded schedule-exploration runner behind ``python -m repro check``.

One invocation sweeps *N* seeds over one benchmark application.  Each
seed builds a fresh simulated cluster whose network jitter (and fault
injector, when faults are requested) is driven by that seed, so the
protocol sees a different message interleaving every time.  Every run
executes under the :class:`~repro.check.monitor.InvariantMonitor` and
the :class:`~repro.check.oracle.SingleCopyOracle`, and its program
result is compared against one un-instrumented single-JVM reference
run.  Any divergence anywhere is a consistency violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..apps import raytracer, series, tsp
from ..dsm.protocol import DsmConfig
from ..lang import compile_source
from ..rewriter import rewrite_application
from ..runtime.config import RuntimeConfig
from ..runtime.javasplit import JavaSplitRuntime, run_original
from ..sim.engine import NS_PER_MS
from .faults import FaultInjector, FaultPlan, FaultStats, parse_time_ns
from .monitor import InvariantMonitor, Violation
from .oracle import SingleCopyOracle

#: Jitter applied to every checked run so distinct seeds genuinely
#: explore distinct message interleavings (the base latency model is
#: deterministic).  Well under the transport RTO, so ARQ stays quiet on
#: fault-free links.
DEFAULT_JITTER_NS = 2 * NS_PER_MS

#: Small app instances: the point is schedule diversity across many
#: seeds, not workload realism, so each run must stay cheap.
APP_SOURCES: Dict[str, Callable[[], str]] = {
    "series": lambda: series.make_source(n_coeffs=24, steps=40, n_threads=3),
    "tsp": lambda: tsp.make_source(n_cities=7, n_threads=3, seed=42),
    "raytracer": lambda: raytracer.make_source(
        resolution=8, n_threads=3, n_spheres=16, seed=1234),
}

#: Benign-race suppressions auto-applied by ``repro check --race``.
#: tsp reads ``MinTour.best`` outside the lock *by design* (a stale
#: bound is safe, see apps/tsp.py) — a true race under happens-before,
#: documented and suppressed rather than hidden from the detector.
APP_RACE_SUPPRESS: Dict[str, "tuple[str, ...]"] = {
    "tsp": ("MinTour.best",),
}


@dataclass
class SeedResult:
    """Outcome of one seeded run."""

    seed: int
    violations: List[Violation] = field(default_factory=list)
    result_matches: bool = True
    console_matches: bool = True
    # False when the app cannot promise exact output under a kill (tsp's
    # shared job queue loses taken-but-unprocessed jobs with a worker);
    # the run must still finish with an oracle-clean heap.
    result_required: bool = True
    error: Optional[str] = None
    simulated_ns: int = 0
    messages: int = 0
    installs_checked: int = 0
    finals_checked: int = 0
    faults: Optional[FaultStats] = None
    ft: Optional[Dict[str, Any]] = None
    # Race-detector summary when the sweep runs with --race; the three
    # benchmark apps are well-synchronized, so any unsuppressed report
    # is a detector false positive (or a real regression) and fails the
    # seed.
    race: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        exact = ((self.result_matches and self.console_matches)
                 or not self.result_required)
        race_clean = self.race is None or self.race["races"] == 0
        return (not self.violations and exact and race_clean
                and self.error is None)


@dataclass
class CheckReport:
    """Everything one ``repro check`` sweep learned."""

    app: str
    faults: str
    nodes: int
    kill: Optional[str] = None
    locality: str = ""
    policy: str = ""
    race: bool = False
    obs: bool = False
    backend: str = "sim"
    results: List[SeedResult] = field(default_factory=list)
    reference_result: Any = None

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failed_seeds(self) -> List[int]:
        return [r.seed for r in self.results if not r.ok]

    def summary(self) -> str:
        n = len(self.results)
        installs = sum(r.installs_checked for r in self.results)
        finals = sum(r.finals_checked for r in self.results)
        injected = sum(
            (r.faults.dropped + r.faults.duplicated + r.faults.delayed
             + r.faults.reordered) if r.faults else 0
            for r in self.results)
        kills = sum(len(r.faults.detached) if r.faults else 0
                    for r in self.results)
        recovered = sum(
            len(r.ft["recoveries"]) if r.ft else 0 for r in self.results)
        lines = [
            f"check: app={self.app} nodes={self.nodes} "
            f"faults={self.faults or 'none'}"
            + (f" kill={self.kill}" if self.kill else "")
            + (f" locality={self.locality}" if self.locality else "")
            + (f" policy={self.policy}" if self.policy else "")
            + (" race=on" if self.race else "")
            + (" obs=on" if self.obs else "")
            + (f" backend={self.backend}" if self.backend != "sim" else ""),
            f"  seeds run           : {n}",
            f"  installs cross-checked: {installs}",
            f"  final units checked : {finals}",
            f"  faults injected     : {injected}",
        ]
        if self.race:
            events = sum(r.race["events_observed"] for r in self.results
                         if r.race)
            suppressed = sum(r.race["suppressed"] for r in self.results
                             if r.race)
            races = sum(r.race["races"] for r in self.results if r.race)
            lines.append(f"  race detector       : {races} reports, "
                         f"{suppressed} suppressed (benign), "
                         f"{events} access events")
        if self.kill or kills:
            lines.append(f"  nodes killed        : {kills} "
                         f"({recovered} recovered)")
        if self.ok:
            lines.append(f"  verdict             : OK "
                         f"({n}/{n} seeds consistent)")
        else:
            lines.append(f"  verdict             : FAILED "
                         f"(seeds {self.failed_seeds})")
            for r in self.results:
                if r.ok:
                    continue
                if r.error:
                    lines.append(f"  seed {r.seed}: error: {r.error}")
                if not r.result_matches and r.result_required:
                    lines.append(f"  seed {r.seed}: result diverges "
                                 f"from reference")
                if not r.console_matches and r.result_required:
                    lines.append(f"  seed {r.seed}: console diverges "
                                 f"from reference")
                if r.race is not None and r.race["races"]:
                    lines.append(
                        f"  seed {r.seed}: {r.race['races']} unexpected "
                        f"race report(s): "
                        + ", ".join(d["variable"]
                                    for d in r.race["reports"][:3]))
                for v in r.violations:
                    lines.append(f"  seed {r.seed}: {v}")
        return "\n".join(lines)


#: Component names accepted by a ``--locality`` spec.
LOCALITY_COMPONENTS = ("migration", "prefetch", "aggregation")


def parse_locality(spec: str) -> Dict[str, bool]:
    """Resolve a ``--locality`` spec to RuntimeConfig knob values.

    The spec is a comma-separated subset of migration/prefetch/
    aggregation; ``all`` switches on every component; ``""`` leaves the
    subsystem off entirely (no agent attached).
    """
    knobs = {c: False for c in LOCALITY_COMPONENTS}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if part == "all":
            for c in LOCALITY_COMPONENTS:
                knobs[c] = True
        elif part in knobs:
            knobs[part] = True
        else:
            raise ValueError(
                f"unknown locality component {part!r} (choose from "
                f"{', '.join(LOCALITY_COMPONENTS)} or 'all')")
    return {f"locality_{c}": v for c, v in knobs.items()}


#: Component names accepted by a ``--policy`` spec.
POLICY_COMPONENTS = ("update", "migratory", "broadcast")


def parse_policy(spec: str) -> Dict[str, bool]:
    """Resolve a ``--policy`` spec to RuntimeConfig knob values.

    The spec is a comma-separated subset of update/migratory/broadcast;
    ``all`` switches on every policy; ``""`` leaves the subsystem off
    entirely (no agent attached)."""
    knobs = {c: False for c in POLICY_COMPONENTS}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if part == "all":
            for c in POLICY_COMPONENTS:
                knobs[c] = True
        elif part in knobs:
            knobs[part] = True
        else:
            raise ValueError(
                f"unknown coherence policy {part!r} (choose from "
                f"{', '.join(POLICY_COMPONENTS)} or 'all')")
    return {f"policy_{c}": v for c, v in knobs.items()}


def app_source(app: str) -> str:
    """MiniJava source of one named benchmark at checking scale."""
    try:
        return APP_SOURCES[app]()
    except KeyError:
        raise ValueError(
            f"unknown app {app!r} (choose from "
            f"{', '.join(sorted(APP_SOURCES))})") from None


def parse_kill(kill: str, seed: int, nodes: int,
               master: int = 0) -> "tuple[int, int]":
    """Resolve a ``--kill`` spec to (node, simulated time).

    ``NODE@TIME`` (e.g. ``2@5ms``) kills that node at that time in every
    seeded run; ``random`` picks a seed-deterministic non-master node
    and a kill time spread over the first ~30 ms (the window in which
    the checking-scale apps do their work).
    """
    if kill == "random":
        candidates = [n for n in range(nodes) if n != master]
        if not candidates:
            raise ValueError("kill=random needs a non-master node")
        node = candidates[seed % len(candidates)]
        at_ns = (1 + (seed * 7) % 30) * NS_PER_MS
        return node, at_ns
    node_text, sep, time_text = kill.partition("@")
    if not sep or not node_text or not time_text:
        raise ValueError(
            f"bad kill spec {kill!r} (NODE@TIME, e.g. 2@5ms, or 'random')")
    node = int(node_text)
    if not (0 <= node < nodes):
        raise ValueError(f"kill node {node} out of range for {nodes} nodes")
    if node == master:
        raise ValueError(
            f"kill node {node} is the master; that is not survivable")
    return node, parse_time_ns(time_text)


def run_check(
    app: str = "series",
    seeds: int = 25,
    faults: str = "",
    nodes: int = 3,
    fault_rate: float = 0.05,
    timestamp_mode: str = "scalar",
    region_elems: Optional[int] = None,
    jitter_ns: int = DEFAULT_JITTER_NS,
    strict: bool = False,
    kill: Optional[str] = None,
    locality: str = "",
    policy: str = "",
    race: bool = False,
    obs: bool = False,
    backend: str = "sim",
    jit: bool = False,
    jit_threshold: int = 10,
    check_elim: int = 0,
    progress: Optional[Callable[[SeedResult], None]] = None,
) -> CheckReport:
    """Sweep ``seeds`` seeded schedules of ``app`` under the oracle.

    ``faults`` is a comma-separated subset of drop/dup/delay/reorder
    (``""`` checks clean runs).  Each seeded run attaches the fault
    injector (seeded by the run seed), the invariant monitor, and the
    single-copy oracle; results are compared against one
    ``run_original`` reference execution.

    ``kill`` (``NODE@TIME`` or ``random``) unplugs one worker mid-run
    with the fault-tolerance subsystem enabled: the run must still
    complete with an oracle-clean heap.  Exact result equality is
    additionally required except for tsp, whose shared job queue may
    legitimately lose a taken-but-unprocessed job with the worker.

    ``locality`` (comma-separated subset of migration/prefetch/
    aggregation, or ``all``) runs every seed with those adaptive-
    locality components switched on, putting the migration handoff,
    bulk-fetch, and aggregation paths under the same oracle.

    ``policy`` (comma-separated subset of update/migratory/broadcast,
    or ``all``) runs every seed with those adaptive coherence policies
    switched on, putting the classifier, the write-update push and
    read-mostly broadcast installs, and the migratory ownership
    handoffs under the same oracle and monitor.

    ``race`` runs every seed with the data-race detector on.  The
    benchmark apps are well-synchronized (tsp's deliberately-racy
    ``MinTour.best`` bound read is auto-suppressed, see
    :data:`APP_RACE_SUPPRESS`), so any report fails the seed: a zero-
    report sweep is the detector's no-false-positive guarantee.

    ``obs`` runs every seed with all three telemetry knobs on (metrics,
    spans, stall profiling), putting the observability instrumentation
    itself under the oracle: telemetry must never perturb protocol
    correctness.

    ``backend`` selects the transport backend for every seeded run:
    ``"sim"`` (default) or ``"proc"`` (one OS process per node, every
    frame over real sockets; ``--kill`` then SIGKILLs the worker
    process).  The oracle and reference comparison are unchanged — a
    passing proc sweep certifies the wire plane end to end.
    """
    if seeds < 1:
        raise ValueError("seeds must be >= 1 (a 0-seed sweep proves nothing)")
    # A detach can come from either --kill or a detach:NODE@TIME fault
    # spec; both run with the fault-tolerance subsystem enabled (without
    # it, losing a node strands the run in DeadlockError by design).
    killing = kill is not None
    if faults:
        probe = FaultPlan.from_spec(faults)  # reject bad specs before any run
        killing = killing or probe.detach_node is not None
    if kill is not None:
        parse_kill(kill, seed=0, nodes=nodes)  # reject bad specs early
    if killing and timestamp_mode != "scalar":
        raise ValueError("node kills require the scalar timestamp mode "
                         "(the only mode the ft subsystem supports)")
    if race and timestamp_mode != "scalar":
        raise ValueError("--race requires the scalar timestamp mode "
                         "(the only mode the race detector supports)")
    locality_knobs = parse_locality(locality)
    policy_knobs = parse_policy(policy)
    source = app_source(app)
    classfiles = compile_source(source)
    reference = run_original(classfiles=classfiles)
    ref_console = sorted(reference.console)
    rewritten = rewrite_application(classfiles, check_elim=check_elim)

    report = CheckReport(app=app, faults=faults, nodes=nodes, kill=kill,
                         locality=locality, policy=policy, race=race,
                         obs=obs, backend=backend,
                         reference_result=reference.result)
    for seed in range(seeds):
        plan = FaultPlan.from_spec(faults, seed=seed, rate=fault_rate) \
            if faults else FaultPlan(seed=seed)
        if kill is not None:
            plan.detach_node, plan.detach_at_ns = \
                parse_kill(kill, seed=seed, nodes=nodes)
        config = RuntimeConfig(
            num_nodes=nodes,
            net_jitter_ns=jitter_ns,
            seed=seed,
            reliable_transport=plan.lossy,
            ft_enabled=killing,
            race_detect=race,
            race_suppress=APP_RACE_SUPPRESS.get(app, ()) if race else (),
            obs_metrics=obs,
            obs_spans=obs,
            obs_profile=obs,
            transport_backend=backend,
            jit_enable=jit,
            jit_threshold=jit_threshold,
            jit_check_elim=check_elim,
            **locality_knobs,
            **policy_knobs,
            dsm=DsmConfig(
                timestamp_mode=timestamp_mode,
                array_region_elems=region_elems,
            ),
        )
        sr = SeedResult(seed=seed,
                        result_required=not (killing and app == "tsp"))
        runtime = JavaSplitRuntime(rewritten, config)
        injector = FaultInjector.attach(runtime, plan) \
            if (faults or kill) else None
        monitor = InvariantMonitor.attach(runtime, strict=strict)
        oracle = SingleCopyOracle.attach(runtime)
        try:
            run = runtime.run()
            sr.simulated_ns = run.simulated_ns
            sr.messages = run.net.messages if run.net else 0
            sr.ft = run.ft
            sr.race = run.race
            sr.result_matches = run.result == reference.result
            sr.console_matches = sorted(run.console) == ref_console
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            if strict:
                raise
            sr.error = f"{type(exc).__name__}: {exc}"
        monitor.finalize()
        if sr.error is None:
            # A crashed run leaves the heap mid-protocol; skip the
            # convergence scan and report the crash itself.
            oracle.finalize()
        sr.violations = list(monitor.violations) + list(oracle.violations)
        sr.installs_checked = oracle.checked_installs
        sr.finals_checked = oracle.checked_final
        if injector is not None:
            sr.faults = injector.stats
        report.results.append(sr)
        if progress is not None:
            progress(sr)
    return report


# ---------------------------------------------------------------------------
# Racy-program sweeps (``python -m repro race``)
# ---------------------------------------------------------------------------

@dataclass
class RaceSeedResult:
    """Outcome of one seeded detector run over a racy program."""

    seed: int
    races: int = 0
    suppressed: int = 0
    reports: List[Dict[str, Any]] = field(default_factory=list)
    events: int = 0
    simulated_ns: int = 0
    error: Optional[str] = None

    def ok(self, expect: str) -> bool:
        if self.error is not None:
            return False
        return self.races == 0 if expect == "free" else self.races >= 1


@dataclass
class RaceSweepReport:
    """One ``repro race`` sweep: the detector's verdict over N seeds."""

    name: str
    expect: str                  # "race" or "free"
    nodes: int
    mode: str = "both"
    results: List[RaceSeedResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok(self.expect) for r in self.results)

    @property
    def failed_seeds(self) -> List[int]:
        return [r.seed for r in self.results if not r.ok(self.expect)]

    def summary(self) -> str:
        n = len(self.results)
        races = sum(r.races for r in self.results)
        suppressed = sum(r.suppressed for r in self.results)
        events = sum(r.events for r in self.results)
        lines = [
            f"race: {self.name} nodes={self.nodes} mode={self.mode} "
            f"expect={self.expect}",
            f"  seeds run           : {n}",
            f"  race reports        : {races} "
            f"({suppressed} suppressed as benign)",
            f"  access events       : {events}",
        ]
        if self.ok:
            what = ("no races reported" if self.expect == "free"
                    else "seeded race caught on every seed")
            lines.append(f"  verdict             : OK ({what})")
        else:
            what = ("unexpected race report" if self.expect == "free"
                    else "missed seeded race")
            lines.append(f"  verdict             : FAILED "
                         f"({what}, seeds {self.failed_seeds})")
            for r in self.results:
                if r.error:
                    lines.append(f"  seed {r.seed}: error: {r.error}")
        return "\n".join(lines)


def run_race_check(
    source: str,
    name: str = "program",
    seeds: int = 8,
    nodes: int = 3,
    mode: str = "both",
    expect: str = "race",
    suppress: "tuple[str, ...]" = (),
    jitter_ns: int = DEFAULT_JITTER_NS,
    progress: Optional[Callable[[RaceSeedResult], None]] = None,
) -> RaceSweepReport:
    """Sweep ``seeds`` seeded schedules of one program under the race
    detector alone.

    ``expect="race"`` (the positive-control mode for the deliberately-
    racy examples) fails any seed with zero reports — a missed seeded
    race; ``expect="free"`` fails any seed with a report.  Unlike
    :func:`run_check`, no consistency oracle or invariant monitor is
    attached: a racy program is outside the data-race-free contract the
    single-copy oracle assumes, so its heap may legitimately diverge.
    """
    if seeds < 1:
        raise ValueError("seeds must be >= 1 (a 0-seed sweep proves nothing)")
    if expect not in ("race", "free"):
        raise ValueError(f"expect must be 'race' or 'free', not {expect!r}")
    rewritten = rewrite_application(compile_source(source))
    report = RaceSweepReport(name=name, expect=expect, nodes=nodes, mode=mode)
    for seed in range(seeds):
        config = RuntimeConfig(
            num_nodes=nodes,
            net_jitter_ns=jitter_ns,
            seed=seed,
            race_detect=True,
            race_mode=mode,
            race_suppress=suppress,
        )
        sr = RaceSeedResult(seed=seed)
        try:
            run = JavaSplitRuntime(rewritten, config).run()
            assert run.race is not None
            sr.races = run.race["races"]
            sr.suppressed = run.race["suppressed"]
            sr.reports = run.race["reports"]
            sr.events = run.race["events_observed"]
            sr.simulated_ns = run.simulated_ns
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            sr.error = f"{type(exc).__name__}: {exc}"
        report.results.append(sr)
        if progress is not None:
            progress(sr)
    return report
