"""Sequentially-consistent single-copy reference oracle.

The oracle maintains a *single-copy DSM*: a golden snapshot of every
shared coherency unit at every version the protocol ever published
(served in a fetch reply or produced by a diff application at the home).
Because the home applies diffs in a total order per coherency unit, this
replay is exactly the state a trivial one-copy memory would hold after
the same logical access/sync trace.

Against that reference the oracle cross-checks:

* **install integrity** — the data a cache installs from a fetch reply
  is bit-identical to the golden state of the version the home served
  (catches transport corruption, mis-applied diffs, version mix-ups);
* **final heap convergence** — when the run ends, every clean replica
  matches the golden state of its version, and every master matches the
  golden state of its current version.

Benign data races are handled soundly: a home that is written between
two releases may serve the *same* version with different contents (LRC
permits either value for a racy read), so the golden store keeps every
distinct snapshot observed per version and installs must match one of
them.  Replicas that were written locally since their last install are
excluded from the final convergence check — their divergence from the
base version is exactly the pending multiple-writer diff.

Use together with :class:`~repro.check.monitor.InvariantMonitor`; the
runner (:mod:`repro.check.runner`) additionally compares the program's
result and console output against an un-instrumented single-JVM run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..dsm.objectstate import ObjState
from ..dsm.protocol import M_DIFF, M_FETCH_REPLY, DsmEngine
from ..jvm.heap import ArrayObj, Obj
from ..net.message import (M_LOC_BULK_REPLY, M_LOC_FWD_DIFF, M_POL_BCAST,
                           M_POL_PUSH, Message)
from .monitor import Violation

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.javasplit import JavaSplitRuntime

#: Slot-level stand-in for NaN so snapshots compare by equality.
_NAN = ("double", "nan")


def normalize_slots(slots) -> Tuple[Any, ...]:
    """A comparable snapshot of heap slots: refs become their gids."""
    out = []
    for v in slots:
        if isinstance(v, (Obj, ArrayObj)):
            hdr = v.header
            gid = hdr.gid if hdr is not None else 0
            # An unpromoted ref has no global identity; it can never have
            # crossed the wire, so tag it by local identity.
            out.append(("ref", gid) if gid else ("localref", id(v)))
        elif isinstance(v, float) and math.isnan(v):
            out.append(_NAN)
        else:
            out.append(v)
    return tuple(out)


class SingleCopyOracle:
    """Cross-checks a runtime's DSM traffic against a single-copy heap."""

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        # Optional callback fired on every violation with (node, kind,
        # detail) — the flight recorder hooks in here to dump postmortems.
        self.on_violation: Optional[Any] = None
        self._engine = None
        self._workers: List[Any] = []
        # key -> version -> list of acceptable normalized snapshots.
        self._golden: Dict[Any, Dict[int, List[Tuple[Any, ...]]]] = {}
        # Replicas written locally since their last install: (node, key).
        self._tainted: set = set()
        self.checked_installs = 0
        self.checked_final = 0

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, runtime: "JavaSplitRuntime") -> "SingleCopyOracle":
        oracle = cls()
        oracle._engine = runtime.engine
        for worker in runtime.workers:
            oracle._wrap(worker.dsm)
            oracle._workers.append(worker)
        # Workers that join mid-run publish versions too; without
        # wrapping them their diffs would look "never published" to
        # every prefetch/install check on the original nodes.
        runtime.worker_added_hooks.append(oracle._on_worker_added)
        obs = getattr(runtime, "obs", None)
        if obs is not None and getattr(obs, "flight_enabled", False):
            oracle.on_violation = obs.dump_on_violation
        return oracle

    def _on_worker_added(self, worker: Any) -> None:
        self._wrap(worker.dsm)
        self._workers.append(worker)

    # ------------------------------------------------------------------
    def report(self, node: int, kind: str, detail: str) -> None:
        self.violations.append(Violation(
            self._engine.now if self._engine else 0, node, kind, detail
        ))
        if self.on_violation is not None:
            self.on_violation(node, kind, detail)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        head = (f"oracle: {self.checked_installs} installs, "
                f"{self.checked_final} final replicas checked")
        if not self.violations:
            return head + ", ok"
        lines = [head + f", {len(self.violations)} violation(s)"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    @staticmethod
    def _unit_slots(dsm: DsmEngine, obj: Any,
                    region: Optional[int]) -> list:
        """The raw slots of one coherency unit (whole object or region)."""
        if region is None:
            return obj.data if isinstance(obj, ArrayObj) else obj.fields
        reg = dsm._regions[obj.header.gid]
        lo, hi = reg.bounds(region, len(obj.data))
        return obj.data[lo:hi]

    def _record(self, key: Any, version: int,
                snapshot: Tuple[Any, ...]) -> None:
        versions = self._golden.setdefault(key, {})
        snaps = versions.setdefault(version, [])
        if snapshot not in snaps:
            snaps.append(snapshot)

    # ------------------------------------------------------------------
    def _wrap(self, dsm: DsmEngine) -> None:
        node = dsm.node_id
        has_loc = dsm.locality is not None

        # --- home: serving a fetch publishes a version ----------------
        serve_fetch = dsm._serve_fetch

        def recording_serve_fetch(requester, obj, region=None):
            serve_fetch(requester, obj, region)
            gid = obj.header.gid
            key = gid if region is None else (gid, region)
            if region is None:
                version = obj.header.version
            else:
                version = dsm._regions[gid].versions[region]
            self._record(key, version, normalize_slots(
                self._unit_slots(dsm, obj, region)))

        dsm._serve_fetch = recording_serve_fetch

        # --- home: applying a diff creates a version ------------------
        # Wrap the registered handler so monitor + oracle compose.
        on_diff = dsm.transport._handlers[M_DIFF]

        def record_applied_entries(payload):
            """Record the post-apply golden state of every entry this
            node mastered; shared by M_DIFF and the locality forward."""
            for gid, _diff, region in payload["entries"]:
                obj = dsm.cache.get(gid)
                if obj is None:  # pragma: no cover - _on_diff raised
                    continue
                if has_loc and region is None \
                        and obj.header.state != ObjState.HOME:
                    # Split/forwarded entry (not applied here) or one
                    # granted away by the migration the apply triggered
                    # (the grant wrap below records that version).
                    continue
                if has_loc and region is None and \
                        dsm.locality.folds_own_diff(gid, payload["writer"]):
                    # The agent dropped this entry: it is the node's own
                    # pre-grant diff, already folded into the master it
                    # installed — nothing new was published.
                    continue
                key = gid if region is None else (gid, region)
                if region is None:
                    version = obj.header.version
                else:
                    version = dsm._regions[gid].versions[region]
                self._record(key, version, normalize_slots(
                    self._unit_slots(dsm, obj, region)))

        def recording_on_diff(msg: Message):
            on_diff(msg)
            record_applied_entries(msg.payload)

        dsm.transport._handlers[M_DIFF] = recording_on_diff

        # --- locality: forwarded applies and migration grants ---------
        on_fwd_diff = dsm.transport._handlers.get(M_LOC_FWD_DIFF)
        if on_fwd_diff is not None:
            def recording_on_fwd_diff(msg: Message,
                                      _inner=on_fwd_diff):
                _inner(msg)
                record_applied_entries(msg.payload)

            dsm.transport._handlers[M_LOC_FWD_DIFF] = recording_on_fwd_diff

        if has_loc:
            # A grant publishes the unit at its (possibly just-bumped)
            # version; the new home may serve that version before any
            # further diff touches it.
            grant_unit = dsm._loc_grant_unit

            def recording_grant_unit(gid):
                unit = grant_unit(gid)
                if unit is not None:
                    obj = dsm.cache.get(gid)
                    self._record(gid, unit["version"], normalize_slots(
                        self._unit_slots(dsm, obj, None)))
                return unit

            dsm._loc_grant_unit = recording_grant_unit

            # A grant install may fold the grantee's own in-flight
            # diffs into the master (install_grants keeps the local
            # working copy): that folded state is published at the
            # grant's version and is what later serves start from.
            ft_install = dsm.ft_install_master

            def recording_ft_install_master(unit):
                ft_install(unit)
                if unit.get("region") is not None:
                    return
                obj = dsm.cache.get(unit["gid"])
                if obj is not None and obj.header is not None \
                        and obj.header.state == ObjState.HOME:
                    self._record(unit["gid"], obj.header.version,
                                 normalize_slots(
                                     self._unit_slots(dsm, obj, None)))

            dsm.ft_install_master = recording_ft_install_master

            # A bulk prefetch serve publishes versions like a fetch
            # serve does...
            serve_bulk = dsm._serve_bulk

            def recording_serve_bulk(requester, gids):
                units = serve_bulk(requester, gids)
                for unit in units:
                    obj = dsm.cache.get(unit["gid"])
                    if obj is None:  # pragma: no cover - just served
                        continue
                    self._record(unit["gid"], unit["version"],
                                 normalize_slots(
                                     self._unit_slots(dsm, obj, None)))
                return units

            dsm._serve_bulk = recording_serve_bulk

        # ...and a prefetch install must match the served golden state.
        on_bulk_reply = dsm.transport._handlers.get(M_LOC_BULK_REPLY)
        if on_bulk_reply is not None:
            def checking_on_bulk_reply(msg: Message,
                                       _inner=on_bulk_reply):
                _inner(msg)
                for unit in msg.payload["units"]:
                    gid = unit["gid"]
                    obj = dsm.cache.get(gid)
                    if obj is None or obj.header is None:
                        continue
                    if obj.header.state != ObjState.VALID \
                            or obj.header.version != unit["version"]:
                        continue  # agent rejected this unit as stale
                    self._tainted.discard((node, gid))
                    got = normalize_slots(self._unit_slots(dsm, obj, None))
                    self._check(node, gid, unit["version"], got,
                                "prefetch install")
                    self.checked_installs += 1

            dsm.transport._handlers[M_LOC_BULK_REPLY] = \
                checking_on_bulk_reply

        # --- policy: a push/broadcast publishes its version at the
        # home and must install golden state at the receiver ------------
        if dsm.policy is not None:
            publish_unit = dsm.policy.publish_unit

            def recording_publish_unit(gid, _inner=publish_unit):
                unit = _inner(gid)
                if unit is not None:
                    obj = dsm.cache.get(gid)
                    self._record(gid, unit["version"], normalize_slots(
                        self._unit_slots(dsm, obj, None)))
                return unit

            dsm.policy.publish_unit = recording_publish_unit

            def checking_on_pol_push(msg: Message, _inner=None):
                # The agent's install counters disambiguate a guarded
                # skip (stale push, dirty replica, fetch in flight)
                # from an actual install.
                before = (dsm.stats.pol_push_installs
                          + dsm.stats.pol_bcast_installs)
                _inner(msg)
                after = (dsm.stats.pol_push_installs
                         + dsm.stats.pol_bcast_installs)
                if after == before:
                    return  # push rejected by the install guards
                gid = msg.payload["gid"]
                obj = dsm.cache.get(gid)
                if obj is None:  # pragma: no cover - just installed
                    return
                self._tainted.discard((node, gid))
                got = normalize_slots(self._unit_slots(dsm, obj, None))
                self._check(node, gid, msg.payload["version"], got,
                            "push install")
                self.checked_installs += 1

            for mtype in (M_POL_PUSH, M_POL_BCAST):
                inner = dsm.transport._handlers.get(mtype)
                if inner is not None:
                    dsm.transport._handlers[mtype] = (
                        lambda msg, _inner=inner:
                        checking_on_pol_push(msg, _inner=_inner))

        # --- cache: a flushed local write taints the replica ----------
        transport_send = dsm.transport.send

        def tainting_send(dst, msg_type, payload=None, size_bytes=0):
            if msg_type == M_DIFF:
                for gid, _diff, region in payload["entries"]:
                    key = gid if region is None else (gid, region)
                    self._tainted.add((node, key))
            return transport_send(dst, msg_type, payload, size_bytes)

        dsm.transport.send = tainting_send

        # --- cache: installs must match the served golden state -------
        on_fetch_reply = dsm.transport._handlers[M_FETCH_REPLY]

        def checking_on_fetch_reply(msg: Message):
            on_fetch_reply(msg)
            p = msg.payload
            gid = p["gid"]
            region = p.get("region")
            key = gid if region is None else (gid, region)
            self._tainted.discard((node, key))
            obj = dsm.cache.get(gid)
            if obj is None:  # pragma: no cover - reply always installs
                return
            version = p["version"]
            got = normalize_slots(self._unit_slots(dsm, obj, region))
            self._check(node, key, version, got, "install")
            self.checked_installs += 1

        dsm.transport._handlers[M_FETCH_REPLY] = checking_on_fetch_reply

        # A write between installs also diverges the replica from its
        # base version (multiple-writer): taint on twin creation.
        write_check = dsm.write_check

        def tainting_write_check(thread, ref, value, index=None):
            ok, cost = write_check(thread, ref, value, index)
            hdr = ref.header
            if ok and hdr is not None and hdr.gid:
                if hdr.state == ObjState.VALID or hdr.gid in dsm._regions:
                    key = hdr.gid
                    if index is not None and hdr.gid in dsm._regions:
                        reg = dsm._regions[hdr.gid]
                        r = reg.region_of(index)
                        if 0 <= r < reg.n_regions:
                            key = (hdr.gid, r)
                    self._tainted.add((node, key))
            return ok, cost

        dsm.write_check = tainting_write_check

    # ------------------------------------------------------------------
    def _check(self, node: int, key: Any, version: int,
               got: Tuple[Any, ...], what: str) -> None:
        known = self._golden.get(key, {})
        snaps = known.get(version)
        if snaps is None:
            self.report(node, "oracle-version",
                        f"{what} of {key!r} at version {version}, which "
                        f"the single-copy reference never published "
                        f"(known: {sorted(known)})")
            return
        if got not in snaps:
            self.report(node, "oracle-state",
                        f"{what} of {key!r} at version {version} diverges "
                        f"from the single-copy reference: got {got!r}, "
                        f"expected one of {snaps!r}")

    # ------------------------------------------------------------------
    def finalize(self) -> List[Violation]:
        """Final heap convergence: clean replicas and masters must match
        the single-copy reference at their versions.

        Workers that died mid-run are skipped: recovery re-homed their
        masters, and their frozen cache left the system."""
        for worker in self._workers:
            if getattr(worker, "dead", False):
                continue
            dsm = worker.dsm
            node = dsm.node_id
            for gid, obj in dsm.cache.items():
                hdr = obj.header
                if hdr is None or not hdr.gid:
                    continue
                reg = dsm._regions.get(gid)
                if reg is not None:
                    for r, state in enumerate(reg.states):
                        key = (gid, r)
                        if (node, key) in self._tainted:
                            continue
                        if r in reg.twins or key in dsm._dirty:
                            continue
                        if key in dsm._dirty_home:
                            continue  # adopted master with merged writes
                        if state == ObjState.INVALID:
                            continue
                        if state == ObjState.VALID and key not in self._golden:
                            continue  # never crossed the wire
                        got = normalize_slots(
                            self._unit_slots(dsm, obj, r))
                        if key in self._golden:
                            self._check(node, key, reg.versions[r], got,
                                        "final state")
                            self.checked_final += 1
                    continue
                if hdr.state == ObjState.HOME:
                    if hdr.version in self._golden.get(gid, {}) \
                            and gid not in dsm._dirty_home:
                        got = normalize_slots(self._unit_slots(
                            dsm, obj, None))
                        self._check(node, gid, hdr.version, got, "master")
                        self.checked_final += 1
                elif hdr.state == ObjState.VALID:
                    if (node, gid) in self._tainted:
                        continue
                    if hdr.twin is not None or gid in dsm._dirty:
                        continue
                    got = normalize_slots(self._unit_slots(dsm, obj, None))
                    self._check(node, gid, hdr.version, got, "final state")
                    self.checked_final += 1
        return self.violations
