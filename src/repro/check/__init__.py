"""Correctness checking: consistency oracle, invariant monitor, faults.

The paper's central claim is that MTS-HLRC (scalar timestamps + bounded
write-notice storage) preserves lazy-release-consistency semantics while
cutting metadata cost.  This package checks that claim dynamically on
every run it is attached to:

* :class:`InvariantMonitor` — protocol invariants observed from the
  outside (version monotonicity, single-home ownership, diff base
  versions, the §3.1 scalar-timestamp fence, bounded notice storage).
* :class:`SingleCopyOracle` — a sequentially-updated single-copy
  reference heap; every fetch reply installed at a cache is cross-checked
  against the reference state for the served version, and final heap
  state must converge.
* :class:`FaultInjector` / :class:`FaultPlan` — seeded drop / duplicate /
  delay / reorder / detach faults layered under :class:`SimNetwork`
  (requires ``reliable_transport`` so the ARQ layer can mask them).
* :func:`run_check` — the seeded schedule-exploration runner behind
  ``python -m repro check``.
* :func:`run_race_check` — the race-detector sweep behind
  ``python -m repro race`` (positive controls for ``repro.race``; no
  oracle is attached, because a racy program is outside the
  data-race-free contract the single-copy oracle assumes).
"""

from .faults import FaultInjector, FaultPlan, FaultStats
from .monitor import InvariantMonitor, MonitorError, Violation
from .oracle import SingleCopyOracle, normalize_slots
from .runner import (
    CheckReport,
    RaceSeedResult,
    RaceSweepReport,
    SeedResult,
    app_source,
    run_check,
    run_race_check,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "MonitorError",
    "normalize_slots",
    "app_source",
    "InvariantMonitor",
    "Violation",
    "SingleCopyOracle",
    "CheckReport",
    "SeedResult",
    "RaceSeedResult",
    "RaceSweepReport",
    "run_check",
    "run_race_check",
]
