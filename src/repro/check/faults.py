"""Deterministic fault injection under the simulated network.

Layers seeded faults between :class:`~repro.net.simnet.SimNetwork` and
its endpoints by wrapping ``network.send``:

* **drop** — the frame silently disappears;
* **duplicate** — the frame is delivered twice (second copy after a
  random extra delay);
* **delay** — the frame is held back before entering the network;
* **reorder** — a short random extra delay, sized so adjacent frames on
  a link overtake each other (the jitter mode of ``SimNetwork`` applied
  per-frame, independent of the run's base configuration);
* **detach** — a node is unplugged mid-protocol at a chosen simulated
  time (its in-flight messages are dropped by the network).

All randomness comes from one ``numpy`` generator seeded by
:class:`FaultPlan.seed`, so a failing schedule replays exactly.

Loopback frames (``src == dst``) are never faulted — a workstation does
not lose messages to itself — and drop/duplicate faults require the
endpoints to run the reliable transport (``reliable_transport=True`` in
:class:`~repro.runtime.config.RuntimeConfig`), whose ARQ layer masks
them; without it a dropped protocol message simply deadlocks the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, TYPE_CHECKING

import numpy as np

from ..net.message import Message
from ..net.simnet import SimNetwork
from ..sim.engine import NS_PER_MS

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.javasplit import JavaSplitRuntime

#: Fault kinds accepted by :class:`FaultPlan.from_spec`.
FAULT_KINDS = ("drop", "dup", "delay", "reorder", "detach")

_TIME_SUFFIXES = (("ns", 1), ("us", 1_000), ("ms", 1_000_000),
                  ("s", 1_000_000_000))


def parse_time_ns(text: str) -> int:
    """Parse a simulated-time literal like ``5ms``, ``250us``, ``1.5s``,
    or a bare nanosecond count."""
    text = text.strip()
    for suffix, scale in _TIME_SUFFIXES:
        if text.endswith(suffix) and text != suffix:
            return int(float(text[: -len(suffix)]) * scale)
    return int(text)


@dataclass
class FaultPlan:
    """What to inject, how often, and with which seed."""

    seed: int = 0
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    delay_ns: int = 8 * NS_PER_MS        # max held-back time
    reorder_rate: float = 0.0
    reorder_window_ns: int = 2 * NS_PER_MS
    detach_node: Optional[int] = None
    detach_at_ns: Optional[int] = None

    @classmethod
    def from_spec(cls, faults: str, seed: int = 0,
                  rate: float = 0.05) -> "FaultPlan":
        """Build a plan from a comma-separated kind list, e.g.
        ``"drop,reorder,dup"`` (the CLI's ``--faults`` syntax).  A node
        kill is spelled ``detach:NODE@TIME``, e.g. ``detach:2@5ms``."""
        plan = cls(seed=seed)
        for part in filter(None, (k.strip() for k in faults.split(","))):
            kind, _, arg = part.partition(":")
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} (choose from "
                    f"{', '.join(FAULT_KINDS)})")
            if kind != "detach" and arg:
                raise ValueError(f"fault kind {kind!r} takes no argument")
            if kind == "drop":
                plan.drop_rate = rate
            elif kind == "dup":
                plan.dup_rate = rate
            elif kind == "delay":
                plan.delay_rate = rate
            elif kind == "reorder":
                plan.reorder_rate = max(rate, 0.2)
            elif kind == "detach":
                node_text, sep, time_text = arg.partition("@")
                if not sep or not node_text or not time_text:
                    raise ValueError(
                        "detach takes a node and a time "
                        "(detach:NODE@TIME, e.g. detach:2@5ms)")
                plan.detach_node = int(node_text)
                plan.detach_at_ns = parse_time_ns(time_text)
        return plan

    @property
    def lossy(self) -> bool:
        """True when the plan can lose or duplicate frames (needs ARQ)."""
        return (self.drop_rate > 0 or self.dup_rate > 0
                or self.detach_node is not None)


@dataclass
class FaultStats:
    """What the injector actually did."""

    seen: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    reordered: int = 0
    detached: List[int] = field(default_factory=list)


class FaultInjector:
    """Wraps one :class:`SimNetwork`'s send path with seeded faults."""

    def __init__(self, network: SimNetwork, plan: FaultPlan) -> None:
        self.network = network
        self.plan = plan
        self.stats = FaultStats()
        self._runtime: Optional["JavaSplitRuntime"] = None
        self._rng = np.random.default_rng(plan.seed)
        self._orig_send = network.send
        network.send = self._send  # type: ignore[method-assign]
        if plan.detach_node is not None:
            at = plan.detach_at_ns if plan.detach_at_ns is not None else 0
            network.engine.schedule_at(
                max(at, network.engine.now),
                lambda: self._detach(plan.detach_node))

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, runtime: "JavaSplitRuntime",
               plan: FaultPlan) -> "FaultInjector":
        """Attach to a runtime's network; validates ARQ is on for lossy
        plans (a dropped frame without retransmission deadlocks)."""
        if plan.lossy and not runtime.config.reliable_transport:
            raise ValueError(
                "lossy fault plans (drop/dup/detach) require "
                "RuntimeConfig(reliable_transport=True)")
        injector = cls(runtime.network, plan)
        injector._runtime = runtime
        return injector

    def detach_now(self, node_id: int) -> None:
        """Unplug a node immediately (scriptable from tests)."""
        self._detach(node_id)

    def _detach(self, node_id: int) -> None:
        if self.network.is_attached(node_id):
            self.network.detach(node_id)
            self.stats.detached.append(node_id)
            # A detach models a crash, not a cable pull: when attached to
            # a runtime, halt the node's CPUs too (fail-stop), so the
            # "dead" node cannot keep computing — and locally completing
            # threads — during the failure-detection window.
            if self._runtime is not None:
                self._runtime.workers[node_id].node.halt()

    # ------------------------------------------------------------------
    def _send(self, msg: Message) -> None:
        if msg.src == msg.dst:
            self._orig_send(msg)
            return
        self.stats.seen += 1
        p = self.plan
        r = self._rng.random()
        if r < p.drop_rate:
            self.stats.dropped += 1
            return
        extra = 0
        if self._rng.random() < p.delay_rate:
            self.stats.delayed += 1
            extra += int(self._rng.integers(1, max(2, p.delay_ns)))
        if self._rng.random() < p.reorder_rate:
            self.stats.reordered += 1
            extra += int(self._rng.integers(
                1, max(2, p.reorder_window_ns)))
        self._dispatch(msg, extra)
        if self._rng.random() < p.dup_rate:
            self.stats.duplicated += 1
            dup_extra = int(self._rng.integers(
                1, max(2, p.reorder_window_ns or p.delay_ns)))
            self._dispatch(msg, extra + dup_extra)

    def _dispatch(self, msg: Message, extra_ns: int) -> None:
        if extra_ns <= 0:
            self._orig_send(msg)
            return
        def later() -> None:
            try:
                self._orig_send(msg)
            except KeyError:
                # Destination (or source) detached while held back.
                self.network.stats.dropped += 1
        self.network.engine.schedule(extra_ns, later)

    # ------------------------------------------------------------------
    def detach_injector(self) -> None:
        """Restore the network's original send path."""
        self.network.send = self._orig_send  # type: ignore[method-assign]
