"""Type checker / resolver for MiniJava.

Annotates the AST in place: every expression gets a ``type``; ``VarRef``
nodes are resolved to locals (with slot numbers), implicit-``this``
fields, or static fields; ``Call`` nodes get owner class + dispatch kind;
implicit ``int``→``double`` widenings become explicit :class:`Conv`
nodes; ``arr.length`` becomes :class:`ArrayLength`.  The code generator
then never has to guess.

The bootstrap classes (Object/Thread/Math/Sys/String) enter the class
table from their class files, so programs type-check against exactly the
signatures the VM executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..jvm.classfile import ClassFile
from ..jvm.intrinsics import bootstrap_classfiles
from .ast_nodes import (
    ArrayIndex, ArrayLength, Assign, Binary, Block, BoolLit, Break, Call,
    Cast, ClassDecl, Continue, Conv, DoubleLit, Expr, ExprStmt, FieldAccess,
    FieldDecl, For, If, InstanceOf, IntLit, MethodDecl, New, NewArray,
    NullLit, Param, Program, Return, Stmt, StrLit, SuperCall, SyncBlock,
    This, Unary, VarDecl, VarRef, While,
)

NUMERIC = ("int", "double")


class TypeError_(SyntaxError):
    """A MiniJava type error (named to avoid clashing with builtins)."""


def is_array(t: str) -> bool:
    """True for T[] type names."""
    return t.endswith("[]")


def elem_of(t: str) -> str:
    """Element type of an array type name."""
    return t[:-2]


@dataclass
class FieldSig:
    """Resolved field signature with its declaring class."""
    name: str
    type: str
    is_static: bool
    declaring: str
    volatile: bool = False


@dataclass
class MethodSig:
    """Resolved method signature with its declaring class."""
    name: str
    params: List[str]
    ret: str
    is_static: bool
    is_native: bool
    declaring: str


@dataclass
class ClassInfo:
    """One class's member tables for resolution."""
    name: str
    super_name: Optional[str]
    fields: Dict[str, FieldSig] = field(default_factory=dict)
    methods: Dict[str, MethodSig] = field(default_factory=dict)
    is_bootstrap: bool = False


class ClassTable:
    """All known classes: program classes + bootstrap signatures."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassInfo] = {}
        for cf in bootstrap_classfiles():
            self._add_classfile(cf)

    def _add_classfile(self, cf: ClassFile) -> None:
        info = ClassInfo(cf.name, cf.super_name, is_bootstrap=True)
        for f in cf.fields:
            info.fields[f.name] = FieldSig(f.name, f.type, f.is_static, cf.name, f.volatile)
        for m in cf.methods.values():
            info.methods[m.name] = MethodSig(
                m.name, list(m.params), m.ret, m.is_static, m.is_native, cf.name
            )
        self.classes[cf.name] = info

    def add_class(self, decl: ClassDecl) -> ClassInfo:
        """Register a program class; rejects duplicates."""
        if decl.name in self.classes:
            raise TypeError_(f"duplicate class {decl.name} (line {decl.line})")
        info = ClassInfo(decl.name, decl.super_name)
        for f in decl.fields:
            if f.name in info.fields:
                raise TypeError_(f"duplicate field {decl.name}.{f.name}")
            info.fields[f.name] = FieldSig(f.name, f.type, f.is_static, decl.name, f.volatile)
        for m in decl.methods:
            if m.name in info.methods:
                raise TypeError_(f"duplicate method {decl.name}.{m.name}")
            info.methods[m.name] = MethodSig(
                m.name, [p.type for p in m.params], m.ret,
                m.is_static, m.is_native, decl.name,
            )
        self.classes[decl.name] = info
        return info

    # ------------------------------------------------------------------
    def get(self, name: str) -> ClassInfo:
        """ClassInfo by name, or a type error."""
        try:
            return self.classes[name]
        except KeyError:
            raise TypeError_(f"unknown class {name!r}") from None

    def is_class(self, name: str) -> bool:
        """True if the name is a known class."""
        return name in self.classes

    def supers(self, name: str):
        """The class and all its ancestors, nearest first."""
        current: Optional[str] = name
        while current is not None:
            info = self.get(current)
            yield info
            current = info.super_name

    def find_field(self, class_name: str, field_name: str) -> Optional[FieldSig]:
        """Resolve a field through the superclass chain."""
        for info in self.supers(class_name):
            f = info.fields.get(field_name)
            if f is not None:
                return f
        return None

    def find_method(self, class_name: str, method_name: str) -> Optional[MethodSig]:
        """Resolve a method through the superclass chain."""
        for info in self.supers(class_name):
            m = info.methods.get(method_name)
            if m is not None:
                return m
        return None

    def is_subclass(self, sub: str, sup: str) -> bool:
        """Subtype test (Object is a universal supertype)."""
        if sup == "Object":
            return True
        return any(info.name == sup for info in self.supers(sub))

    def validate_hierarchy(self) -> None:
        """Reject unknown superclasses and cycles."""
        for name, info in self.classes.items():
            seen = {name}
            current = info.super_name
            while current is not None:
                if current in seen:
                    raise TypeError_(f"inheritance cycle through {name}")
                if current not in self.classes:
                    raise TypeError_(
                        f"class {name} extends unknown class {current}"
                    )
                seen.add(current)
                current = self.classes[current].super_name

    def is_valid_type(self, t: str) -> bool:
        """True for primitives, known classes, and their arrays."""
        base = t
        while base.endswith("[]"):
            base = base[:-2]
        return base in ("int", "double", "boolean", "str") or base in self.classes


class _Scope:
    """Lexically scoped locals with method-lifetime slot numbering."""

    def __init__(self, checker: "Checker") -> None:
        self.checker = checker
        self.stack: List[Dict[str, tuple[int, str]]] = [{}]
        self.next_slot = 0

    def push(self) -> None:
        self.stack.append({})

    def pop(self) -> None:
        self.stack.pop()

    def declare(self, name: str, type_: str, line: int) -> int:
        for frame in self.stack:
            if name in frame:
                raise TypeError_(
                    f"variable {name!r} already declared (line {line})"
                )
        slot = self.next_slot
        self.next_slot += 1
        self.stack[-1][name] = (slot, type_)
        return slot

    def lookup(self, name: str) -> Optional[tuple[int, str]]:
        for frame in reversed(self.stack):
            if name in frame:
                return frame[name]
        return None


class Checker:
    """Checks one program; leaves the AST annotated for codegen."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.table = ClassTable()
        for decl in program.classes:
            self.table.add_class(decl)
        self.table.validate_hierarchy()
        self._class: Optional[ClassDecl] = None
        self._method: Optional[MethodDecl] = None
        self._scope: Optional[_Scope] = None
        self._loop_depth = 0

    # ------------------------------------------------------------------
    def check(self) -> ClassTable:
        """Run the checker over every class; returns the class table."""
        for decl in self.program.classes:
            self._check_class(decl)
        return self.table

    def _err(self, node, msg: str) -> TypeError_:
        return TypeError_(f"{msg} (line {node.line})")

    # ------------------------------------------------------------------
    def _check_class(self, decl: ClassDecl) -> None:
        self._class = decl
        for f in decl.fields:
            if not self.table.is_valid_type(f.type):
                raise self._err(f, f"unknown field type {f.type!r}")
            if f.type == "void":
                raise self._err(f, "field of type void")
        has_ctor = any(m.is_constructor for m in decl.methods)
        if not has_ctor:
            # Implicit no-arg constructor; validated against super in codegen.
            pass
        for m in decl.methods:
            self._check_method(decl, m)
        self._class = None

    def _check_method(self, decl: ClassDecl, m: MethodDecl) -> None:
        if m.is_native:
            raise self._err(
                m,
                f"user-defined native methods are not supported "
                f"({decl.name}.{m.name}); the paper's rewriter has the same "
                f"restriction (§4)",
            )
        if m.is_synchronized and m.is_static:
            raise self._err(m, "static synchronized methods are unsupported")
        if m.ret != "void" and not self.table.is_valid_type(m.ret):
            raise self._err(m, f"unknown return type {m.ret!r}")
        self._method = m
        self._scope = _Scope(self)
        if not m.is_static:
            self._scope.declare("this", decl.name, m.line)
        for p in m.params:
            if not self.table.is_valid_type(p.type) or p.type == "void":
                raise self._err(p, f"bad parameter type {p.type!r}")
            p.slot = self._scope.declare(p.name, p.type, p.line)  # type: ignore[attr-defined]
        assert m.body is not None
        self._check_block(m.body, top_level=True)
        m.max_locals = self._scope.next_slot  # type: ignore[attr-defined]
        if m.ret != "void" and not self._always_returns(m.body):
            raise self._err(m, f"method {m.name} may not return a value")
        self._method = None
        self._scope = None

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _check_block(self, block: Block, top_level: bool = False) -> None:
        assert self._scope is not None
        self._scope.push()
        for i, stmt in enumerate(block.stmts):
            if isinstance(stmt, SuperCall) and not (
                top_level and i == 0 and self._method is not None
                and self._method.is_constructor
            ):
                raise self._err(
                    stmt, "super(...) only as the first statement of a "
                    "constructor"
                )
            self._check_stmt(stmt)
        self._scope.pop()

    def _check_stmt(self, stmt: Stmt) -> None:
        assert self._scope is not None and self._method is not None
        if isinstance(stmt, Block):
            self._check_block(stmt)
        elif isinstance(stmt, VarDecl):
            if not self.table.is_valid_type(stmt.type) or stmt.type == "void":
                raise self._err(stmt, f"bad variable type {stmt.type!r}")
            if stmt.init is not None:
                t = self._check_expr(stmt.init)
                stmt.init = self._coerce(stmt.init, t, stmt.type, stmt)
            stmt.slot = self._scope.declare(stmt.name, stmt.type, stmt.line)  # type: ignore[attr-defined]
        elif isinstance(stmt, ExprStmt):
            assert stmt.expr is not None
            self._check_expr(stmt.expr)
        elif isinstance(stmt, If):
            self._require_boolean(stmt.cond, "if condition")
            self._check_stmt(stmt.then)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise)
        elif isinstance(stmt, While):
            self._require_boolean(stmt.cond, "while condition")
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, For):
            self._scope.push()
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.cond is not None:
                self._require_boolean(stmt.cond, "for condition")
            if stmt.update is not None:
                self._check_expr(stmt.update)
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
            self._scope.pop()
        elif isinstance(stmt, Return):
            ret = self._method.ret
            if stmt.value is None:
                if ret != "void":
                    raise self._err(stmt, f"must return a {ret}")
            else:
                if ret == "void":
                    raise self._err(stmt, "void method returns a value")
                t = self._check_expr(stmt.value)
                stmt.value = self._coerce(stmt.value, t, ret, stmt)
        elif isinstance(stmt, (Break, Continue)):
            if self._loop_depth == 0:
                raise self._err(stmt, "break/continue outside a loop")
        elif isinstance(stmt, SyncBlock):
            t = self._check_expr(stmt.lock)
            if not self._is_ref(t):
                raise self._err(stmt, f"cannot synchronize on {t}")
            self._check_stmt(stmt.body)
        elif isinstance(stmt, SuperCall):
            decl = self._class
            assert decl is not None
            super_name = decl.super_name
            sig = self.table.find_method(super_name, "<init>")
            if sig is None:
                raise self._err(stmt, f"no constructor in {super_name}")
            self._check_args(stmt, stmt.args, sig.params, f"super of {decl.name}")
            stmt.super_class = super_name  # type: ignore[attr-defined]
        else:  # pragma: no cover - parser produces no other statements
            raise self._err(stmt, f"unknown statement {type(stmt).__name__}")

    def _require_boolean(self, expr: Expr, what: str) -> None:
        t = self._check_expr(expr)
        if t != "boolean":
            raise self._err(expr, f"{what} must be boolean, got {t}")

    def _always_returns(self, stmt: Stmt) -> bool:
        if isinstance(stmt, Return):
            return True
        if isinstance(stmt, Block):
            return any(self._always_returns(s) for s in stmt.stmts)
        if isinstance(stmt, If):
            return (
                stmt.otherwise is not None
                and self._always_returns(stmt.then)
                and self._always_returns(stmt.otherwise)
            )
        if isinstance(stmt, SyncBlock):
            return self._always_returns(stmt.body)
        if isinstance(stmt, While):
            # `while (true)` without break is treated as returning.
            return (
                isinstance(stmt.cond, BoolLit) and stmt.cond.value
                and not self._has_break(stmt.body)
            )
        return False

    def _has_break(self, stmt: Stmt) -> bool:
        if isinstance(stmt, Break):
            return True
        if isinstance(stmt, Block):
            return any(self._has_break(s) for s in stmt.stmts)
        if isinstance(stmt, If):
            return self._has_break(stmt.then) or (
                stmt.otherwise is not None and self._has_break(stmt.otherwise)
            )
        if isinstance(stmt, SyncBlock):
            return self._has_break(stmt.body)
        return False  # nested loops consume their own breaks

    # ------------------------------------------------------------------
    # Type utilities
    # ------------------------------------------------------------------
    def _is_ref(self, t: str) -> bool:
        return t == "str" or t == "null" or is_array(t) or (
            t not in ("int", "double", "boolean", "void") and self.table.is_class(t)
        )

    def _assignable(self, src: str, dst: str) -> bool:
        if src == dst:
            return True
        if src == "int" and dst == "double":
            return True
        if src == "null" and self._is_ref(dst):
            return True
        if dst == "Object" and self._is_ref(src):
            return True
        if self.table.is_class(src) and self.table.is_class(dst):
            return self.table.is_subclass(src, dst)
        return False

    def _coerce(self, expr: Expr, src: str, dst: str, at) -> Expr:
        if src == dst:
            return expr
        if src == "int" and dst == "double":
            conv = Conv(line=expr.line, kind="i2d", operand=expr)
            conv.type = "double"
            return conv
        if not self._assignable(src, dst):
            raise self._err(at, f"cannot assign {src} to {dst}")
        return expr

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _check_expr(self, expr: Expr) -> str:
        t = self._infer(expr)
        expr.type = t
        return t

    def _infer(self, expr: Expr) -> str:
        assert self._scope is not None and self._class is not None
        if isinstance(expr, IntLit):
            return "int"
        if isinstance(expr, DoubleLit):
            return "double"
        if isinstance(expr, BoolLit):
            return "boolean"
        if isinstance(expr, StrLit):
            return "str"
        if isinstance(expr, NullLit):
            return "null"
        if isinstance(expr, This):
            if self._method is not None and self._method.is_static:
                raise self._err(expr, "this in a static method")
            return self._class.name
        if isinstance(expr, VarRef):
            return self._infer_varref(expr)
        if isinstance(expr, FieldAccess):
            return self._infer_field_access(expr)
        if isinstance(expr, ArrayIndex):
            at = self._check_expr(expr.arr)
            if not is_array(at):
                raise self._err(expr, f"indexing a non-array ({at})")
            it = self._check_expr(expr.index)
            if it != "int":
                raise self._err(expr, f"array index must be int, got {it}")
            return elem_of(at)
        if isinstance(expr, Call):
            return self._infer_call(expr)
        if isinstance(expr, New):
            return self._infer_new(expr)
        if isinstance(expr, NewArray):
            if not self.table.is_valid_type(expr.elem_type):
                raise self._err(expr, f"unknown array type {expr.elem_type!r}")
            lt = self._check_expr(expr.length)
            if lt != "int":
                raise self._err(expr, "array length must be int")
            return expr.elem_type + "[]"
        if isinstance(expr, Binary):
            return self._infer_binary(expr)
        if isinstance(expr, Unary):
            return self._infer_unary(expr)
        if isinstance(expr, Assign):
            return self._infer_assign(expr)
        if isinstance(expr, Cast):
            return self._infer_cast(expr)
        if isinstance(expr, InstanceOf):
            t = self._check_expr(expr.operand)
            if not self._is_ref(t):
                raise self._err(expr, "instanceof on a non-reference")
            self.table.get(expr.klass)
            return "boolean"
        if isinstance(expr, Conv):
            self._check_expr(expr.operand)
            return "double" if expr.kind == "i2d" else "int"
        if isinstance(expr, ArrayLength):
            return "int"
        raise self._err(expr, f"unknown expression {type(expr).__name__}")

    def _infer_varref(self, expr: VarRef) -> str:
        assert self._scope is not None and self._class is not None
        hit = self._scope.lookup(expr.name)
        if hit is not None:
            slot, t = hit
            expr.resolved = "local"
            expr.slot = slot
            return t
        f = self.table.find_field(self._class.name, expr.name)
        if f is not None:
            if f.is_static:
                expr.resolved = "static"
                expr.klass = f.declaring
                return f.type
            if self._method is not None and self._method.is_static:
                raise self._err(
                    expr, f"instance field {expr.name} in a static method"
                )
            expr.resolved = "field"
            expr.klass = f.declaring
            return f.type
        if self.table.is_class(expr.name):
            raise self._err(
                expr, f"class name {expr.name} used as a value"
            )
        raise self._err(expr, f"undefined variable {expr.name!r}")

    def _infer_field_access(self, expr: FieldAccess) -> str:
        assert self._scope is not None
        # ClassName.field (static)?
        if (
            isinstance(expr.obj, VarRef)
            and self._scope.lookup(expr.obj.name) is None
            and self.table.is_class(expr.obj.name)
        ):
            f = self.table.find_field(expr.obj.name, expr.name)
            if f is None or not f.is_static:
                raise self._err(
                    expr, f"no static field {expr.obj.name}.{expr.name}"
                )
            expr.obj = None
            expr.klass = f.declaring
            return f.type
        t = self._check_expr(expr.obj)
        if is_array(t):
            if expr.name == "length":
                # Rewrite in place into ArrayLength semantics; codegen keys
                # off klass == "<arraylength>".
                expr.klass = "<arraylength>"
                return "int"
            raise self._err(expr, f"arrays have no field {expr.name!r}")
        if not self.table.is_class(t):
            raise self._err(expr, f"field access on {t}")
        f = self.table.find_field(t, expr.name)
        if f is None:
            raise self._err(expr, f"no field {t}.{expr.name}")
        if f.is_static:
            raise self._err(
                expr, f"static field {expr.name} accessed via instance"
            )
        expr.klass = f.declaring
        return f.type

    def _check_args(self, at, args: List[Expr], params: List[str], what: str) -> None:
        if len(args) != len(params):
            raise self._err(
                at, f"{what}: expected {len(params)} args, got {len(args)}"
            )
        for i, (arg, pt) in enumerate(zip(args, params)):
            t = self._check_expr(arg)
            args[i] = self._coerce(arg, t, pt, at)

    def _infer_call(self, expr: Call) -> str:
        assert self._scope is not None and self._class is not None
        if expr.obj is None:
            # Unqualified call: method of the current class.
            sig = self.table.find_method(self._class.name, expr.name)
            if sig is None:
                raise self._err(expr, f"undefined method {expr.name!r}")
            if sig.is_static:
                expr.kind = "static"
                expr.klass = sig.declaring
            else:
                if self._method is not None and self._method.is_static:
                    raise self._err(
                        expr,
                        f"instance method {expr.name} called from static "
                        f"context",
                    )
                expr.kind = "virtual_this"
                expr.klass = sig.declaring
            self._check_args(expr, expr.args, sig.params, expr.name)
            return sig.ret
        # ClassName.m(...) static?
        if (
            isinstance(expr.obj, VarRef)
            and self._scope.lookup(expr.obj.name) is None
            and self.table.is_class(expr.obj.name)
        ):
            sig = self.table.find_method(expr.obj.name, expr.name)
            if sig is None or not sig.is_static:
                raise self._err(
                    expr, f"no static method {expr.obj.name}.{expr.name}"
                )
            expr.obj = None
            expr.kind = "static"
            expr.klass = sig.declaring
            self._check_args(expr, expr.args, sig.params, expr.name)
            return sig.ret
        t = self._check_expr(expr.obj)
        if t == "str":
            owner = "String"
        elif is_array(t):
            owner = "Object"
        elif self.table.is_class(t):
            owner = t
        else:
            raise self._err(expr, f"method call on {t}")
        sig = self.table.find_method(owner, expr.name)
        if sig is None:
            raise self._err(expr, f"no method {owner}.{expr.name}")
        if sig.is_static:
            raise self._err(
                expr, f"static method {expr.name} called via instance"
            )
        expr.kind = "virtual"
        expr.klass = owner if owner in ("String",) else sig.declaring
        self._check_args(expr, expr.args, sig.params, expr.name)
        return sig.ret

    def _infer_new(self, expr: New) -> str:
        info = self.table.get(expr.klass)
        if info.is_bootstrap and expr.klass not in ("Thread", "Object"):
            raise self._err(expr, f"cannot instantiate {expr.klass}")
        sig = self.table.find_method(expr.klass, "<init>")
        params = sig.params if sig is not None else []
        self._check_args(expr, expr.args, params, f"new {expr.klass}")
        return expr.klass

    def _infer_binary(self, expr: Binary) -> str:
        op = expr.op
        lt = self._check_expr(expr.left)
        rt = self._check_expr(expr.right)
        if op == "+" and ("str" in (lt, rt)):
            expr.str_concat = True  # type: ignore[attr-defined]
            return "str"
        if op in ("+", "-", "*", "/", "%"):
            if lt not in NUMERIC or rt not in NUMERIC:
                raise self._err(expr, f"arithmetic on {lt} and {rt}")
            if "double" in (lt, rt):
                expr.left = self._coerce(expr.left, lt, "double", expr)
                expr.right = self._coerce(expr.right, rt, "double", expr)
                return "double"
            return "int"
        if op in ("<<", ">>", ">>>", "&", "|", "^"):
            if lt != "int" or rt != "int":
                raise self._err(expr, f"bitwise op {op} on {lt} and {rt}")
            return "int"
        if op in ("<", "<=", ">", ">="):
            if lt not in NUMERIC or rt not in NUMERIC:
                raise self._err(expr, f"comparison on {lt} and {rt}")
            if "double" in (lt, rt):
                expr.left = self._coerce(expr.left, lt, "double", expr)
                expr.right = self._coerce(expr.right, rt, "double", expr)
            return "boolean"
        if op in ("==", "!="):
            numeric = lt in NUMERIC and rt in NUMERIC
            both_bool = lt == "boolean" and rt == "boolean"
            refs = self._is_ref(lt) and self._is_ref(rt)
            if numeric:
                if "double" in (lt, rt):
                    expr.left = self._coerce(expr.left, lt, "double", expr)
                    expr.right = self._coerce(expr.right, rt, "double", expr)
            elif not (both_bool or refs):
                raise self._err(expr, f"cannot compare {lt} and {rt}")
            return "boolean"
        if op in ("&&", "||"):
            if lt != "boolean" or rt != "boolean":
                raise self._err(expr, f"{op} on {lt} and {rt}")
            return "boolean"
        raise self._err(expr, f"unknown operator {op}")

    def _infer_unary(self, expr: Unary) -> str:
        t = self._check_expr(expr.operand)
        if expr.op == "-":
            if t not in NUMERIC:
                raise self._err(expr, f"negating {t}")
            return t
        if expr.op == "!":
            if t != "boolean":
                raise self._err(expr, f"! on {t}")
            return "boolean"
        if expr.op == "~":
            if t != "int":
                raise self._err(expr, f"~ on {t}")
            return "int"
        raise self._err(expr, f"unknown unary {expr.op}")

    def _infer_assign(self, expr: Assign) -> str:
        tt = self._check_expr(expr.target)
        if isinstance(expr.target, FieldAccess) and expr.target.klass == "<arraylength>":
            raise self._err(expr, "array length is not assignable")
        vt = self._check_expr(expr.value)
        expr.value = self._coerce(expr.value, vt, tt, expr)
        return tt

    def _infer_cast(self, expr: Cast) -> str:
        t = self._check_expr(expr.operand)
        dst = expr.target_type
        if dst == "int":
            if t == "double":
                return "int"
            if t == "int":
                return "int"
            raise self._err(expr, f"cannot cast {t} to int")
        if dst == "double":
            if t in NUMERIC:
                return "double"
            raise self._err(expr, f"cannot cast {t} to double")
        if self.table.is_class(dst) or is_array(dst):
            if not self._is_ref(t):
                raise self._err(expr, f"cannot cast {t} to {dst}")
            return dst
        raise self._err(expr, f"bad cast target {dst!r}")


def check_program(program: Program) -> ClassTable:
    """Type-check and annotate a parsed program; returns the class table."""
    return Checker(program).check()
