"""Recursive-descent parser for MiniJava.

Produces the AST of :mod:`repro.lang.ast_nodes`.  The parser is
deliberately name-resolution-free: ``Foo.bar`` parses as a field access
on a ``VarRef`` and the checker decides whether ``Foo`` is a variable or
a class.  Compound assignments (``+=``, ``++``) are desugared here into
plain assignments over a re-parsed target expression; targets are
therefore evaluated per occurrence (documented MiniJava deviation —
targets with side effects are rejected by taste, not by the grammar).
"""

from __future__ import annotations

import copy
from typing import List, Optional

from .ast_nodes import (
    ArrayIndex, Assign, Binary, Block, BoolLit, Break, Call, Cast, ClassDecl,
    Continue, DoubleLit, Expr, ExprStmt, FieldAccess, FieldDecl, For, If,
    InstanceOf, IntLit, MethodDecl, New, NewArray, NullLit, Param, Program,
    Return, Stmt, StrLit, SuperCall, SyncBlock, This, Unary, VarDecl, VarRef,
    While,
)
from .lexer import Token, tokenize


class ParseError(SyntaxError):
    """A syntax error, with source position."""
    pass


PRIMITIVE_TYPE_KEYWORDS = ("int", "double", "boolean", "String", "void")

_BIN_LEVELS = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">=", "instanceof"),
    ("<<", ">>", ">>>"),
    ("+", "-"),
    ("*", "/", "%"),
]

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%="}


class Parser:
    """Recursive-descent parser over the token stream."""
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def cur(self) -> Token:
        """The current (unconsumed) token."""
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        """Look ahead without consuming."""
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        """Consume and return the current token."""
        tok = self.cur
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def error(self, msg: str) -> ParseError:
        """Build a ParseError at the current token."""
        t = self.cur
        return ParseError(f"{msg} (got {t.kind} {t.text!r} at line {t.line})")

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        """Consume a token of the given kind/text or fail."""
        t = self.cur
        if t.kind != kind or (text is not None and t.text != text):
            raise self.error(f"expected {text or kind}")
        return self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        """Consume the token if it matches; else None."""
        t = self.cur
        if t.kind == kind and (text is None or t.text == text):
            return self.advance()
        return None

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        """True if the current token matches."""
        t = self.cur
        return t.kind == kind and (text is None or t.text == text)

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def _at_type_start(self) -> bool:
        t = self.cur
        if t.kind == "keyword" and t.text in ("int", "double", "boolean", "String"):
            return True
        return False

    def parse_type(self) -> str:
        """A type name, including [] suffixes."""
        t = self.cur
        if t.kind == "keyword" and t.text in ("int", "double", "boolean"):
            base = self.advance().text
        elif t.kind == "keyword" and t.text == "String":
            self.advance()
            base = "str"
        elif t.kind == "ident":
            base = self.advance().text
        else:
            raise self.error("expected a type")
        while self.at("punct", "[") and self.peek().text == "]":
            self.advance(); self.advance()
            base += "[]"
        return base

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse_program(self) -> Program:
        """The whole compilation unit."""
        prog = Program(line=1)
        while not self.at("eof"):
            prog.classes.append(self.parse_class())
        return prog

    def parse_class(self) -> ClassDecl:
        """One class declaration."""
        start = self.expect("keyword", "class")
        name = self.expect("ident").text
        super_name = "Object"
        if self.accept("keyword", "extends"):
            if self.at("keyword", "String"):
                raise self.error("cannot extend String")
            super_name = self.expect("ident").text
        decl = ClassDecl(line=start.line, name=name, super_name=super_name)
        self.expect("punct", "{")
        while not self.accept("punct", "}"):
            self.parse_member(decl)
        return decl

    def parse_member(self, decl: ClassDecl) -> None:
        """One field, method or constructor declaration."""
        line = self.cur.line
        mods = set()
        while self.cur.kind == "keyword" and self.cur.text in (
            "static", "synchronized", "native", "volatile"
        ):
            mods.add(self.advance().text)
        # Constructor: ClassName '(' ...
        if (
            self.cur.kind == "ident"
            and self.cur.text == decl.name
            and self.peek().text == "("
        ):
            if mods - set():
                if mods & {"static", "native", "volatile"}:
                    raise self.error("bad constructor modifiers")
            self.advance()
            method = self._parse_method_rest(
                name="<init>", ret="void", mods=mods, line=line,
                is_constructor=True,
            )
            decl.methods.append(method)
            return
        if self.accept("keyword", "void"):
            ret = "void"
            name = self.expect("ident").text
            if not self.at("punct", "("):
                raise self.error("void is only valid as a return type")
            decl.methods.append(
                self._parse_method_rest(name, ret, mods, line)
            )
            return
        type_ = self.parse_type()
        name = self.expect("ident").text
        if self.at("punct", "("):
            decl.methods.append(self._parse_method_rest(name, type_, mods, line))
            return
        # Field
        if mods & {"synchronized", "native"}:
            raise self.error("bad field modifiers")
        init = None
        if self.accept("op", "="):
            init = self._parse_const_literal(type_)
        self.expect("punct", ";")
        decl.fields.append(FieldDecl(
            line=line, name=name, type=type_,
            is_static="static" in mods, volatile="volatile" in mods,
            init=init,
        ))

    def _parse_const_literal(self, type_: str):
        neg = bool(self.accept("op", "-"))
        t = self.cur
        if t.kind == "int":
            self.advance()
            v = -int(t.text) if neg else int(t.text)
            return float(v) if type_ == "double" else v
        if t.kind == "double":
            self.advance()
            return -float(t.text) if neg else float(t.text)
        if t.kind == "str" and not neg:
            self.advance()
            return t.text
        if t.kind == "keyword" and t.text in ("true", "false") and not neg:
            self.advance()
            return 1 if t.text == "true" else 0
        raise self.error("field initializers must be literals")

    def _parse_method_rest(
        self, name: str, ret: str, mods: set, line: int,
        is_constructor: bool = False,
    ) -> MethodDecl:
        self.expect("punct", "(")
        params: List[Param] = []
        if not self.at("punct", ")"):
            while True:
                ptype = self.parse_type()
                pname = self.expect("ident").text
                params.append(Param(line=self.cur.line, name=pname, type=ptype))
                if not self.accept("punct", ","):
                    break
        self.expect("punct", ")")
        body = None
        if "native" in mods:
            self.expect("punct", ";")
        else:
            body = self.parse_block()
        return MethodDecl(
            line=line, name=name, params=params, ret=ret, body=body,
            is_static="static" in mods,
            is_synchronized="synchronized" in mods,
            is_native="native" in mods,
            is_constructor=is_constructor,
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_block(self) -> Block:
        """A braced statement list."""
        start = self.expect("punct", "{")
        block = Block(line=start.line)
        while not self.accept("punct", "}"):
            block.stmts.append(self.parse_stmt())
        return block

    def parse_stmt(self) -> Stmt:
        """One statement."""
        t = self.cur
        if t.kind == "punct" and t.text == "{":
            return self.parse_block()
        if t.kind == "keyword":
            if t.text == "if":
                return self._parse_if()
            if t.text == "while":
                return self._parse_while()
            if t.text == "for":
                return self._parse_for()
            if t.text == "return":
                self.advance()
                value = None if self.at("punct", ";") else self.parse_expr()
                self.expect("punct", ";")
                return Return(line=t.line, value=value)
            if t.text == "break":
                self.advance(); self.expect("punct", ";")
                return Break(line=t.line)
            if t.text == "continue":
                self.advance(); self.expect("punct", ";")
                return Continue(line=t.line)
            if t.text == "synchronized":
                self.advance()
                self.expect("punct", "(")
                lock = self.parse_expr()
                self.expect("punct", ")")
                body = self.parse_block()
                return SyncBlock(line=t.line, lock=lock, body=body)
            if t.text == "super" and self.peek().text == "(":
                self.advance(); self.advance()
                args = self._parse_args()
                self.expect("punct", ";")
                return SuperCall(line=t.line, args=args)
        decl = self._try_parse_vardecl()
        if decl is not None:
            return decl
        expr = self.parse_expr()
        self.expect("punct", ";")
        return ExprStmt(line=t.line, expr=expr)

    def _try_parse_vardecl(self) -> Optional[VarDecl]:
        t = self.cur
        is_decl = False
        if self._at_type_start():
            is_decl = True
        elif t.kind == "ident":
            nxt = self.peek()
            if nxt.kind == "ident":
                is_decl = True  # Foo x
            elif nxt.text == "[" and self.peek(2).text == "]":
                is_decl = True  # Foo[] x
        if not is_decl:
            return None
        line = t.line
        type_ = self.parse_type()
        name = self.expect("ident").text
        init = None
        if self.accept("op", "="):
            init = self.parse_expr()
        self.expect("punct", ";")
        return VarDecl(line=line, name=name, type=type_, init=init)

    def _parse_if(self) -> If:
        t = self.expect("keyword", "if")
        self.expect("punct", "(")
        cond = self.parse_expr()
        self.expect("punct", ")")
        then = self.parse_stmt()
        otherwise = None
        if self.accept("keyword", "else"):
            otherwise = self.parse_stmt()
        return If(line=t.line, cond=cond, then=then, otherwise=otherwise)

    def _parse_while(self) -> While:
        t = self.expect("keyword", "while")
        self.expect("punct", "(")
        cond = self.parse_expr()
        self.expect("punct", ")")
        body = self.parse_stmt()
        return While(line=t.line, cond=cond, body=body)

    def _parse_for(self) -> For:
        t = self.expect("keyword", "for")
        self.expect("punct", "(")
        init: Optional[Stmt] = None
        if not self.at("punct", ";"):
            init = self._try_parse_vardecl()
            if init is None:
                init = ExprStmt(line=self.cur.line, expr=self.parse_expr())
                self.expect("punct", ";")
        else:
            self.expect("punct", ";")
        cond = None
        if not self.at("punct", ";"):
            cond = self.parse_expr()
        self.expect("punct", ";")
        update = None
        if not self.at("punct", ")"):
            update = self.parse_expr()
        self.expect("punct", ")")
        body = self.parse_stmt()
        return For(line=t.line, init=init, cond=cond, update=update, body=body)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def parse_expr(self) -> Expr:
        """One expression (assignment level)."""
        return self._parse_assignment()

    def _parse_assignment(self) -> Expr:
        left = self._parse_binary(0)
        t = self.cur
        if t.kind == "op" and t.text in _ASSIGN_OPS:
            self._check_lvalue(left)
            self.advance()
            rhs = self._parse_assignment()
            if t.text != "=":
                rhs = Binary(
                    line=t.line, op=t.text[0],
                    left=copy.deepcopy(left), right=rhs,
                )
            return Assign(line=t.line, target=left, value=rhs)
        if t.kind == "op" and t.text in ("++", "--"):
            self._check_lvalue(left)
            self.advance()
            one = IntLit(line=t.line, value=1)
            rhs = Binary(
                line=t.line, op="+" if t.text == "++" else "-",
                left=copy.deepcopy(left), right=one,
            )
            return Assign(line=t.line, target=left, value=rhs)
        return left

    def _check_lvalue(self, expr: Expr) -> None:
        if not isinstance(expr, (VarRef, FieldAccess, ArrayIndex)):
            raise self.error("invalid assignment target")

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(_BIN_LEVELS):
            return self._parse_unary()
        ops = _BIN_LEVELS[level]
        left = self._parse_binary(level + 1)
        while True:
            t = self.cur
            if "instanceof" in ops and t.kind == "keyword" and t.text == "instanceof":
                self.advance()
                klass = self.expect("ident").text
                left = InstanceOf(line=t.line, operand=left, klass=klass)
                continue
            if t.kind == "op" and t.text in ops:
                self.advance()
                right = self._parse_binary(level + 1)
                left = Binary(line=t.line, op=t.text, left=left, right=right)
                continue
            return left

    def _parse_unary(self) -> Expr:
        t = self.cur
        if t.kind == "op" and t.text in ("-", "!", "~"):
            self.advance()
            operand = self._parse_unary()
            if t.text == "-" and isinstance(operand, IntLit):
                return IntLit(line=t.line, value=-operand.value)
            if t.text == "-" and isinstance(operand, DoubleLit):
                return DoubleLit(line=t.line, value=-operand.value)
            return Unary(line=t.line, op=t.text, operand=operand)
        # Cast: '(' type ')' unary
        if t.kind == "punct" and t.text == "(":
            nxt = self.peek()
            if nxt.kind == "keyword" and nxt.text in ("int", "double", "boolean"):
                self.advance()
                target = self.parse_type()
                self.expect("punct", ")")
                return Cast(line=t.line, target_type=target,
                            operand=self._parse_unary())
            if nxt.kind == "ident" and self.peek(2).text == ")":
                after = self.peek(3)
                if after.kind in ("ident", "int", "double", "str") or (
                    after.kind == "keyword" and after.text in ("this", "new")
                ) or after.text == "(":
                    self.advance()
                    target = self.parse_type()
                    self.expect("punct", ")")
                    return Cast(line=t.line, target_type=target,
                                operand=self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            if self.accept("punct", "."):
                name = self._expect_member_name()
                if self.at("punct", "("):
                    self.advance()
                    args = self._parse_args()
                    expr = Call(line=self.cur.line, obj=expr, name=name,
                                args=args)
                else:
                    expr = FieldAccess(line=self.cur.line, obj=expr, name=name)
                continue
            if self.at("punct", "[") and self.peek().text != "]":
                self.advance()
                idx = self.parse_expr()
                self.expect("punct", "]")
                expr = ArrayIndex(line=self.cur.line, arr=expr, index=idx)
                continue
            return expr

    def _expect_member_name(self) -> str:
        t = self.cur
        if t.kind == "ident":
            return self.advance().text
        # `length` is an identifier, but allow keyword-ish member names
        raise self.error("expected member name")

    def _parse_args(self) -> List[Expr]:
        args: List[Expr] = []
        if not self.at("punct", ")"):
            while True:
                args.append(self.parse_expr())
                if not self.accept("punct", ","):
                    break
        self.expect("punct", ")")
        return args

    def _parse_primary(self) -> Expr:
        t = self.cur
        if t.kind == "int":
            self.advance()
            return IntLit(line=t.line, value=int(t.text))
        if t.kind == "double":
            self.advance()
            return DoubleLit(line=t.line, value=float(t.text))
        if t.kind == "str":
            self.advance()
            return StrLit(line=t.line, value=t.text)
        if t.kind == "keyword":
            if t.text == "true":
                self.advance(); return BoolLit(line=t.line, value=True)
            if t.text == "false":
                self.advance(); return BoolLit(line=t.line, value=False)
            if t.text == "null":
                self.advance(); return NullLit(line=t.line)
            if t.text == "this":
                self.advance(); return This(line=t.line)
            if t.text == "new":
                return self._parse_new()
            if t.text == "String":
                # String.xxx static-style call is not supported; strings
                # are used via instance methods.
                raise self.error("String used as a value")
        if t.kind == "punct" and t.text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect("punct", ")")
            return expr
        if t.kind == "ident":
            name = self.advance().text
            if self.at("punct", "("):
                self.advance()
                args = self._parse_args()
                return Call(line=t.line, obj=None, name=name, args=args)
            return VarRef(line=t.line, name=name)
        raise self.error("expected an expression")

    def _parse_new(self) -> Expr:
        t = self.expect("keyword", "new")
        # new T[expr] ([])* | new Class(args)
        if self.cur.kind == "keyword" and self.cur.text in ("int", "double", "boolean", "String"):
            base = "str" if self.cur.text == "String" else self.cur.text
            self.advance()
        else:
            base = self.expect("ident").text
        if self.at("punct", "["):
            self.advance()
            length = self.parse_expr()
            self.expect("punct", "]")
            elem = base
            while self.at("punct", "[") and self.peek().text == "]":
                self.advance(); self.advance()
                elem += "[]"
            return NewArray(line=t.line, elem_type=elem, length=length)
        self.expect("punct", "(")
        args = self._parse_args()
        return New(line=t.line, klass=base, args=args)


def parse(source: str) -> Program:
    """Parse MiniJava source text into a :class:`Program` AST."""
    return Parser(source).parse_program()
