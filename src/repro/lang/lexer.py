"""Lexer for the mini-Java source language.

The language (informally "MiniJava" throughout this repo) is the subset
of Java the paper's benchmark programs need: classes with single
inheritance, static/instance fields, methods, constructors, arrays,
``synchronized`` methods and blocks, ``Thread`` subclassing,
``wait``/``notify``, and the usual expression/statement forms.  Programs
in this dialect compile to mini-JVM bytecode and then flow — as bytecode
only — into the JavaSplit rewriter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


class LexError(SyntaxError):
    pass


KEYWORDS = frozenset({
    "class", "extends", "static", "synchronized", "native", "volatile",
    "void", "int", "double", "boolean", "String",
    "new", "return", "if", "else", "while", "for", "break", "continue",
    "this", "super", "null", "true", "false", "instanceof",
})

# Multi-character operators, longest first.
OPERATORS = (
    ">>>=", "<<=", ">>=", ">>>",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "<<", ">>",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
)

PUNCT = "(){}[];,."


@dataclass(frozen=True)
class Token:
    kind: str   # 'ident', 'keyword', 'int', 'double', 'str', 'op', 'punct', 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Tokenize MiniJava source; raises :class:`LexError` with position."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg: str) -> LexError:
        return LexError(f"{msg} at line {line}, col {col}")

    while i < n:
        c = source[i]
        # Whitespace
        if c in " \t\r":
            i += 1; col += 1
            continue
        if c == "\n":
            i += 1; line += 1; col = 1
            continue
        # Comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        start_line, start_col = line, col
        # Identifiers / keywords
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, start_line, start_col))
            col += j - i
            i = j
            continue
        # Numbers
        if c.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            is_double = False
            if j < n and source[j] == "." and j + 1 < n and source[j + 1].isdigit():
                is_double = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "+-":
                    k += 1
                if k < n and source[k].isdigit():
                    is_double = True
                    j = k
                    while j < n and source[j].isdigit():
                        j += 1
            text = source[i:j]
            tokens.append(Token("double" if is_double else "int", text,
                                start_line, start_col))
            col += j - i
            i = j
            continue
        # String literals
        if c == '"':
            j = i + 1
            buf = []
            while j < n and source[j] != '"':
                if source[j] == "\n":
                    raise error("newline in string literal")
                if source[j] == "\\":
                    if j + 1 >= n:
                        raise error("bad escape")
                    esc = source[j + 1]
                    buf.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc))
                    if buf[-1] is None:
                        raise error(f"unknown escape \\{esc}")
                    j += 2
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise error("unterminated string literal")
            tokens.append(Token("str", "".join(buf), start_line, start_col))
            col += j + 1 - i
            i = j + 1
            continue
        # Char literals become int tokens (Java chars are ints to us)
        if c == "'":
            if i + 2 < n and source[i + 1] != "\\" and source[i + 2] == "'":
                tokens.append(Token("int", str(ord(source[i + 1])),
                                    start_line, start_col))
                i += 3; col += 3
                continue
            raise error("bad char literal")
        # Operators
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, start_line, start_col))
                i += len(op); col += len(op)
                break
        else:
            if c in PUNCT:
                tokens.append(Token("punct", c, start_line, start_col))
                i += 1; col += 1
            else:
                raise error(f"unexpected character {c!r}")
    tokens.append(Token("eof", "", line, col))
    return tokens
