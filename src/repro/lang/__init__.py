"""MiniJava: the source language substrate.

Stands in for ``javac``: benchmark applications are written in a small
Java dialect, compiled once to mini-JVM bytecode, and only the *bytecode*
is handed to the JavaSplit rewriter — matching the paper's requirement
that the runtime work from (possibly pre-existing) class files, never
source.

Pipeline: :func:`~repro.lang.lexer.tokenize` →
:func:`~repro.lang.parser.parse` →
:func:`~repro.lang.types.check_program` →
:func:`~repro.lang.codegen.compile_program`.
"""

from .codegen import CompileError, compile_program, compile_source
from .lexer import LexError, tokenize
from .parser import ParseError, parse
from .types import ClassTable, TypeError_, check_program

__all__ = [
    "CompileError",
    "compile_program",
    "compile_source",
    "LexError",
    "tokenize",
    "ParseError",
    "parse",
    "ClassTable",
    "TypeError_",
    "check_program",
]
