"""Code generation: annotated MiniJava AST → mini-JVM class files.

The checker has already resolved names, inserted conversions and
assigned local slots, so this pass is a mostly-mechanical lowering.
``synchronized`` methods and blocks are desugared here into explicit
MONITORENTER/MONITOREXIT pairs (with exits emitted on every early exit
path), which is what the JavaSplit rewriter later transforms — the
paper's rewriter likewise treats synchronized methods and monitorenter
instructions uniformly (§4).
"""

from __future__ import annotations

from typing import List, Optional

from ..jvm.assembler import ClassBuilder, Label, MethodBuilder
from ..jvm.bytecode import Op
from ..jvm.classfile import ClassFile
from ..jvm.intrinsics import bootstrap_classfiles
from ..jvm.verifier import verify_classfiles
from .ast_nodes import (
    ArrayIndex, ArrayLength, Assign, Binary, Block, BoolLit, Break, Call,
    Cast, ClassDecl, Continue, Conv, DoubleLit, Expr, ExprStmt, FieldAccess,
    For, If, InstanceOf, IntLit, MethodDecl, New, NewArray, NullLit, Program,
    Return, Stmt, StrLit, SuperCall, SyncBlock, This, Unary, VarDecl, VarRef,
    While,
)
from .parser import parse
from .types import ClassTable, TypeError_, check_program

_CMP_OPS = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
_NEG_COND = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt", "gt": "le", "le": "gt"}
_ARITH_OPS = {
    "+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV, "%": Op.REM,
    "<<": Op.SHL, ">>": Op.SHR, ">>>": Op.USHR,
    "&": Op.AND, "|": Op.OR, "^": Op.XOR,
}


class CompileError(SyntaxError):
    """A lowering-time error (checker violations surface earlier)."""
    pass


class _LoopCtx:
    __slots__ = ("break_label", "continue_label", "sync_depth")

    def __init__(self, break_label: Label, continue_label: Label, sync_depth: int):
        self.break_label = break_label
        self.continue_label = continue_label
        self.sync_depth = sync_depth


class _MethodGen:
    def __init__(self, gen: "CodeGen", decl: ClassDecl, m: MethodDecl) -> None:
        self.gen = gen
        self.decl = decl
        self.m = m
        flags = set()
        if m.is_static:
            flags.add("static")
        if m.is_synchronized:
            flags.add("synchronized")
        self.mb = MethodBuilder(
            m.name,
            params=[p.type for p in m.params],
            ret=m.ret,
            flags=flags,
            max_locals=getattr(m, "max_locals", len(m.params) + 1),
        )
        # The checker already numbered declared locals; temps allocated by
        # this pass (sync-block lock slots) must start above them.
        self.mb._next_local = max(
            self.mb._next_local, getattr(m, "max_locals", 0)
        )
        # Stack of local slots holding monitors entered by sync blocks /
        # the synchronized-method prologue.
        self.sync_slots: List[int] = []
        self.loops: List[_LoopCtx] = []

    # ------------------------------------------------------------------
    def generate(self) -> None:
        """Lower one method body into its MethodBuilder and finish it."""
        m = self.m
        assert m.body is not None
        if m.is_constructor and not (
            m.body.stmts and isinstance(m.body.stmts[0], SuperCall)
        ):
            self._emit_implicit_super()
        if m.is_synchronized:
            self.mb.load(0)
            self.mb.emit(Op.MONITORENTER, line=m.line)
            self.sync_slots.append(0)
        self.emit_block(m.body)
        # Fall-through return for void methods.
        if m.ret == "void":
            self._emit_sync_exits(0, m.line)
            self.mb.ret()
        else:
            # The checker proved all paths return; terminate any residual
            # unreachable fall-through for the verifier.
            if not self.mb._code or self.mb._code[-1].op not in (
                Op.RETURN, Op.RETVAL, Op.GOTO
            ):
                self.mb.const(_zero_of(m.ret))
                self._emit_sync_exits(0, m.line)
                self.mb.retval()
        self.gen.cb_for(self.decl).finish(self.mb)

    def _emit_implicit_super(self) -> None:
        sig = self.gen.table.find_method(self.decl.super_name, "<init>")
        if sig is None or sig.params:
            raise CompileError(
                f"{self.decl.name}: superclass {self.decl.super_name} has no "
                f"no-arg constructor; call super(...) explicitly"
            )
        self.mb.load(0)
        self.mb.invoke(Op.INVOKESPECIAL, sig.declaring, "<init>")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def emit_block(self, block: Block) -> None:
        """Lower a statement list."""
        for stmt in block.stmts:
            self.emit_stmt(stmt)

    def emit_stmt(self, stmt: Stmt) -> None:
        """Lower one statement."""
        mb = self.mb
        if isinstance(stmt, Block):
            self.emit_block(stmt)
        elif isinstance(stmt, VarDecl):
            if stmt.init is not None:
                self.emit_expr(stmt.init)
            else:
                mb.const(_zero_of(stmt.type), )
            mb.store(stmt.slot)  # type: ignore[attr-defined]
        elif isinstance(stmt, ExprStmt):
            expr = stmt.expr
            assert expr is not None
            if isinstance(expr, Assign):
                self.emit_assign(expr, want_value=False)
            elif isinstance(expr, Call):
                self.emit_call(expr)
                if expr.type != "void":
                    mb.emit(Op.POP)
            else:
                self.emit_expr(expr)
                if expr.type != "void":
                    mb.emit(Op.POP)
        elif isinstance(stmt, If):
            else_l = mb.label("else")
            end_l = mb.label("endif")
            self.emit_cond(stmt.cond, else_l, jump_if=False)
            self.emit_stmt(stmt.then)
            if stmt.otherwise is not None:
                mb.goto(end_l)
                mb.mark(else_l)
                self.emit_stmt(stmt.otherwise)
                mb.mark(end_l)
            else:
                mb.mark(else_l)
        elif isinstance(stmt, While):
            top = mb.label("while")
            end = mb.label("endwhile")
            mb.mark(top)
            self.emit_cond(stmt.cond, end, jump_if=False)
            self.loops.append(_LoopCtx(end, top, len(self.sync_slots)))
            self.emit_stmt(stmt.body)
            self.loops.pop()
            mb.goto(top)
            mb.mark(end)
        elif isinstance(stmt, For):
            if stmt.init is not None:
                self.emit_stmt(stmt.init)
            top = mb.label("for")
            cont = mb.label("forupd")
            end = mb.label("endfor")
            mb.mark(top)
            if stmt.cond is not None:
                self.emit_cond(stmt.cond, end, jump_if=False)
            self.loops.append(_LoopCtx(end, cont, len(self.sync_slots)))
            self.emit_stmt(stmt.body)
            self.loops.pop()
            mb.mark(cont)
            if stmt.update is not None:
                upd = stmt.update
                if isinstance(upd, Assign):
                    self.emit_assign(upd, want_value=False)
                else:
                    self.emit_expr(upd)
                    if upd.type != "void":
                        mb.emit(Op.POP)
            mb.goto(top)
            mb.mark(end)
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                self.emit_expr(stmt.value)
                self._emit_sync_exits(0, stmt.line)
                mb.retval()
            else:
                self._emit_sync_exits(0, stmt.line)
                mb.ret()
        elif isinstance(stmt, Break):
            ctx = self.loops[-1]
            self._emit_sync_exits(ctx.sync_depth, stmt.line)
            mb.goto(ctx.break_label)
        elif isinstance(stmt, Continue):
            ctx = self.loops[-1]
            self._emit_sync_exits(ctx.sync_depth, stmt.line)
            mb.goto(ctx.continue_label)
        elif isinstance(stmt, SyncBlock):
            slot = self.mb.alloc_local()
            self.emit_expr(stmt.lock)
            mb.store(slot)
            mb.load(slot)
            mb.emit(Op.MONITORENTER, line=stmt.line)
            self.sync_slots.append(slot)
            self.emit_stmt(stmt.body)
            self.sync_slots.pop()
            mb.load(slot)
            mb.emit(Op.MONITOREXIT, line=stmt.line)
        elif isinstance(stmt, SuperCall):
            mb.load(0)
            for arg in stmt.args:
                self.emit_expr(arg)
            mb.invoke(Op.INVOKESPECIAL, stmt.super_class, "<init>")  # type: ignore[attr-defined]
        else:  # pragma: no cover
            raise CompileError(f"unknown statement {type(stmt).__name__}")

    def _emit_sync_exits(self, down_to: int, line: int) -> None:
        """Exit monitors entered above ``down_to`` (innermost first) on an
        early exit path; the entries stay on ``sync_slots`` because the
        structured path still needs its own exit."""
        for slot in reversed(self.sync_slots[down_to:]):
            self.mb.load(slot)
            self.mb.emit(Op.MONITOREXIT, line=line)

    # ------------------------------------------------------------------
    # Conditions (short-circuit, no materialization)
    # ------------------------------------------------------------------
    def emit_cond(self, expr: Expr, target: Label, jump_if: bool) -> None:
        """Emit a branch to ``target`` when ``expr`` == ``jump_if``."""
        mb = self.mb
        if isinstance(expr, BoolLit):
            if expr.value == jump_if:
                mb.goto(target)
            return
        if isinstance(expr, Unary) and expr.op == "!":
            self.emit_cond(expr.operand, target, not jump_if)
            return
        if isinstance(expr, Binary):
            if expr.op == "&&":
                if jump_if:
                    skip = mb.label("and_skip")
                    self.emit_cond(expr.left, skip, jump_if=False)
                    self.emit_cond(expr.right, target, jump_if=True)
                    mb.mark(skip)
                else:
                    self.emit_cond(expr.left, target, jump_if=False)
                    self.emit_cond(expr.right, target, jump_if=False)
                return
            if expr.op == "||":
                if jump_if:
                    self.emit_cond(expr.left, target, jump_if=True)
                    self.emit_cond(expr.right, target, jump_if=True)
                else:
                    skip = mb.label("or_skip")
                    self.emit_cond(expr.left, skip, jump_if=True)
                    self.emit_cond(expr.right, target, jump_if=False)
                    mb.mark(skip)
                return
            if expr.op in _CMP_OPS and not getattr(expr, "str_concat", False):
                cond = _CMP_OPS[expr.op]
                if not jump_if:
                    cond = _NEG_COND[cond]
                # x == null / null == x: compare against null via IF_CMP
                self.emit_expr(expr.left)
                self.emit_expr(expr.right)
                mb.if_cmp(cond, target)
                return
        # Generic boolean value
        self.emit_expr(expr)
        mb.if_("ne" if jump_if else "eq", target)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def emit_expr(self, expr: Expr) -> None:
        """Lower one expression, leaving its value on the stack."""
        mb = self.mb
        if isinstance(expr, IntLit):
            mb.const(expr.value)
        elif isinstance(expr, DoubleLit):
            mb.const(expr.value)
        elif isinstance(expr, BoolLit):
            mb.const(1 if expr.value else 0)
        elif isinstance(expr, StrLit):
            mb.const(expr.value)
        elif isinstance(expr, NullLit):
            mb.const(None)
        elif isinstance(expr, This):
            mb.load(0)
        elif isinstance(expr, VarRef):
            if expr.resolved == "local":
                mb.load(expr.slot)
            elif expr.resolved == "field":
                mb.load(0)
                mb.emit(Op.GETFIELD, expr.klass, expr.name, line=expr.line)
            elif expr.resolved == "static":
                mb.emit(Op.GETSTATIC, expr.klass, expr.name, line=expr.line)
            else:  # pragma: no cover - checker resolves everything
                raise CompileError(f"unresolved variable {expr.name}")
        elif isinstance(expr, FieldAccess):
            if expr.klass == "<arraylength>":
                self.emit_expr(expr.obj)
                mb.emit(Op.ARRAYLENGTH)
            elif expr.obj is None:
                mb.emit(Op.GETSTATIC, expr.klass, expr.name, line=expr.line)
            else:
                self.emit_expr(expr.obj)
                mb.emit(Op.GETFIELD, expr.klass, expr.name, line=expr.line)
        elif isinstance(expr, ArrayIndex):
            self.emit_expr(expr.arr)
            self.emit_expr(expr.index)
            mb.emit(Op.ARRLOAD, line=expr.line)
        elif isinstance(expr, Call):
            self.emit_call(expr)
        elif isinstance(expr, New):
            mb.emit(Op.NEW, expr.klass, line=expr.line)
            mb.emit(Op.DUP)
            for arg in expr.args:
                self.emit_expr(arg)
            mb.invoke(Op.INVOKESPECIAL, expr.klass, "<init>")
        elif isinstance(expr, NewArray):
            self.emit_expr(expr.length)
            mb.emit(Op.NEWARRAY, expr.elem_type, line=expr.line)
        elif isinstance(expr, Binary):
            self.emit_binary(expr)
        elif isinstance(expr, Unary):
            if expr.op == "-":
                self.emit_expr(expr.operand)
                mb.emit(Op.NEG)
            elif expr.op == "~":
                self.emit_expr(expr.operand)
                mb.const(-1)
                mb.emit(Op.XOR)
            else:  # '!' — materialize
                self._materialize_bool(expr)
        elif isinstance(expr, Assign):
            self.emit_assign(expr, want_value=True)
        elif isinstance(expr, Conv):
            self.emit_expr(expr.operand)
            mb.emit(Op.I2D if expr.kind == "i2d" else Op.D2I)
        elif isinstance(expr, Cast):
            self.emit_expr(expr.operand)
            src = expr.operand.type
            dst = expr.target_type
            if dst == "int" and src == "double":
                mb.emit(Op.D2I)
            elif dst == "double" and src == "int":
                mb.emit(Op.I2D)
            elif dst not in ("int", "double"):
                mb.emit(Op.CHECKCAST, dst, line=expr.line)
        elif isinstance(expr, InstanceOf):
            self.emit_expr(expr.operand)
            mb.emit(Op.INSTANCEOF, expr.klass)
        else:  # pragma: no cover
            raise CompileError(f"unknown expression {type(expr).__name__}")

    def emit_binary(self, expr: Binary) -> None:
        """Lower a binary operator application."""
        mb = self.mb
        if getattr(expr, "str_concat", False):
            self.emit_expr(expr.left)
            self.emit_expr(expr.right)
            mb.emit(Op.CONCAT)
            return
        if expr.op in ("&&", "||") or expr.op in _CMP_OPS:
            self._materialize_bool(expr)
            return
        self.emit_expr(expr.left)
        self.emit_expr(expr.right)
        mb.emit(_ARITH_OPS[expr.op], line=expr.line)

    def _materialize_bool(self, expr: Expr) -> None:
        mb = self.mb
        true_l = mb.label("btrue")
        end_l = mb.label("bend")
        self.emit_cond(expr, true_l, jump_if=True)
        mb.const(0)
        mb.goto(end_l)
        mb.mark(true_l)
        mb.const(1)
        mb.mark(end_l)

    def emit_call(self, expr: Call) -> None:
        """Lower a method call (static / virtual / implicit-this)."""
        mb = self.mb
        if expr.kind == "static":
            for arg in expr.args:
                self.emit_expr(arg)
            mb.invoke(Op.INVOKESTATIC, expr.klass, expr.name)
        elif expr.kind == "virtual_this":
            mb.load(0)
            for arg in expr.args:
                self.emit_expr(arg)
            mb.invoke(Op.INVOKEVIRTUAL, expr.klass, expr.name)
        else:  # virtual
            self.emit_expr(expr.obj)
            for arg in expr.args:
                self.emit_expr(arg)
            mb.invoke(Op.INVOKEVIRTUAL, expr.klass, expr.name)

    def emit_assign(self, expr: Assign, want_value: bool) -> None:
        """Lower an assignment; want_value keeps a copy on the stack."""
        mb = self.mb
        target = expr.target
        if isinstance(target, VarRef):
            if target.resolved == "local":
                self.emit_expr(expr.value)
                if want_value:
                    mb.emit(Op.DUP)
                mb.store(target.slot)
                return
            if target.resolved == "static":
                self.emit_expr(expr.value)
                if want_value:
                    mb.emit(Op.DUP)
                mb.emit(Op.PUTSTATIC, target.klass, target.name, line=expr.line)
                return
            # implicit this field
            mb.load(0)
            self.emit_expr(expr.value)
            if want_value:
                mb.emit(Op.DUP_X1)
            mb.emit(Op.PUTFIELD, target.klass, target.name, line=expr.line)
            return
        if isinstance(target, FieldAccess):
            if target.obj is None:
                self.emit_expr(expr.value)
                if want_value:
                    mb.emit(Op.DUP)
                mb.emit(Op.PUTSTATIC, target.klass, target.name, line=expr.line)
                return
            self.emit_expr(target.obj)
            self.emit_expr(expr.value)
            if want_value:
                mb.emit(Op.DUP_X1)
            mb.emit(Op.PUTFIELD, target.klass, target.name, line=expr.line)
            return
        if isinstance(target, ArrayIndex):
            if want_value:
                raise CompileError(
                    f"array-element assignment cannot be used as a value "
                    f"(line {expr.line})"
                )
            self.emit_expr(target.arr)
            self.emit_expr(target.index)
            self.emit_expr(expr.value)
            mb.emit(Op.ARRSTORE, line=expr.line)
            return
        raise CompileError(f"bad assignment target (line {expr.line})")


def _zero_of(t: str):
    if t == "double":
        return 0.0
    if t in ("int", "boolean"):
        return 0
    return None


class CodeGen:
    """Drives lowering of a checked program to class files."""
    def __init__(self, program: Program, table: ClassTable) -> None:
        self.program = program
        self.table = table
        self._builders: dict[str, ClassBuilder] = {}

    def cb_for(self, decl: ClassDecl) -> ClassBuilder:
        """The (cached) ClassBuilder for a class declaration."""
        cb = self._builders.get(decl.name)
        if cb is None:
            cb = ClassBuilder(decl.name, super_name=decl.super_name)
            for f in decl.fields:
                cb.field(f.name, f.type, is_static=f.is_static, init=f.init,
                         volatile=f.volatile)
            self._builders[decl.name] = cb
        return cb

    def generate(self) -> List[ClassFile]:
        """Lower every class; returns the class files."""
        out: List[ClassFile] = []
        for decl in self.program.classes:
            cb = self.cb_for(decl)
            has_ctor = any(m.is_constructor for m in decl.methods)
            if not has_ctor:
                self._emit_default_ctor(decl)
            for m in decl.methods:
                _MethodGen(self, decl, m).generate()
            out.append(cb.build())
        return out

    def _emit_default_ctor(self, decl: ClassDecl) -> None:
        sig = self.table.find_method(decl.super_name, "<init>")
        if sig is None or sig.params:
            raise CompileError(
                f"{decl.name} needs an explicit constructor (superclass "
                f"{decl.super_name} has no no-arg constructor)"
            )
        mb = MethodBuilder("<init>", params=[], ret="void", flags=set())
        mb.load(0)
        mb.invoke(Op.INVOKESPECIAL, sig.declaring, "<init>")
        mb.ret()
        self.cb_for(decl).classfile.add_method(mb.build())


def compile_program(program: Program) -> List[ClassFile]:
    """Check + lower a parsed program; the result is verified bytecode."""
    table = check_program(program)
    classfiles = CodeGen(program, table).generate()
    verify_classfiles(bootstrap_classfiles() + classfiles)
    return classfiles


def compile_source(source: str) -> List[ClassFile]:
    """One-shot: MiniJava source text → verified class files."""
    return compile_program(parse(source))
