"""AST node definitions for MiniJava.

Expression nodes carry a ``type`` attribute filled in by the checker
(:mod:`repro.lang.types`); the code generator relies on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Node:
    """Base AST node; every node carries a source line."""
    line: int = 0


@dataclass
class Program(Node):
    """A whole compilation unit: the list of class declarations."""
    classes: List["ClassDecl"] = field(default_factory=list)


@dataclass
class ClassDecl(Node):
    """One class: name, superclass, fields, methods."""
    name: str = ""
    super_name: str = "Object"
    fields: List["FieldDecl"] = field(default_factory=list)
    methods: List["MethodDecl"] = field(default_factory=list)


@dataclass
class FieldDecl(Node):
    """A field declaration (instance or static, optionally volatile)."""
    name: str = ""
    type: str = ""
    is_static: bool = False
    volatile: bool = False
    init: Any = None  # constant literal or None


@dataclass
class Param(Node):
    """One formal method parameter."""
    name: str = ""
    type: str = ""


@dataclass
class MethodDecl(Node):
    """A method (or constructor) declaration with its body."""
    name: str = ""
    params: List[Param] = field(default_factory=list)
    ret: str = "void"
    body: Optional["Block"] = None  # None for native methods
    is_static: bool = False
    is_synchronized: bool = False
    is_native: bool = False
    is_constructor: bool = False


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statements."""
    pass


@dataclass
class Block(Stmt):
    """A brace-delimited statement list with its own scope."""
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    """A local variable declaration with optional initializer."""
    name: str = ""
    type: str = ""
    init: Optional["Expr"] = None


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect (call, assignment)."""
    expr: Optional["Expr"] = None


@dataclass
class If(Stmt):
    """if / else."""
    cond: Optional["Expr"] = None
    then: Optional[Stmt] = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    """while loop."""
    cond: Optional["Expr"] = None
    body: Optional[Stmt] = None


@dataclass
class For(Stmt):
    """C-style for loop (init; cond; update)."""
    init: Optional[Stmt] = None
    cond: Optional["Expr"] = None
    update: Optional["Expr"] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    """return, with optional value."""
    value: Optional["Expr"] = None


@dataclass
class Break(Stmt):
    """break out of the innermost loop."""
    pass


@dataclass
class Continue(Stmt):
    """continue the innermost loop."""
    pass


@dataclass
class SyncBlock(Stmt):
    """synchronized (lock) { ... }."""
    lock: Optional["Expr"] = None
    body: Optional[Stmt] = None


@dataclass
class SuperCall(Stmt):
    """``super(args);`` — only valid as the first statement of a ctor."""

    args: List["Expr"] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions; `type` is set by the checker."""
    type: str = ""  # filled by the checker


@dataclass
class IntLit(Expr):
    """Integer literal."""
    value: int = 0


@dataclass
class DoubleLit(Expr):
    """Floating-point literal."""
    value: float = 0.0


@dataclass
class BoolLit(Expr):
    """true / false."""
    value: bool = False


@dataclass
class StrLit(Expr):
    """String literal."""
    value: str = ""


@dataclass
class NullLit(Expr):
    """null."""
    pass


@dataclass
class This(Expr):
    """The receiver of an instance method."""
    pass


@dataclass
class VarRef(Expr):
    """A bare identifier; the checker resolves it to a local, an implicit-this field, or a static."""
    name: str = ""
    # checker resolution: 'local' (slot), 'field' (implicit this),
    # 'static' (own class)
    resolved: str = ""
    slot: int = -1
    klass: str = ""       # declaring class for field/static refs


@dataclass
class FieldAccess(Expr):
    """obj.field, or ClassName.field for statics (obj is None)."""
    obj: Optional[Expr] = None   # None for static ClassName.field
    name: str = ""
    klass: str = ""              # static target class / resolved owner


@dataclass
class ArrayIndex(Expr):
    """arr[index]."""
    arr: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Call(Expr):
    """A method call; the checker fills owner class and dispatch kind."""
    obj: Optional[Expr] = None   # receiver; None = static or implicit this
    name: str = ""
    args: List[Expr] = field(default_factory=list)
    klass: str = ""              # resolved owner class
    kind: str = ""               # 'virtual', 'static', 'special'


@dataclass
class New(Expr):
    """new ClassName(args)."""
    klass: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class NewArray(Expr):
    """new T[length]."""
    elem_type: str = ""
    length: Optional[Expr] = None


@dataclass
class Binary(Expr):
    """A binary operator application."""
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Unary(Expr):
    """A unary operator application (-, !, ~)."""
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Assign(Expr):
    """``target = value``; compound ops are desugared by the parser."""

    target: Optional[Expr] = None  # VarRef / FieldAccess / ArrayIndex
    value: Optional[Expr] = None


@dataclass
class Cast(Expr):
    """(type) expr — numeric conversion or checked reference cast."""
    target_type: str = ""
    operand: Optional[Expr] = None


@dataclass
class InstanceOf(Expr):
    """expr instanceof ClassName."""
    operand: Optional[Expr] = None
    klass: str = ""


@dataclass
class ArrayLength(Expr):
    """arr.length (produced by the checker from FieldAccess)."""
    arr: Optional[Expr] = None


@dataclass
class Conv(Expr):
    """Implicit numeric conversion inserted by the checker."""

    kind: str = ""  # 'i2d' or 'd2i'
    operand: Optional[Expr] = None
