"""Fault tolerance for MTS-HLRC: survive the loss of a worker node.

Three cooperating pieces, all riding on the existing simulated network:

- :mod:`heartbeat` — periodic pings to the master node plus the ARQ
  layer's ``peer_unreachable`` events; a worker missing K consecutive
  beats is declared failed.
- :mod:`replication` — every node mirrors its home-side coherency state
  (master copies, versions) to a deterministic *buddy* node, piggybacked
  on the same release-time events that advance that state.
- :mod:`recovery` — on a confirmed failure, the dead node's coherency
  units are re-homed onto the buddy's replica, lost lock tokens are
  re-issued, stale replicas invalidated via write notices, and the dead
  node's unfinished threads re-shipped through the normal scheduler.

:class:`~repro.ft.manager.FtManager` wires it all into a
:class:`~repro.runtime.javasplit.JavaSplitRuntime` when
``RuntimeConfig.ft_enabled`` is set.
"""

from .heartbeat import FailureDetector, HeartbeatAgent
from .manager import FtManager
from .recovery import MasterFailedError, RecoveryOrchestrator
from .replication import (
    M_FT_NOTICES,
    M_FT_PING,
    M_FT_REPL,
    M_FT_SUSPECT,
    FtNodeAgent,
    ReplicaStore,
    buddy_of,
)

__all__ = [
    "FtManager",
    "FtNodeAgent",
    "ReplicaStore",
    "HeartbeatAgent",
    "FailureDetector",
    "RecoveryOrchestrator",
    "MasterFailedError",
    "buddy_of",
    "M_FT_PING",
    "M_FT_SUSPECT",
    "M_FT_REPL",
    "M_FT_NOTICES",
]
