"""FtManager: wires the fault-tolerance subsystem into a runtime.

One manager per :class:`~repro.runtime.javasplit.JavaSplitRuntime` (when
``RuntimeConfig.ft_enabled``).  It owns the per-node agents (replication
hooks + replica stores), the heartbeat/detector timers, the global
thread registry used to re-ship a dead node's threads, and the recovery
orchestrator.

The thread registry is harness-level bookkeeping (who shipped where,
who finished), mirroring what the paper's coordinator would track; the
actual repair traffic — replication, rediffs, notices, re-spawns — all
flows through the simulated network and is accounted like any other
protocol message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Set

from ..dsm.protocol import M_SPAWN
from ..sim.node import StreamState
from .heartbeat import FailureDetector, HeartbeatAgent
from .recovery import RecoveryOrchestrator
from .replication import (
    M_FT_NOTICES,
    M_FT_PING,
    M_FT_REPL,
    M_FT_SUSPECT,
    FtNodeAgent,
    buddy_of,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.javasplit import JavaSplitRuntime
    from ..runtime.worker import WorkerNode


@dataclass
class ThreadRecord:
    """One spawned thread: enough to re-ship it after a node failure."""

    gid: int
    class_name: str
    priority: int
    target: int                 # where the spawn was sent
    node: Optional[int] = None  # where it actually started (None: in flight)
    done: bool = False


class FtManager:
    """Fault-tolerance subsystem root, attached to one runtime."""

    def __init__(self, runtime: "JavaSplitRuntime") -> None:
        self.runtime = runtime
        cfg = runtime.config
        self.coordinator = cfg.master_node
        self.interval_ns = cfg.ft_heartbeat_ns
        self.mode = cfg.ft_replication
        self.agents: Dict[int, FtNodeAgent] = {}
        self.hb_agents: Dict[int, HeartbeatAgent] = {}
        self.detector: Optional[FailureDetector] = None
        self.orchestrator = RecoveryOrchestrator(self)
        self.dead_nodes: Set[int] = set()
        self.recovering: Set[int] = set()
        self.home_redirects: Dict[int, int] = {}
        self.threads: Dict[int, ThreadRecord] = {}
        self.failures_detected = 0
        self.stopped = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self) -> None:
        workers = self.runtime.workers
        coord = workers[self.coordinator]
        self.detector = FailureDetector(
            self, coord, self.interval_ns,
            self.runtime.config.ft_suspect_beats,
        )
        coord.transport.on(M_FT_PING, self.detector.on_ping)
        coord.transport.on(M_FT_SUSPECT, self.detector.on_suspect)
        for w in workers:
            self._attach_worker(w, len(workers))
        # Sweep masters that predate the hooks (static holders).
        for node_id in sorted(self.agents):
            self.agents[node_id].publish_all()
        self.detector.start()
        for node_id in sorted(self.hb_agents):
            self.hb_agents[node_id].start()

    def _attach_worker(self, worker: "WorkerNode", num_nodes: int) -> None:
        agent = FtNodeAgent(
            self, worker, self.mode,
            buddy_of(worker.node_id, num_nodes, self.dead_nodes),
        )
        worker.dsm.ft = agent
        worker.transport.stamp_epoch = True
        worker.transport.on(M_FT_REPL, agent.on_repl_msg)
        worker.transport.on(M_FT_NOTICES, agent.on_notices_msg)
        for origin, target in self.home_redirects.items():
            worker.dsm.ft_set_home(origin, target)
        for dead in self.dead_nodes:
            worker.transport.mark_dead(dead)
        hb = HeartbeatAgent(self, worker, self.coordinator, self.interval_ns)
        self.agents[worker.node_id] = agent
        self.hb_agents[worker.node_id] = hb
        assert self.detector is not None
        self.detector.watch(worker.node_id)

    def on_worker_added(self, worker: "WorkerNode") -> None:
        """Dynamic join (§2): enlist the new worker in heartbeats and
        re-form the replication ring around it."""
        self._attach_worker(worker, len(self.runtime.workers))
        self.hb_agents[worker.node_id].start()
        n = len(self.runtime.workers)
        for node_id in sorted(self.agents):
            if self.runtime.workers[node_id].dead:
                continue
            self.agents[node_id].set_buddy(
                buddy_of(node_id, n, self.dead_nodes))
        self.agents[worker.node_id].publish_all()

    # ------------------------------------------------------------------
    # Liveness: timers stop once nothing is running or recoverable,
    # letting run_until_idle quiesce.
    # ------------------------------------------------------------------
    def app_active(self) -> bool:
        for w in self.runtime.workers:
            if w.dead:
                continue
            for t in w.jvm.threads:
                if t.state is not StreamState.FINISHED:
                    return True
        for rec in self.threads.values():
            if rec.done:
                continue
            if rec.node is None:
                return True  # spawn in flight
            if self.runtime.workers[rec.node].dead:
                return True  # needs re-shipping
        return False

    def stop(self) -> None:
        self.stopped = True

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def on_failure(self, node: int) -> None:
        """A failure was confirmed (detector or test harness)."""
        if self.stopped or node in self.dead_nodes or node in self.recovering:
            return
        self.failures_detected += 1
        self.recovering.add(node)
        self.orchestrator.begin(node)

    # ------------------------------------------------------------------
    # Thread registry (hooks called via FtNodeAgent)
    # ------------------------------------------------------------------
    def record_ship(self, gid: int, class_name: str, priority: int,
                    target: int) -> None:
        self.threads[gid] = ThreadRecord(gid, class_name, priority, target)

    def record_start(self, gid: int, node: int) -> None:
        rec = self.threads.get(gid)
        if rec is not None:
            rec.node = node

    def record_done(self, gid: int) -> None:
        rec = self.threads.get(gid)
        if rec is not None:
            rec.done = True

    def respawn_dead_threads(self, dead: int) -> int:
        """Re-ship every unfinished thread that died with (or was in
        flight to) the dead node, through the normal scheduler.  The
        re-spawn restarts the thread from its last lock-release-
        consistent state; exactly-once execution is not promised (a
        taken-but-unprocessed job queue entry dies with its worker)."""
        runtime = self.runtime
        master_dsm = runtime.workers[self.coordinator].dsm
        respawned = 0
        for gid in sorted(self.threads):
            rec = self.threads[gid]
            if rec.done:
                continue
            if rec.node != dead and not (
                    rec.node is None and rec.target == dead):
                continue
            target = runtime._choose_spawn_node()
            rec.target = target
            rec.node = None
            payload = {
                "gid": gid,
                "class_name": rec.class_name,
                "priority": rec.priority,
            }
            if target == self.coordinator:
                master_dsm._local_spawn(gid, rec.class_name, rec.priority)
            else:
                master_dsm.transport.send(target, M_SPAWN, payload)
            respawned += 1
        return respawned

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """FT summary for RunReport."""
        return {
            "failures_detected": self.failures_detected,
            "dead_nodes": sorted(self.dead_nodes),
            "recoveries": list(self.orchestrator.records),
            "units_replicated": sum(
                a.units_replicated for a in self.agents.values()),
            "repl_messages": sum(
                a.repl_messages for a in self.agents.values()),
        }
