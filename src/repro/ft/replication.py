"""Buddy replication of home-side coherency state.

Every node mirrors the coherency units it is *home* of (master copies
plus their versions) to a deterministic buddy node — the next live node
in ring order.  Replication piggybacks on the release-time events that
advance home state, so the buddy's replica store satisfies the invariant
recovery depends on:

    a replication frame for version v leaves the home strictly before
    the ack / fetch reply / token that could make any survivor depend
    on v, so by the time a failure is detected (tens of milliseconds
    after the last frame left the dead node) the buddy's store covers
    every version a survivor can possibly have observed.

Two modes (``RuntimeConfig.ft_replication``):

- ``eager`` (default): mirror every promoted unit and every home-state
  advance as it happens.
- ``lazy``: mirror only units whose gid has crossed the wire.  A gid no
  survivor can name cannot be depended on; purely-local state dies with
  its node, whose threads restart from scratch anyway.

Dirty-master serves are mirrored in both modes: a fetch reply publishes
home content that has not had its version bumped yet, so the buddy needs
the content refresh at the *same* version.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Set, Tuple

from ..dsm.directory import home_of
from ..net.message import HEADER_BYTES, Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.worker import WorkerNode
    from .manager import FtManager

# Message types (canonical registry: ``repro.net.message``).
# M_FT_PING: heartbeat ping, worker -> coordinator (master node).
# M_FT_SUSPECT: transport-level suspicion report, any node -> coordinator.
# M_FT_REPL: replication frame, home -> buddy (serialized unit batch).
# M_FT_NOTICES: recovery, adoptive home broadcasts write notices.
from ..net.message import (M_FT_NOTICES, M_FT_PING,  # noqa: F401
                           M_FT_REPL, M_FT_SUSPECT)


def buddy_of(node_id: int, num_nodes: int, dead: Sequence[int] = ()) -> int:
    """The deterministic replication buddy: next live node in ring order."""
    dead_set = set(dead)
    for step in range(1, num_nodes):
        cand = (node_id + step) % num_nodes
        if cand != node_id and cand not in dead_set:
            return cand
    raise ValueError(f"no live buddy for node {node_id}/{num_nodes}")


def unit_key(unit: Dict[str, Any]) -> Any:
    """The coherency-unit key of one serialized replication unit."""
    gid = unit["gid"]
    region = unit["region"]
    return gid if region is None else (gid, region)


class ReplicaStore:
    """One node's passive copy of its buddy-sources' home state.

    Keyed by origin node, then by coherency-unit key.  ``put`` keeps the
    newest unit per key; a same-version arrival *overwrites* (that is the
    dirty-master-serve case — fresher content, version not yet bumped).
    """

    def __init__(self) -> None:
        self._units: Dict[int, Dict[Any, Dict[str, Any]]] = {}

    def put(self, origin: int, unit: Dict[str, Any]) -> None:
        by_key = self._units.setdefault(origin, {})
        key = unit_key(unit)
        existing = by_key.get(key)
        if existing is not None and existing["version"] > unit["version"]:
            return  # stale reordering (cannot happen FIFO, but be safe)
        by_key[key] = unit

    def units_of(self, origin: int) -> List[Dict[str, Any]]:
        """All stored units for one origin, in deterministic key order."""
        by_key = self._units.get(origin, {})
        return [by_key[k] for k in sorted(by_key, key=_key_order)]

    def version_of(self, origin: int, key: Any) -> Optional[int]:
        unit = self._units.get(origin, {}).get(key)
        return None if unit is None else unit["version"]

    def __len__(self) -> int:
        return sum(len(m) for m in self._units.values())


def _key_order(key: Any) -> Tuple[int, int]:
    return (key[0], key[1] + 1) if isinstance(key, tuple) else (key, 0)


class FtNodeAgent:
    """Per-node fault-tolerance agent: the DSM engine's ``ft`` hooks plus
    the buddy-side replica store and FT message handlers."""

    def __init__(self, manager: "FtManager", worker: "WorkerNode",
                 mode: str, buddy: int) -> None:
        self.manager = manager
        self.worker = worker
        self.dsm = worker.dsm
        self.transport = worker.transport
        self.node_id = worker.node_id
        self.mode = mode
        self.buddy = buddy
        self.store = ReplicaStore()
        # gids this agent actively mirrors (gate in lazy mode; eager adds
        # every home gid on promotion).
        self._published: Set[int] = set()
        # unit keys adopted from a dead home (this node now serves them).
        self._adopted: Set[Any] = set()
        self._repl_versions: Dict[Any, int] = {}
        self.units_replicated = 0
        self.repl_messages = 0

    # ------------------------------------------------------------------
    # DSM hooks (see DsmEngine.ft call sites)
    # ------------------------------------------------------------------
    def on_promote(self, gid: int) -> None:
        """A local object became shared; this node is its home."""
        if self.mode == "eager":
            self._publish_gid(gid)

    def on_ref_serialized(self, gid: int) -> None:
        """A reference is crossing the wire: in lazy mode, first escape
        of a home gid is the publish point."""
        if (self.mode == "lazy"
                and gid not in self._published
                and home_of(gid) == self.node_id):
            self._publish_gid(gid)

    def on_spawn(self, gid: int, class_name: str, priority: int,
                 target: int) -> None:
        """A thread object is being shipped (its gid travels in the spawn
        payload without going through reference serialization)."""
        if self.mode == "lazy" and home_of(gid) == self.node_id:
            self._publish_gid(gid)
        self.manager.record_ship(gid, class_name, priority, target)

    def on_thread_start(self, gid: int) -> None:
        self.manager.record_start(gid, self.node_id)

    def on_thread_done(self, gid: int) -> None:
        self.manager.record_done(gid)

    def on_home_advance(self, advanced: Sequence[Tuple[Any, int]]) -> None:
        """Home state advanced (local flush or applied diff): mirror the
        new versions before the corresponding ack/notice can leave."""
        units = []
        for key, version in advanced:
            gid = key[0] if isinstance(key, tuple) else key
            if gid not in self._published and key not in self._adopted:
                if self.mode == "lazy":
                    continue  # never escaped; nothing depends on it
                self._publish_gid(gid)
                continue  # publish covered the current version
            if self._repl_versions.get(key, -1) >= version:
                continue
            unit = self.dsm.ft_serialize_unit(key)
            if unit is not None:
                units.append(unit)
        self._send_units(units)

    def on_serve(self, gid: int, region: Optional[int]) -> None:
        """A fetch is about to be served: mirror dirty master content
        (same version, fresher bytes) and, in lazy mode, publish."""
        if self.mode == "lazy" and gid not in self._published:
            self._publish_gid(gid)
        key = gid if region is None else (gid, region)
        if key in self.dsm._dirty_home:
            unit = self.dsm.ft_serialize_unit(key)
            if unit is not None:
                self._send_units([unit], force=True)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def _unit_keys(self, gid: int) -> List[Any]:
        reg = self.dsm._regions.get(gid)
        if reg is not None:
            return [(gid, r) for r in range(reg.n_regions)]
        return [gid]

    def _publish_gid(self, gid: int) -> None:
        """Mirror every coherency unit of one gid (all regions)."""
        self._published.add(gid)
        units = []
        for key in self._unit_keys(gid):
            unit = self.dsm.ft_serialize_unit(key)
            if unit is not None:
                units.append(unit)
        self._send_units(units)

    def publish_all(self) -> int:
        """Mirror this node's entire home set (attach-time sweep for
        pre-existing masters such as static holders, and full re-protect
        after a buddy change)."""
        keys = list(self.dsm.ft_home_keys())
        keys += [k for k in sorted(self._adopted, key=_key_order)
                 if k not in keys]
        units = []
        for key in keys:
            gid = key[0] if isinstance(key, tuple) else key
            self._published.add(gid)
            unit = self.dsm.ft_serialize_unit(key)
            if unit is not None:
                units.append(unit)
        self._repl_versions.clear()  # new buddy knows nothing yet
        self._send_units(units)
        return len(units)

    def note_adopted(self, key: Any) -> None:
        """Recovery installed a re-homed unit here; mirror it onward."""
        self._adopted.add(key)
        gid = key[0] if isinstance(key, tuple) else key
        self._published.add(gid)

    def set_buddy(self, buddy: int) -> None:
        """Re-point replication after the ring changed (a node died)."""
        if buddy == self.buddy:
            return
        self.buddy = buddy
        self.publish_all()

    def _send_units(self, units: List[Dict[str, Any]],
                    force: bool = False) -> None:
        if not units:
            return
        if not force:
            units = [u for u in units
                     if self._repl_versions.get(unit_key(u), -1)
                     < u["version"]]
            if not units:
                return
        for u in units:
            key = unit_key(u)
            self._repl_versions[key] = max(
                self._repl_versions.get(key, -1), u["version"])
        size = HEADER_BYTES + sum(24 + len(u["data"]) for u in units)
        self.transport.send(self.buddy, M_FT_REPL,
                            {"origin": self.node_id, "units": units},
                            size_bytes=size)
        self.units_replicated += len(units)
        self.repl_messages += 1

    # ------------------------------------------------------------------
    # FT message handlers
    # ------------------------------------------------------------------
    def on_repl_msg(self, msg: Message) -> None:
        origin = msg.payload["origin"]
        for unit in msg.payload["units"]:
            self.store.put(origin, unit)

    def on_notices_msg(self, msg: Message) -> None:
        """Recovery broadcast: invalidate replicas the adoptive home
        cannot prove fresh (anything below the store's version)."""
        from ..dsm.write_notices import Notice
        self.dsm._apply_notices([
            Notice(key, version) for key, version in msg.payload["notices"]
        ])
