"""Heartbeat failure detection.

Every worker pings the coordinator (the master node) every
``ft_heartbeat_ns``; the coordinator's detector declares a worker failed
after ``ft_suspect_beats`` consecutive missed beats.  The transport
layer's ARQ give-up path feeds in as an accelerant: a ``peer
unreachable`` report lowers the miss threshold for that peer to
``max(1, ft_suspect_beats // 4)``, so a node that stopped acking
retransmissions is confirmed dead faster than silence alone would
allow.

All timers are self-rescheduling simulation events; they stop (letting
``run_until_idle`` quiesce) as soon as the manager observes that no
application thread is live or recoverable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Set

from ..net.message import Message
from .replication import M_FT_PING, M_FT_SUSPECT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.worker import WorkerNode
    from .manager import FtManager

#: Ping payload size on the wire (node id).
PING_BYTES = 4


class HeartbeatAgent:
    """Per-node side of failure detection: the periodic ping plus the
    transport's unreachable-peer reports."""

    def __init__(self, manager: "FtManager", worker: "WorkerNode",
                 coordinator: int, interval_ns: int) -> None:
        self.manager = manager
        self.worker = worker
        self.transport = worker.transport
        self.engine = worker.dsm.engine
        self.node_id = worker.node_id
        self.coordinator = coordinator
        self.interval_ns = interval_ns
        self.transport.on_peer_unreachable = self._on_unreachable

    def start(self) -> None:
        if self.node_id != self.coordinator:
            self.engine.schedule(self.interval_ns, self._tick)

    def _tick(self) -> None:
        if (self.manager.stopped or self.worker.dead
                or not self.manager.app_active()):
            return
        self.transport.send(self.coordinator, M_FT_PING,
                            {"node": self.node_id}, size_bytes=PING_BYTES)
        self.engine.schedule(self.interval_ns, self._tick)

    def _on_unreachable(self, dst: int) -> None:
        """ARQ gave up on ``dst``: report the suspicion upward.  (A dead
        node's own reports go nowhere — its sends are swallowed.)"""
        if self.manager.stopped or self.worker.dead:
            return
        if dst == self.coordinator:
            return  # coordinator loss is not survivable; nothing to tell
        if self.node_id == self.coordinator:
            self.manager.detector.suspect(dst)
        else:
            self.transport.send(self.coordinator, M_FT_SUSPECT,
                                {"suspect": dst}, size_bytes=PING_BYTES)


class FailureDetector:
    """Coordinator side: tracks last-seen times, confirms failures."""

    def __init__(self, manager: "FtManager", worker: "WorkerNode",
                 interval_ns: int, threshold: int) -> None:
        self.manager = manager
        self.worker = worker
        self.engine = worker.dsm.engine
        self.node_id = worker.node_id
        self.interval_ns = interval_ns
        self.threshold = threshold
        self.last_seen: Dict[int, int] = {}
        self.suspected: Set[int] = set()

    def watch(self, node_id: int) -> None:
        """Begin monitoring one worker (counts as just-seen)."""
        if node_id != self.node_id:
            self.last_seen[node_id] = self.engine.now

    def start(self) -> None:
        self.engine.schedule(self.interval_ns, self._check)

    # ------------------------------------------------------------------
    def on_ping(self, msg: Message) -> None:
        node = msg.payload["node"]
        self.last_seen[node] = self.engine.now
        self.suspected.discard(node)

    def on_suspect(self, msg: Message) -> None:
        self.suspect(msg.payload["suspect"])

    def suspect(self, node: int) -> None:
        """Transport-level suspicion: drop the peer's miss threshold."""
        if node in self.last_seen and node not in self.manager.dead_nodes:
            self.suspected.add(node)

    # ------------------------------------------------------------------
    def _check(self) -> None:
        if self.manager.stopped:
            return
        if not self.manager.app_active():
            self.manager.stop()
            return
        now = self.engine.now
        for node in sorted(self.last_seen):
            if node in self.manager.dead_nodes:
                continue
            misses = (now - self.last_seen[node]) // self.interval_ns
            bar = self.threshold
            if node in self.suspected:
                bar = max(1, self.threshold // 4)
            if misses >= bar:
                self.manager.on_failure(node)
        self.engine.schedule(self.interval_ns, self._check)
