"""Node-failure recovery orchestration.

On a confirmed failure the orchestrator restores an oracle-consistent
heap and releases every survivor that was blocked on the dead node:

1. **Freeze + drain** — no lock token may leave any survivor while the
   scan runs; in-flight tokens (on the wire or in an ARQ retransmission
   buffer headed to a live peer) are waited out, so afterwards every
   surviving token sits at exactly one node.
2. **Declare dead** — survivors mark the peer dead (epoch bump; frames
   from it, and dead-epoch stragglers, are discarded), the node's CPUs
   halt, and its endpoint leaves the network.
3. **Re-home** — the buddy adopts the dead node's coherency units from
   its replica store (merging its own uncommitted local writes on top)
   and every survivor's home table is redirected.
4. **Lock repair** — tokens that died with the node are re-issued at
   the (possibly adoptive) home; owner tables are pointed at the actual
   holders; queued requests from dead threads are purged; survivors'
   blocked threads re-issue their lost requests (token-queue dedup and
   the stale-grant guard make re-issue safe to over-approximate).
5. **Flush repair** — unacked diffs addressed to the dead home are
   redirected to the adoptive home (distinct ``ft.rediff`` frames, so
   accounting stays exact); parked fetches are re-sent.
6. **Invalidate** — the adoptive home broadcasts write notices at its
   store versions; replicas that cannot be proven fresh get invalidated
   through the normal notice path.
7. **Re-ship** — the dead node's unfinished threads restart from their
   last lock-release-consistent state via the normal spawn machinery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from ..dsm.locks import LockToken
from ..dsm.protocol import M_SPAWN, M_TOKEN
from ..net.message import HEADER_BYTES
from ..sim.engine import NS_PER_MS
from .replication import M_FT_NOTICES, buddy_of, unit_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .manager import FtManager

#: Poll period while waiting for in-flight lock tokens to settle.
DRAIN_TICK_NS = 1 * NS_PER_MS
#: Wire size of one (key, version) entry in a recovery notice burst.
NOTICE_BYTES = 12


class MasterFailedError(RuntimeError):
    """The master node failed; that is not survivable (console, main
    thread, and failure detection all live there)."""


class RecoveryOrchestrator:
    """Drives the recovery sequence for one confirmed node failure."""

    def __init__(self, manager: "FtManager") -> None:
        self.manager = manager
        self.records: List[Dict[str, Any]] = []
        # Observers (DsmTracer / obs subsystem).  ``event_sink`` gets
        # (time_ns, kind, detail) lines for the flat event log;
        # ``on_recovered`` gets each completed recovery record so the
        # telemetry layer can turn its phases into spans.
        self.event_sink: Optional[Callable[[int, str, str], None]] = None
        self.on_recovered: Optional[Callable[[Dict[str, Any]], None]] = None

    # ------------------------------------------------------------------
    def begin(self, dead: int) -> None:
        runtime = self.manager.runtime
        if dead == runtime.config.master_node:
            raise MasterFailedError(
                f"master node {dead} failed; recovery cannot proceed"
            )
        record: Dict[str, Any] = {
            "dead": dead,
            "detected_ns": runtime.engine.now,
            "drain_ticks": 0,
        }
        if self.event_sink is not None:
            self.event_sink(runtime.engine.now, "ft.detect",
                            f"node {dead} declared failed")
        for w in self._live(dead):
            w.dsm.ft_set_token_freeze(True)
        self._drain(dead, record)

    def _live(self, dead: int):
        return [w for w in self.manager.runtime.workers
                if not w.dead and w.node_id != dead]

    # ------------------------------------------------------------------
    # Phase 1: wait out in-flight tokens
    # ------------------------------------------------------------------
    def _tokens_settled(self, dead: int) -> bool:
        network = self.manager.runtime.network
        if network.in_flight(M_TOKEN) > 0:
            return False
        for w in self._live(dead):
            for dst, pending in w.transport._unacked.items():
                if dst == dead or dst in w.transport.dead_peers:
                    continue  # lost with the node; never settles
                if any(m.msg_type == M_TOKEN for m in pending.values()):
                    return False
        return True

    def _drain(self, dead: int, record: Dict[str, Any]) -> None:
        if not self._tokens_settled(dead):
            record["drain_ticks"] += 1
            self.manager.runtime.engine.schedule(
                DRAIN_TICK_NS, lambda: self._drain(dead, record))
            return
        self._recover(dead, record)

    # ------------------------------------------------------------------
    # Phases 2-7 (synchronous at one simulated instant; the repair
    # messages they emit flow through the normal network afterwards)
    # ------------------------------------------------------------------
    def _recover(self, dead: int, record: Dict[str, Any]) -> None:
        manager = self.manager
        runtime = manager.runtime
        workers = runtime.workers
        dead_w = workers[dead]
        live = self._live(dead)

        # Phase 2: declare dead everywhere.
        manager.dead_nodes.add(dead)
        for w in live:
            w.transport.mark_dead(dead)
        dead_w.dead = True
        dead_w.node.halt()
        dead_w.transport.close()
        manager.detector.last_seen.pop(dead, None)
        manager.detector.suspected.discard(dead)

        # Phase 3: the buddy adopts the dead node's units.  With the
        # locality subsystem on, the store may hold units the dead node
        # migrated AWAY before dying — those have a live master
        # elsewhere, and adopting them would mint a second one.  Units
        # migrated TO the dead node stay: the dead node replicated them
        # after adopting, so the buddy is their rightful heir.
        buddy_id = buddy_of(dead, len(workers), manager.dead_nodes)
        buddy = workers[buddy_id]
        agent_b = manager.agents[buddy_id]
        units = agent_b.store.units_of(dead)
        locality = getattr(runtime, "locality", None)
        if locality is not None:
            units = [u for u in units
                     if locality.current_home(u["gid"]) == dead]
        for unit in units:
            buddy.dsm.ft_install_master(unit)
            agent_b.note_adopted(unit_key(unit))
        manager.home_redirects[dead] = buddy_id
        # Chained failure hardening: redirects that pointed at the node
        # that just died now follow it to the new adoptive home.
        for origin, target in list(manager.home_redirects.items()):
            if target == dead:
                manager.home_redirects[origin] = buddy_id
        for w in live:
            for origin, target in manager.home_redirects.items():
                w.dsm.ft_set_home(origin, target)
        if locality is not None:
            # Units migrated TO the dead node now live at the buddy:
            # bump their directory entries on every survivor.
            locality.on_node_dead(dead, buddy_id)

        # Phase 4: lock repair.  After the drain, every surviving token
        # sits at exactly one node; a candidate gid with no live holder
        # lost its token with the dead node (promote always minted one).
        candidates = set(u["gid"] for u in units)
        for w in live:
            candidates.update(w.dsm.lock_states)
            candidates.update(w.dsm.lock_owner)
        tokens_reissued = 0
        for gid in sorted(candidates):
            holders = [
                w for w in live
                if (st := w.dsm.lock_states.get(gid)) is not None
                and st.token is not None
            ]
            if locality is not None:
                # live[0]'s directory may lack a migrated gid's redirect
                # (gossip is lazy); the registry always knows.
                home_id = locality.current_home(gid)
                home_id = live[0].dsm._home_map.get(home_id, home_id)
                home_w = workers[home_id]
            else:
                home_w = workers[live[0].dsm.home_node(gid)]
            if holders:
                owner = holders[0].node_id
            else:
                st = home_w.dsm._lock_state(gid)
                st.token = LockToken(gid)
                st.last_sent_to = None
                owner = home_w.node_id
                tokens_reissued += 1
            home_w.dsm.lock_owner[gid] = owner
        for w in live:
            w.dsm.ft_purge_dead(dead)

        # Phase 5: flush repair.
        rediffs = sum(
            w.dsm.ft_redirect_pending(dead, buddy_id) for w in live)
        refetches = sum(w.dsm.ft_reissue_fetches(dead) for w in live)
        relocks = sum(w.dsm.ft_reissue_blocked() for w in live)
        if locality is not None:
            # Re-aim pending forwarded diffs and drop unanswerable
            # prefetches on every survivor.
            locality.on_peer_dead_all(dead)

        # Phase 6: invalidate unprovable replicas.
        notices = [(unit_key(u), u["version"]) for u in units]
        if notices:
            size = HEADER_BYTES + NOTICE_BYTES * len(notices)
            for w in live:
                if w.node_id == buddy_id:
                    continue  # adopted units are HOME here, not replicas
                buddy.transport.send(w.node_id, M_FT_NOTICES,
                                     {"notices": notices}, size_bytes=size)

        # Phase 7: re-ship the dead node's unfinished threads.
        respawned = manager.respawn_dead_threads(dead)

        # Re-protect: the ring shrank, so nodes that replicated to the
        # dead node re-point (and re-publish) to their new buddy, and
        # the adoptive home mirrors what it just adopted.
        for w in live:
            manager.agents[w.node_id].set_buddy(
                buddy_of(w.node_id, len(workers), manager.dead_nodes))
        agent_b.publish_all()

        # Release the token freeze (flushes fence-released transfers and
        # re-services every queue, granting what phase 4/5 repaired).
        for w in live:
            w.dsm.ft_set_token_freeze(False)

        policy = getattr(runtime, "policy", None)
        if policy is not None:
            # Every classification was built partly from the dead node's
            # accesses and a promoted unit's reader set may name it:
            # wipe all policy state back to plain invalidation (degraded
            # mode) and re-learn from live traffic.
            policy.on_recovery(dead)

        race = getattr(runtime, "race", None)
        if race is not None:
            # Lock clocks and buffered access events on the dead node are
            # gone; analyzing across the recovery would fabricate races.
            # Wipe all detector metadata and run degraded from here on.
            race.on_recovery(dead)

        manager.recovering.discard(dead)
        record.update({
            "recovered_ns": runtime.engine.now,
            "buddy": buddy_id,
            "units_adopted": len(units),
            "tokens_reissued": tokens_reissued,
            "diffs_redirected": rediffs,
            "fetches_reissued": refetches,
            "lock_requests_reissued": relocks,
            "threads_respawned": respawned,
        })
        self.records.append(record)
        if self.event_sink is not None:
            self.event_sink(
                runtime.engine.now, "ft.recovered",
                f"node {dead} recovered via buddy {buddy_id}: "
                f"{len(units)} units, {respawned} threads")
        if self.on_recovered is not None:
            self.on_recovered(record)
