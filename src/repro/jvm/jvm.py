"""The JVM instance: class linking, heap allocation, thread management.

One :class:`JVM` runs per simulated node.  It links shared
:class:`ClassFile` data into per-JVM :class:`RuntimeClass` objects (field
layouts, vtables, statics), allocates heap objects, registers native
methods, and adapts application threads (:class:`JThread`) to the node
scheduler's :class:`~repro.sim.node.ExecStream` interface.

``hooks`` is the DSM integration point: ``None`` for plain local
execution; the distributed runtime installs an object implementing the
hook methods used by the DSM pseudo-instructions (see
:mod:`repro.jvm.interpreter`).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim.cost_model import CostModel
from ..sim.node import Node, StreamState
from .classfile import CONSTRUCTOR, ClassFile, FieldInfo, MethodInfo, is_array_type
from .errors import ClassFormatError, JVMError, LinkError
from .frame import Frame
from .heap import ArrayObj, Obj
from .interpreter import NO_VALUE, Interpreter


class RuntimeClass:
    """A linked class: resolved superclass chain, field layout, vtable."""

    def __init__(self, jvm: "JVM", classfile: ClassFile, superclass: Optional["RuntimeClass"]) -> None:
        self.jvm = jvm
        self.classfile = classfile
        self.name = classfile.name
        self.superclass = superclass
        # Instance field layout: superclass fields first, then own.
        if superclass is not None:
            self.field_layout: Dict[str, int] = dict(superclass.field_layout)
            self.field_defaults: List[Tuple[str, Any]] = list(superclass.field_defaults)
            self.field_specs: List[FieldInfo] = list(superclass.field_specs)
            self.vtable: Dict[str, MethodInfo] = dict(superclass.vtable)
        else:
            self.field_layout = {}
            self.field_defaults = []
            self.field_specs = []
            self.vtable = {}
        for f in classfile.instance_fields():
            if f.name in self.field_layout:
                raise LinkError(
                    f"field {classfile.name}.{f.name} shadows an inherited field"
                )
            self.field_layout[f.name] = len(self.field_defaults)
            self.field_defaults.append((f.type, f.init))
            self.field_specs.append(f)
        for m in classfile.methods.values():
            self.vtable[m.name] = m
        # Statics (un-instrumented execution; the rewriter moves statics
        # of instrumented classes into C_static holder objects).
        self.statics: Dict[str, Any] = {
            f.name: f.initial_value() for f in classfile.static_fields()
        }
        self._ancestors = {self.name}
        if superclass is not None:
            self._ancestors |= superclass._ancestors

    def is_subtype_of(self, class_name: str) -> bool:
        return class_name in self._ancestors

    def method(self, name: str) -> MethodInfo:
        try:
            return self.vtable[name]
        except KeyError:
            raise LinkError(f"no method {self.name}.{name}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RuntimeClass({self.name})"


class JThread:
    """One application thread, adapted to the node scheduler."""

    _ids = itertools.count(1)

    def __init__(
        self,
        jvm: "JVM",
        entry: Frame,
        thread_obj: Optional[Obj] = None,
        priority: int = 5,
        name: str = "",
    ) -> None:
        self.jvm = jvm
        self.tid = next(JThread._ids)
        self.name = name or f"thread-{self.tid}"
        self.frames: List[Frame] = [entry]
        self.state = StreamState.RUNNABLE
        self.thread_obj = thread_obj
        self.priority = priority
        self.block_reason = ""
        self.pending_cost = 0
        self.instructions = 0
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.joiners: List["JThread"] = []
        # DSM per-thread state is attached by the distributed runtime.
        self.dsm: Any = None
        self.started_at = jvm.node.engine.now
        self.finished_at: Optional[int] = None

    # ------------------------------------------------------------------
    # ExecStream interface
    # ------------------------------------------------------------------
    def run_quantum(self, budget_ns: int) -> tuple[int, StreamState]:
        """ExecStream adapter: interpret until the budget is spent."""
        jit = self.jvm.jit
        if jit is not None:
            return jit.run_quantum(self, budget_ns)
        consumed = 0
        interp = self.jvm.interpreter
        while consumed < budget_ns and self.state is StreamState.RUNNABLE:
            consumed += interp.step(self)
        return consumed, self.state

    # ------------------------------------------------------------------
    # Blocking protocol (see interpreter docstring)
    # ------------------------------------------------------------------
    def block(self, reexec: bool, reason: str = "") -> None:
        if self.state is not StreamState.RUNNABLE:
            raise JVMError(f"block() on non-runnable thread {self.name}")
        self.state = StreamState.BLOCKED
        self.block_reason = reason
        self._reexec = reexec

    def wake(self) -> None:
        """Resume a re-execute-style blocked thread."""
        if self.state is not StreamState.BLOCKED:
            raise JVMError(f"wake() on non-blocked thread {self.name}")
        if not self._reexec:
            raise JVMError("wake() on a complete-style block; use complete()")
        self.state = StreamState.RUNNABLE
        self.block_reason = ""
        self.jvm.node.wake(self)

    def complete(self, value: Any = NO_VALUE) -> None:
        """Finish a complete-style blocked instruction on the thread's
        behalf: push the result (if any), advance the pc, reschedule."""
        if self.state is not StreamState.BLOCKED:
            raise JVMError(f"complete() on non-blocked thread {self.name}")
        if self._reexec:
            raise JVMError("complete() on a re-exec-style block; use wake()")
        frame = self.frames[-1]
        if value is not NO_VALUE:
            frame.stack.append(value)
        frame.pc += 1
        self.state = StreamState.RUNNABLE
        self.block_reason = ""
        self.jvm.node.wake(self)

    # ------------------------------------------------------------------
    def add_cost(self, ns: int) -> None:
        """Charge extra simulated time (used by native methods)."""
        self.pending_cost += ns

    def finish(self, result: Any) -> None:
        """Normal thread completion; notifies joiners."""
        self.state = StreamState.FINISHED
        self.result = result
        self.finished_at = self.jvm.node.engine.now
        self.jvm.thread_finished(self)

    def fail(self, exc: BaseException, where: str) -> None:
        """Thread death by runtime error; recorded for check_no_failures."""
        self.state = StreamState.FINISHED
        self.error = exc
        exc.args = (f"{exc.args[0] if exc.args else ''} at {where} "
                    f"[{self.name}]",)
        self.jvm.thread_finished(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JThread({self.name}, {self.state.value})"


NativeFn = Callable[["JVM", JThread, List[Any]], Any]


class JVM:
    """One virtual machine instance bound to a simulated node."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self.cost_model: CostModel = node.cost_model
        self.classes: Dict[str, RuntimeClass] = {}
        self._classfiles: Dict[str, ClassFile] = {}
        self._natives: Dict[Tuple[str, str], NativeFn] = {}
        self.interpreter = Interpreter(self)
        self.output: List[str] = []
        self.threads: List[JThread] = []
        self.live_jthreads: Dict[int, JThread] = {}  # id(thread_obj) -> JThread
        self.hooks: Any = None
        # Tiered-JIT agent (repro.jit), installed per worker when the
        # jit_enable knob is on; None keeps tier-0 dispatch untouched.
        self.jit: Any = None
        # Bootstrap class names; the distributed runtime points these at
        # the rewritten ("js."-prefixed) versions.
        self.object_class = "Object"
        self.string_class = "String"
        from .intrinsics import register_standard_natives  # late: avoids cycle
        register_standard_natives(self)

    # ------------------------------------------------------------------
    # Class loading / linking
    # ------------------------------------------------------------------
    def load_class(self, classfile: ClassFile) -> RuntimeClass:
        """Link one class; its superclass must already be loaded (or be
        loadable from the same batch via :meth:`load_classes`)."""
        if classfile.name in self.classes:
            raise LinkError(f"class {classfile.name} already loaded")
        superclass = None
        if classfile.super_name is not None:
            superclass = self.classes.get(classfile.super_name)
            if superclass is None:
                raise LinkError(
                    f"superclass {classfile.super_name} of {classfile.name} "
                    f"not loaded"
                )
        rtc = RuntimeClass(self, classfile, superclass)
        self.classes[classfile.name] = rtc
        self._classfiles[classfile.name] = classfile
        return rtc

    def load_classes(self, classfiles: List[ClassFile]) -> None:
        """Link a batch, resolving superclass order automatically."""
        pending = {cf.name: cf for cf in classfiles}
        progress = True
        while pending and progress:
            progress = False
            for name in list(pending):
                cf = pending[name]
                if cf.super_name is None or cf.super_name in self.classes:
                    self.load_class(pending.pop(name))
                    progress = True
        if pending:
            missing = {
                cf.super_name for cf in pending.values()
                if cf.super_name not in pending
            }
            raise LinkError(
                f"could not link {sorted(pending)}; missing/circular "
                f"superclasses: {sorted(missing)}"
            )

    def lookup(self, class_name: str) -> RuntimeClass:
        """The linked RuntimeClass for a name."""
        try:
            return self.classes[class_name]
        except KeyError:
            raise LinkError(f"class {class_name} not loaded") from None

    def field_index(self, class_name: str, field_name: str) -> int:
        """Layout slot of a field (resolved through the hierarchy)."""
        rtc = self.lookup(class_name)
        try:
            return rtc.field_layout[field_name]
        except KeyError:
            raise LinkError(f"no field {class_name}.{field_name}") from None

    def resolve_method(self, class_name: str, method_name: str) -> MethodInfo:
        """MethodInfo for class.name (vtable resolution)."""
        return self.lookup(class_name).method(method_name)

    # ------------------------------------------------------------------
    # Natives
    # ------------------------------------------------------------------
    def register_native(self, class_name: str, method_name: str, fn: NativeFn) -> None:
        """Install a native implementation for (class, method)."""
        self._natives[(class_name, method_name)] = fn

    def native(self, class_name: str, method_name: str) -> NativeFn:
        """Look up a registered native implementation."""
        try:
            return self._natives[(class_name, method_name)]
        except KeyError:
            raise LinkError(
                f"no native implementation for {class_name}.{method_name}"
            ) from None

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def new_instance(self, class_name: str) -> Obj:
        """Allocate an instance (fields defaulted; ctor not called)."""
        obj = Obj(self.lookup(class_name))
        if self.hooks is not None:
            self.hooks.on_new(obj)
        return obj

    def new_array(self, elem_type: str, length: int) -> ArrayObj:
        """Allocate an array of the element type's default values."""
        arr = ArrayObj(elem_type, length)
        if self.hooks is not None:
            self.hooks.on_new(arr)
        return arr

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------
    def start_main(self, class_name: str, args: Optional[List[Any]] = None) -> JThread:
        """Start the application's static ``main`` method."""
        method = self.resolve_method(class_name, "main")
        if not method.is_static:
            raise JVMError(f"{class_name}.main must be static")
        thread = JThread(self, Frame(method, list(args or [])), name="main")
        self._register_thread(thread)
        return thread

    def start_thread_obj(self, thread_obj: Obj, priority: int = 5) -> JThread:
        """Start a Thread subclass instance: runs its ``run`` method."""
        run = thread_obj.rtclass.method("run")
        thread = JThread(
            self,
            Frame(run, [thread_obj]),
            thread_obj=thread_obj,
            priority=priority,
            name=f"{thread_obj.rtclass.name}-{id(thread_obj) & 0xFFFF:x}",
        )
        self.live_jthreads[id(thread_obj)] = thread
        self._register_thread(thread)
        return thread

    def call_function(self, thread: JThread) -> None:
        """Register an externally-constructed thread (DSM spawn)."""
        self._register_thread(thread)

    def _register_thread(self, thread: JThread) -> None:
        self.threads.append(thread)
        if self.hooks is not None:
            self.hooks.on_thread_started(thread)
        self.node.add_stream(thread)

    def thread_finished(self, thread: JThread) -> None:
        """Called when a thread's last frame returns (or it fails)."""
        if thread.thread_obj is not None:
            self.live_jthreads.pop(id(thread.thread_obj), None)
        for joiner in thread.joiners:
            joiner.complete(NO_VALUE)
        thread.joiners.clear()
        if self.hooks is not None:
            self.hooks.on_thread_finished(thread)

    # ------------------------------------------------------------------
    def println(self, text: str) -> None:
        """Append a line to this JVM's console output."""
        self.output.append(text)

    @property
    def failed_threads(self) -> List[JThread]:
        """Threads that died with an error."""
        return [t for t in self.threads if t.error is not None]

    def check_no_failures(self) -> None:
        """Raise the first recorded thread error, if any (test helper)."""
        for t in self.threads:
            if t.error is not None:
                raise t.error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JVM(node={self.node.node_id}, brand={self.cost_model.brand}, "
            f"classes={len(self.classes)}, threads={len(self.threads)})"
        )
