"""The mini-JVM bytecode instruction set.

A deliberately Java-flavoured stack ISA: it keeps exactly the instruction
classes the JavaSplit rewriter cares about — heap accesses (GETFIELD /
PUTFIELD / GETSTATIC / PUTSTATIC / ARRLOAD / ARRSTORE), synchronization
(MONITORENTER / MONITOREXIT), allocation, invocation and control flow —
plus the DSM pseudo-instructions that only the rewriter may emit.

Design notes
------------
* Values carry their own type at runtime (Python ints/floats/refs), so
  arithmetic is untyped at the opcode level; the compiler inserts I2D /
  D2I conversions to get Java's static numeric semantics.
* ``DSM_READCHECK depth`` / ``DSM_WRITECHECK depth`` are *fused* forms of
  the paper's Figure 3 four-instruction fast path (DUP; GETFIELD state;
  ICONST 0; IF_ICMPNE).  They peek the object reference ``depth`` slots
  below the top of stack and fall through when the replica is valid; the
  fast-path cost is billed into the following access's ``*_checked`` cost
  key, exactly mirroring the paper's measurement methodology (Table 1
  reports whole rewritten-access latencies, not check latencies).
* Branch targets are integer instruction indices; the builder API in
  :mod:`repro.jvm.assembler` resolves symbolic labels.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from ..sim import cost_model as cm


class Op(enum.IntEnum):
    # Constants and locals
    CONST = enum.auto()        # a = literal value (int/float/str/None)
    LOAD = enum.auto()         # a = local index
    STORE = enum.auto()        # a = local index
    IINC = enum.auto()         # a = local index, b = delta

    # Arithmetic / logic (operand types carried by the values)
    ADD = enum.auto()
    SUB = enum.auto()
    MUL = enum.auto()
    DIV = enum.auto()
    REM = enum.auto()
    NEG = enum.auto()
    SHL = enum.auto()
    SHR = enum.auto()
    USHR = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    CMP = enum.auto()          # pops b,a; pushes -1/0/1 (double compare)
    I2D = enum.auto()
    D2I = enum.auto()
    CONCAT = enum.auto()       # string concatenation with stringification

    # Stack manipulation
    POP = enum.auto()
    DUP = enum.auto()
    DUP_X1 = enum.auto()       # a,b -> b,a,b
    SWAP = enum.auto()

    # Control flow
    GOTO = enum.auto()         # a = target pc
    IF = enum.auto()           # a = cond ('eq','ne','lt','ge','gt','le'), b = target; pops one, compares to 0/null
    IF_CMP = enum.auto()       # a = cond, b = target; pops two

    # Objects
    NEW = enum.auto()          # a = class name
    GETFIELD = enum.auto()     # a = class name, b = field name
    PUTFIELD = enum.auto()
    GETSTATIC = enum.auto()
    PUTSTATIC = enum.auto()
    INSTANCEOF = enum.auto()   # a = class name
    CHECKCAST = enum.auto()    # a = class name

    # Invocation
    INVOKEVIRTUAL = enum.auto()  # a = static class name, b = method name
    INVOKESTATIC = enum.auto()
    INVOKESPECIAL = enum.auto()  # constructors / super calls, no dispatch
    RETURN = enum.auto()
    RETVAL = enum.auto()

    # Arrays
    NEWARRAY = enum.auto()     # a = element type name; pops length
    ARRLOAD = enum.auto()      # pops index, arrayref
    ARRSTORE = enum.auto()     # pops value, index, arrayref
    ARRAYLENGTH = enum.auto()

    # Synchronization
    MONITORENTER = enum.auto()
    MONITOREXIT = enum.auto()

    # DSM pseudo-instructions (inserted by the rewriter only)
    DSM_READCHECK = enum.auto()   # a = stack depth of the object ref
    DSM_WRITECHECK = enum.auto()  # a = stack depth of the object ref
    DSM_ACQUIRE = enum.auto()     # pops ref; distributed monitorenter
    DSM_RELEASE = enum.auto()     # pops ref; distributed monitorexit
    DSM_STATICREF = enum.auto()   # a = class name; pushes C_static holder ref


class Instr:
    """One bytecode instruction.

    ``a`` and ``b`` are opcode-specific operands (see :class:`Op`).
    ``checked`` marks a heap access guarded by a preceding DSM check —
    the interpreter then bills the ``*_checked`` cost key.  The value
    ``"static"`` marks a checked access to a C_static holder field,
    billed at the (re)written static-access rate of Table 1.  ``cache``
    holds the link-time-resolved target (method/field index) filled in
    lazily by the interpreter (a quickening cache, like real JVMs).
    """

    __slots__ = ("op", "a", "b", "checked", "cache", "line")

    def __init__(
        self,
        op: Op,
        a: Any = None,
        b: Any = None,
        checked: bool = False,
        line: int = 0,
    ) -> None:
        self.op = op
        self.a = a
        self.b = b
        self.checked = checked
        self.cache: Any = None
        self.line = line

    def copy(self) -> "Instr":
        """A fresh instruction with the same operands (cache cleared)."""
        new = Instr(self.op, self.a, self.b, self.checked, self.line)
        return new

    def __repr__(self) -> str:
        parts = [self.op.name]
        if self.a is not None:
            parts.append(repr(self.a))
        if self.b is not None:
            parts.append(repr(self.b))
        if self.checked:
            parts.append("[checked]")
        return " ".join(parts)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Instr)
            and self.op == other.op
            and self.a == other.a
            and self.b == other.b
            and self.checked == other.checked
        )

    def __hash__(self):  # pragma: no cover - Instr used in lists only
        return hash((self.op, self.a, self.b, self.checked))


# Valid IF / IF_CMP conditions
CONDITIONS = ("eq", "ne", "lt", "ge", "gt", "le")

# Heap-access opcodes and their plain cost keys; the interpreter switches
# to ``cm.checked(key)`` when ``instr.checked`` is set.
HEAP_ACCESS_COST = {
    Op.GETFIELD: cm.FIELD_READ,
    Op.PUTFIELD: cm.FIELD_WRITE,
    Op.GETSTATIC: cm.STATIC_READ,
    Op.PUTSTATIC: cm.STATIC_WRITE,
    Op.ARRLOAD: cm.ARRAY_READ,
    Op.ARRSTORE: cm.ARRAY_WRITE,
}

# Cost keys for everything else.
OP_COST = {
    Op.CONST: cm.CONST,
    Op.LOAD: cm.LOCAL,
    Op.STORE: cm.LOCAL,
    Op.IINC: cm.LOCAL,
    Op.ADD: cm.ARITH, Op.SUB: cm.ARITH, Op.MUL: cm.ARITH,
    Op.DIV: cm.ARITH, Op.REM: cm.ARITH, Op.NEG: cm.ARITH,
    Op.SHL: cm.ARITH, Op.SHR: cm.ARITH, Op.USHR: cm.ARITH,
    Op.AND: cm.ARITH, Op.OR: cm.ARITH, Op.XOR: cm.ARITH,
    Op.CMP: cm.ARITH, Op.I2D: cm.CONVERT, Op.D2I: cm.CONVERT,
    Op.CONCAT: cm.NATIVE,
    Op.POP: cm.STACK, Op.DUP: cm.STACK, Op.DUP_X1: cm.STACK,
    Op.SWAP: cm.STACK,
    Op.GOTO: cm.BRANCH, Op.IF: cm.BRANCH, Op.IF_CMP: cm.BRANCH,
    Op.NEW: cm.ALLOC,
    Op.INSTANCEOF: cm.ARITH, Op.CHECKCAST: cm.ARITH,
    Op.INVOKEVIRTUAL: cm.INVOKE, Op.INVOKESTATIC: cm.INVOKE,
    Op.INVOKESPECIAL: cm.INVOKE,
    Op.RETURN: cm.RETURN_, Op.RETVAL: cm.RETURN_,
    Op.NEWARRAY: cm.ALLOC_ARRAY,
    Op.ARRAYLENGTH: cm.FIELD_READ,
    Op.MONITORENTER: cm.MONITOR_ENTER,
    Op.MONITOREXIT: cm.MONITOR_EXIT,
    # DSM check fast paths are billed through the access's *_checked key;
    # acquire/release costs depend on local-vs-shared and come from the
    # hook (LOCAL_LOCK_OP vs SHARED_ACQUIRE/RELEASE — Table 2).
    Op.DSM_READCHECK: None,
    Op.DSM_WRITECHECK: None,
    Op.DSM_ACQUIRE: None,
    Op.DSM_RELEASE: None,
    Op.DSM_STATICREF: cm.CHECK_HIT,
}

# Opcodes only the rewriter may emit; the verifier rejects them in
# classes marked as un-instrumented.
DSM_OPS = frozenset({
    Op.DSM_READCHECK, Op.DSM_WRITECHECK, Op.DSM_ACQUIRE,
    Op.DSM_RELEASE, Op.DSM_STATICREF,
})

# Opcodes that terminate or divert straight-line flow (used by the
# verifier's fall-off-the-end check).
TERMINATORS = frozenset({Op.GOTO, Op.RETURN, Op.RETVAL})
BRANCHES = frozenset({Op.GOTO, Op.IF, Op.IF_CMP})
