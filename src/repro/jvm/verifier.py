"""Lightweight structural bytecode verifier.

Catches compiler/rewriter bugs at class-load time rather than as weird
interpreter states: branch targets in range, consistent operand-stack
depths along all paths, no stack underflow, local indices in bounds, no
fall-off-the-end, and DSM pseudo-instructions only in instrumented
classes.

Method references are resolved through a class-file dictionary (arity is
needed for invoke stack effects); unresolvable references are an error —
a rewritten class referring to an un-rewritten one is exactly the kind of
bug this exists to catch.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from .bytecode import BRANCHES, CONDITIONS, DSM_OPS, TERMINATORS, Instr, Op
from .classfile import ClassFile, MethodInfo
from .errors import ClassFormatError

_SIMPLE_DELTA = {
    Op.CONST: 1, Op.LOAD: 1, Op.STORE: -1, Op.IINC: 0,
    Op.ADD: -1, Op.SUB: -1, Op.MUL: -1, Op.DIV: -1, Op.REM: -1,
    Op.NEG: 0, Op.SHL: -1, Op.SHR: -1, Op.USHR: -1,
    Op.AND: -1, Op.OR: -1, Op.XOR: -1, Op.CMP: -1,
    Op.I2D: 0, Op.D2I: 0, Op.CONCAT: -1,
    Op.POP: -1, Op.DUP: 1, Op.DUP_X1: 1, Op.SWAP: 0,
    Op.GOTO: 0, Op.IF: -1, Op.IF_CMP: -2,
    Op.NEW: 1, Op.GETFIELD: 0, Op.PUTFIELD: -2,
    Op.GETSTATIC: 1, Op.PUTSTATIC: -1,
    Op.INSTANCEOF: 0, Op.CHECKCAST: 0,
    Op.RETURN: 0, Op.RETVAL: -1,
    Op.NEWARRAY: 0, Op.ARRLOAD: -1, Op.ARRSTORE: -3, Op.ARRAYLENGTH: 0,
    Op.MONITORENTER: -1, Op.MONITOREXIT: -1,
    Op.DSM_READCHECK: 0, Op.DSM_WRITECHECK: 0,
    Op.DSM_ACQUIRE: -1, Op.DSM_RELEASE: -1, Op.DSM_STATICREF: 1,
}

_MIN_DEPTH = {
    # Minimum stack depth required *before* the instruction executes.
    Op.STORE: 1, Op.ADD: 2, Op.SUB: 2, Op.MUL: 2, Op.DIV: 2, Op.REM: 2,
    Op.NEG: 1, Op.SHL: 2, Op.SHR: 2, Op.USHR: 2, Op.AND: 2, Op.OR: 2,
    Op.XOR: 2, Op.CMP: 2, Op.I2D: 1, Op.D2I: 1, Op.CONCAT: 2,
    Op.POP: 1, Op.DUP: 1, Op.DUP_X1: 2, Op.SWAP: 2,
    Op.IF: 1, Op.IF_CMP: 2,
    Op.GETFIELD: 1, Op.PUTFIELD: 2, Op.PUTSTATIC: 1,
    Op.INSTANCEOF: 1, Op.CHECKCAST: 1, Op.RETVAL: 1,
    Op.NEWARRAY: 1, Op.ARRLOAD: 2, Op.ARRSTORE: 3, Op.ARRAYLENGTH: 1,
    Op.MONITORENTER: 1, Op.MONITOREXIT: 1,
    Op.DSM_ACQUIRE: 1, Op.DSM_RELEASE: 1,
}

_INVOKES = (Op.INVOKEVIRTUAL, Op.INVOKESTATIC, Op.INVOKESPECIAL)


class Verifier:
    """Verifies class files against a resolution context."""

    def __init__(self, classfiles: Dict[str, ClassFile]) -> None:
        self._classfiles = classfiles

    # ------------------------------------------------------------------
    def verify_all(self) -> None:
        """Verify every class in the table."""
        for cf in self._classfiles.values():
            self.verify_class(cf)

    def verify_class(self, cf: ClassFile) -> None:
        """Verify all non-native methods of one class."""
        for method in cf.methods.values():
            if not method.is_native:
                self.verify_method(cf, method)

    # ------------------------------------------------------------------
    def _resolve_method(self, class_name: str, method_name: str) -> MethodInfo:
        """Walk the superclass chain in the class-file dictionary."""
        current: Optional[str] = class_name
        while current is not None:
            cf = self._classfiles.get(current)
            if cf is None:
                raise ClassFormatError(
                    f"reference to unknown class {current!r} "
                    f"(resolving {class_name}.{method_name})"
                )
            m = cf.methods.get(method_name)
            if m is not None:
                return m
            current = cf.super_name
        raise ClassFormatError(f"no method {class_name}.{method_name}")

    def _invoke_delta(self, instr: Instr) -> tuple[int, int]:
        m = self._resolve_method(instr.a, instr.b)
        pops = m.nargs
        pushes = 0 if m.ret == "void" else 1
        return pops, pushes

    # ------------------------------------------------------------------
    def verify_method(self, cf: ClassFile, method: MethodInfo) -> None:
        """Verify one method: branches, stack depths, locals, DSM ops."""
        code = method.code
        where = f"{cf.name}.{method.name}"
        if not code:
            raise ClassFormatError(f"{where}: empty code")
        n = len(code)
        if code[-1].op not in TERMINATORS:
            raise ClassFormatError(f"{where}: can fall off the end of code")

        # Per-pc stack depth, propagated over all paths.
        depth_at: list[Optional[int]] = [None] * n
        depth_at[0] = 0
        worklist = [0]
        while worklist:
            pc = worklist.pop()
            depth = depth_at[pc]
            assert depth is not None
            instr = code[pc]
            op = instr.op

            if op in DSM_OPS and not cf.instrumented:
                raise ClassFormatError(
                    f"{where} pc={pc}: DSM opcode {op.name} in an "
                    f"un-instrumented class"
                )
            if op in (Op.LOAD, Op.STORE, Op.IINC):
                if not isinstance(instr.a, int) or not (
                    0 <= instr.a < method.max_locals
                ):
                    raise ClassFormatError(
                        f"{where} pc={pc}: local index {instr.a!r} out of "
                        f"range (max_locals={method.max_locals})"
                    )
            if op in (Op.IF, Op.IF_CMP) and instr.a not in CONDITIONS:
                raise ClassFormatError(
                    f"{where} pc={pc}: bad condition {instr.a!r}"
                )
            if op in (Op.DSM_READCHECK, Op.DSM_WRITECHECK):
                if not isinstance(instr.a, int) or instr.a < 0 or depth <= instr.a:
                    raise ClassFormatError(
                        f"{where} pc={pc}: check depth {instr.a!r} exceeds "
                        f"stack depth {depth}"
                    )

            if op in _INVOKES:
                pops, pushes = self._invoke_delta(instr)
                if depth < pops:
                    raise ClassFormatError(
                        f"{where} pc={pc}: stack underflow invoking "
                        f"{instr.a}.{instr.b} (depth {depth}, needs {pops})"
                    )
                new_depth = depth - pops + pushes
            else:
                need = _MIN_DEPTH.get(op, 0)
                if depth < need:
                    raise ClassFormatError(
                        f"{where} pc={pc}: stack underflow at {op.name} "
                        f"(depth {depth}, needs {need})"
                    )
                new_depth = depth + _SIMPLE_DELTA[op]

            # Successors
            succs = []
            if op in BRANCHES:
                target = instr.a if op is Op.GOTO else instr.b
                if not isinstance(target, int) or not (0 <= target < n):
                    raise ClassFormatError(
                        f"{where} pc={pc}: branch target {target!r} out of "
                        f"range"
                    )
                succs.append(target)
            if op not in TERMINATORS:
                succs.append(pc + 1)

            for s in succs:
                if depth_at[s] is None:
                    depth_at[s] = new_depth
                    worklist.append(s)
                elif depth_at[s] != new_depth:
                    raise ClassFormatError(
                        f"{where} pc={s}: inconsistent stack depth "
                        f"({depth_at[s]} vs {new_depth} arriving from pc "
                        f"{pc})"
                    )


def verify_classfiles(classfiles: Iterable[ClassFile]) -> None:
    """Verify a self-contained batch of class files."""
    table = {cf.name: cf for cf in classfiles}
    Verifier(table).verify_all()
