"""The bytecode interpreter.

One :class:`Interpreter` per JVM instance.  It is *steppable*: ``step``
executes exactly one instruction of a thread's top frame and returns its
simulated cost in nanoseconds, so the node scheduler can timeshare
threads over simulated CPUs and the DSM can block threads mid-access.

Blocking discipline (see DESIGN.md):

* **re-execute** style — instructions that only *peeked* at the stack
  (DSM access checks, DSM_STATICREF) leave the pc untouched when they
  block; when the protocol wakes the thread the instruction re-executes
  and now passes.  This mirrors the paper's Figure 3, where the read-miss
  handler returns into the access check.
* **complete** style — instructions that already consumed operands
  (MONITORENTER, DSM_ACQUIRE, blocking native calls) block with the pc
  still pointing at them; the waker calls :meth:`JThread.complete`,
  which pushes an optional result and advances the pc.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from ..sim import cost_model as cm
from .bytecode import HEAP_ACCESS_COST, OP_COST, Instr, Op
from .classfile import CONSTRUCTOR, MethodInfo
from .errors import (
    ArithmeticJavaError,
    ClassCastError,
    IllegalMonitorStateError,
    JVMError,
    NullPointerError,
)
from .frame import Frame
from .heap import ArrayObj, Obj, monitor_of

# Sentinel returned by native methods that produce no value (void).
NO_VALUE = object()
# Sentinel returned by native methods that blocked the thread themselves.
BLOCK = object()


def java_idiv(a: int, b: int) -> int:
    """Java integer division: truncates toward zero."""
    if b == 0:
        raise ArithmeticJavaError("/ by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def java_irem(a: int, b: int) -> int:
    if b == 0:
        raise ArithmeticJavaError("% by zero")
    return a - java_idiv(a, b) * b


def java_ddiv(a: float, b: float) -> float:
    """Java double division: never traps; yields inf/nan."""
    if b == 0.0:
        if a == 0.0:
            return math.nan
        return math.inf if (a > 0) == (b >= 0 and not math.copysign(1, b) < 0) else -math.inf
    return a / b


def jstr(value: Any) -> str:
    """Stringify a value the way Java's string concatenation would."""
    if value is None:
        return "null"
    if isinstance(value, bool):  # pragma: no cover - booleans are ints
        return "true" if value else "false"
    if isinstance(value, float):
        if value == math.floor(value) and abs(value) < 1e16 and not math.isinf(value):
            return f"{value:.1f}"
        return repr(value)
    if isinstance(value, (Obj, ArrayObj)):
        return f"{value.class_name}@{id(value) & 0xFFFFFF:x}"
    return str(value)


class Interpreter:
    """Executes bytecode for one JVM instance."""

    # Race-detector access observer (repro.race), set per instance when
    # the detector is enabled: (thread, ref, slot, is_write, frame,
    # instr).  Class-level None keeps the disabled fast path a single
    # attribute test.
    race_hook = None

    # Tiered-JIT agent (repro.jit); set per instance when the jit is
    # enabled so _invoke can bump the callee's invocation counter.
    # Class-level None keeps the disabled path a single attribute test.
    jit = None

    def __init__(self, jvm: "JVM") -> None:  # noqa: F821 - circular typing
        self.jvm = jvm
        self.cost_model = jvm.cost_model
        # Per-opcode cost tables, resolved once per JVM brand (a real
        # JIT would constant-fold these; we index two flat lists).
        n_ops = max(int(op) for op in Op) + 1
        self._cost_plain = [0] * n_ops
        self._cost_checked = [0] * n_ops
        self._cost_static = [0] * n_ops
        for op in Op:
            heap_key = HEAP_ACCESS_COST.get(op)
            if heap_key is not None:
                self._cost_plain[op] = self.cost_model[heap_key]
                self._cost_checked[op] = self.cost_model[cm.checked(heap_key)]
                self._cost_static[op] = self._cost_checked[op]
            else:
                key = OP_COST[op]
                cost = self.cost_model[key] if key is not None else 0
                self._cost_plain[op] = cost
                self._cost_checked[op] = cost
                self._cost_static[op] = cost
        # Rewritten static accesses are GETFIELD/PUTFIELD on the C_static
        # holder (§4.2); they bill the static rows of Table 1.
        self._cost_static[Op.GETFIELD] = self.cost_model[cm.checked(cm.STATIC_READ)]
        self._cost_static[Op.PUTFIELD] = self.cost_model[cm.checked(cm.STATIC_WRITE)]

    # ------------------------------------------------------------------
    def step(self, thread: "JThread") -> int:  # noqa: F821
        """Execute one instruction; returns its simulated cost in ns."""
        frame = thread.frames[-1]
        try:
            instr = frame.method.code[frame.pc]
        except IndexError:
            raise JVMError(
                f"pc fell off method end at {frame.where()}"
            ) from None
        try:
            cost = self._execute(thread, frame, instr)
        except JVMError as exc:
            thread.fail(exc, frame.where())
            raise
        if thread.pending_cost:
            cost += thread.pending_cost
            thread.pending_cost = 0
        thread.instructions += 1
        return cost

    # ------------------------------------------------------------------
    def _base_cost(self, instr: Instr) -> int:
        table = self._cost_checked if instr.checked else self._cost_plain
        return table[instr.op]

    # ------------------------------------------------------------------
    def _execute(self, thread, frame: Frame, instr: Instr) -> int:
        op = instr.op
        stack = frame.stack
        checked = instr.checked
        if checked:
            cost = (self._cost_static if checked == "static"
                    else self._cost_checked)[op]
        else:
            cost = self._cost_plain[op]

        # --- constants & locals -------------------------------------
        if op is Op.LOAD:
            stack.append(frame.locals[instr.a])
        elif op is Op.CONST:
            stack.append(instr.a)
        elif op is Op.DSM_READCHECK:
            hooks = self._hooks()
            ref = frame.peek(instr.a)
            if ref is None:
                raise NullPointerError("read check on null")
            # For array accesses the element index sits just above the
            # ref; region-granular coherence (§4.3 extension) needs it.
            index = (
                frame.peek(instr.a - 1)
                if instr.a >= 1 and isinstance(ref, ArrayObj) else None
            )
            ok, extra = hooks.read_check(thread, ref, index)
            if not ok:
                # Re-execute style: pc stays on the check; the fetch
                # reply wakes the thread and the check then passes.
                thread.block(reexec=True, reason="read miss")
                return cost + extra
            frame.pc += 1
            return cost + extra
        elif op is Op.GETFIELD:
            ref = stack.pop()
            if ref is None:
                raise NullPointerError(f"getfield {instr.a}.{instr.b}")
            idx = instr.cache
            if idx is None:
                idx = self.jvm.field_index(instr.a, instr.b)
                instr.cache = idx
            if self.race_hook is not None and checked:
                self.race_hook(thread, ref, instr.b, False, frame, instr)
            stack.append(ref.fields[idx])
        elif op is Op.IF_CMP:
            b = stack.pop(); a = stack.pop()
            if self._test_cmp(instr.a, a, b):
                frame.pc = instr.b
                return cost

        # --- objects ----------------------------------------------------
        elif op is Op.ADD:
            b = stack.pop(); stack[-1] = stack[-1] + b
        elif op is Op.ARRLOAD:
            idx = stack.pop(); ref = stack.pop()
            if ref is None:
                raise NullPointerError("arrload on null")
            if self.race_hook is not None and checked:
                self.race_hook(thread, ref, idx, False, frame, instr)
            stack.append(ref.get(idx))
        elif op is Op.STORE:
            frame.locals[instr.a] = stack.pop()
        elif op is Op.IINC:
            frame.locals[instr.a] += instr.b

        # --- arithmetic ----------------------------------------------
        elif op is Op.DSM_WRITECHECK:
            hooks = self._hooks()
            ref = frame.peek(instr.a)
            if ref is None:
                raise NullPointerError("write check on null")
            value = frame.peek(instr.b) if instr.b is not None else None
            index = (
                frame.peek(instr.a - 1)
                if instr.a >= 2 and isinstance(ref, ArrayObj) else None
            )
            ok, extra = hooks.write_check(thread, ref, value, index)
            if not ok:
                thread.block(reexec=True, reason="write miss")
                return cost + extra
            frame.pc += 1
            return cost + extra
        elif op is Op.PUTFIELD:
            value = stack.pop()
            ref = stack.pop()
            if ref is None:
                raise NullPointerError(f"putfield {instr.a}.{instr.b}")
            idx = instr.cache
            if idx is None:
                idx = self.jvm.field_index(instr.a, instr.b)
                instr.cache = idx
            if self.race_hook is not None and checked:
                self.race_hook(thread, ref, instr.b, True, frame, instr)
            ref.fields[idx] = value
        elif op is Op.ARRSTORE:
            value = stack.pop(); idx = stack.pop(); ref = stack.pop()
            if ref is None:
                raise NullPointerError("arrstore on null")
            if self.race_hook is not None and checked:
                self.race_hook(thread, ref, idx, True, frame, instr)
            ref.set(idx, value)
        elif op is Op.MUL:
            b = stack.pop(); stack[-1] = stack[-1] * b
        elif op is Op.SUB:
            b = stack.pop(); stack[-1] = stack[-1] - b
        elif op is Op.GOTO:
            frame.pc = instr.a
            return cost
        elif op is Op.IF:
            v = stack.pop()
            if self._test_zero(instr.a, v):
                frame.pc = instr.b
                return cost
        elif op is Op.INVOKEVIRTUAL:
            static_m = instr.cache
            if static_m is None:
                static_m = self.jvm.resolve_method(instr.a, instr.b)
                instr.cache = static_m
            receiver = frame.peek(len(static_m.params))
            if receiver is None:
                raise NullPointerError(f"invoke {instr.a}.{instr.b} on null")
            if isinstance(receiver, str):
                target = self.jvm.resolve_method(self.jvm.string_class, instr.b)
            elif isinstance(receiver, ArrayObj):
                target = self.jvm.resolve_method(self.jvm.object_class, instr.b)
            else:
                target = receiver.rtclass.vtable.get(instr.b)
                if target is None:
                    target = self.jvm.resolve_method(instr.a, instr.b)
            return cost + self._invoke(thread, frame, static_m, target)
        elif op is Op.INVOKESTATIC:
            method = instr.cache
            if method is None:
                method = self.jvm.resolve_method(instr.a, instr.b)
                instr.cache = method
            return cost + self._invoke(thread, frame, method, method)
        elif op is Op.DUP:
            stack.append(stack[-1])
        elif op is Op.CMP:
            b = stack.pop(); a = stack.pop()
            stack.append(0 if a == b else (-1 if a < b else 1))
        elif op is Op.I2D:
            stack[-1] = float(stack[-1])
        elif op is Op.DIV:
            b = stack.pop(); a = stack.pop()
            if isinstance(a, int) and isinstance(b, int):
                stack.append(java_idiv(a, b))
            else:
                stack.append(java_ddiv(float(a), float(b)))
        elif op is Op.DSM_ACQUIRE:
            hooks = self._hooks()
            ref = stack.pop()
            if ref is None:
                raise NullPointerError("acquire on null")
            done, extra = hooks.acquire(thread, ref)
            if not done:
                thread.block(reexec=False, reason="lock acquire")
                return cost + extra  # complete style: waker advances pc
            frame.pc += 1
            return cost + extra
        elif op is Op.DSM_RELEASE:
            hooks = self._hooks()
            ref = stack.pop()
            if ref is None:
                raise NullPointerError("release on null")
            extra = hooks.release(thread, ref)
            frame.pc += 1
            return cost + extra
        elif op is Op.ARRAYLENGTH:
            ref = stack.pop()
            if ref is None:
                raise NullPointerError("arraylength on null")
            stack.append(len(ref))

        # --- synchronization (local monitors) ----------------------------
        elif op is Op.INVOKESPECIAL:
            method = instr.cache
            if method is None:
                method = self.jvm.resolve_method(instr.a, instr.b)
                instr.cache = method
            return cost + self._invoke(thread, frame, method, method)
        elif op is Op.RETURN:
            self._return(thread, None, has_value=False)
            return cost
        elif op is Op.RETVAL:
            self._return(thread, stack.pop(), has_value=True)
            return cost

        # --- arrays -------------------------------------------------------
        elif op is Op.NEW:
            stack.append(self.jvm.new_instance(instr.a))
        elif op is Op.NEWARRAY:
            length = stack.pop()
            stack.append(self.jvm.new_array(instr.a, length))
        elif op is Op.REM:
            b = stack.pop(); a = stack.pop()
            if isinstance(a, int) and isinstance(b, int):
                stack.append(java_irem(a, b))
            else:
                stack.append(math.fmod(a, b) if b != 0 else math.nan)
        elif op is Op.NEG:
            stack[-1] = -stack[-1]
        elif op is Op.SHL:
            b = stack.pop(); stack[-1] = stack[-1] << b
        elif op is Op.SHR:
            b = stack.pop(); stack[-1] = stack[-1] >> b
        elif op is Op.USHR:
            b = stack.pop(); a = stack.pop()
            stack.append((a & 0xFFFFFFFFFFFFFFFF) >> b)
        elif op is Op.AND:
            b = stack.pop(); stack[-1] = stack[-1] & b
        elif op is Op.OR:
            b = stack.pop(); stack[-1] = stack[-1] | b
        elif op is Op.XOR:
            b = stack.pop(); stack[-1] = stack[-1] ^ b
        elif op is Op.D2I:
            v = stack[-1]
            if math.isnan(v):
                stack[-1] = 0
            else:
                stack[-1] = int(v)  # trunc toward zero, Java semantics
        elif op is Op.CONCAT:
            b = stack.pop(); a = stack.pop()
            stack.append(jstr(a) + jstr(b))

        # --- stack ----------------------------------------------------
        elif op is Op.POP:
            stack.pop()
        elif op is Op.DUP_X1:
            b = stack.pop(); a = stack.pop()
            stack.extend((b, a, b))
        elif op is Op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]

        # --- control flow ----------------------------------------------
        elif op is Op.GETSTATIC:
            rtc = self.jvm.classes[instr.a]
            stack.append(rtc.statics[instr.b])
        elif op is Op.PUTSTATIC:
            rtc = self.jvm.classes[instr.a]
            rtc.statics[instr.b] = stack.pop()
        elif op is Op.INSTANCEOF:
            ref = stack.pop()
            stack.append(1 if self._is_instance(ref, instr.a) else 0)
        elif op is Op.CHECKCAST:
            ref = stack[-1]
            if ref is not None and not self._is_instance(ref, instr.a):
                raise ClassCastError(
                    f"{getattr(ref, 'class_name', type(ref).__name__)} -> {instr.a}"
                )

        # --- invocation -------------------------------------------------
        elif op is Op.MONITORENTER:
            ref = stack.pop()
            if ref is None:
                raise NullPointerError("monitorenter on null")
            if not self._monitor_enter(thread, ref):
                thread.block(reexec=False, reason="monitor enter")
                return cost  # blocked; waker advances pc (complete style)
        elif op is Op.MONITOREXIT:
            ref = stack.pop()
            if ref is None:
                raise NullPointerError("monitorexit on null")
            self._monitor_exit(thread, ref)

        # --- DSM pseudo-instructions --------------------------------------
        elif op is Op.DSM_STATICREF:
            hooks = self._hooks()
            ref, extra = hooks.static_ref(thread, instr.a)
            if ref is None:
                thread.block(reexec=True, reason="static holder miss")
                return cost + extra
            stack.append(ref)
            frame.pc += 1
            return cost + extra

        else:  # pragma: no cover - exhaustive dispatch
            raise JVMError(f"unimplemented opcode {op.name}")

        frame.pc += 1
        return cost

    # ------------------------------------------------------------------
    def _hooks(self):
        hooks = self.jvm.hooks
        if hooks is None:
            raise JVMError("DSM instruction executed without DSM hooks installed")
        return hooks

    @staticmethod
    def _test_zero(cond: str, v: Any) -> bool:
        if cond == "eq":
            return v == 0 or v is None
        if cond == "ne":
            return not (v == 0 or v is None)
        if v is None:
            raise NullPointerError(f"ordered compare on null ({cond})")
        if cond == "lt":
            return v < 0
        if cond == "ge":
            return v >= 0
        if cond == "gt":
            return v > 0
        if cond == "le":
            return v <= 0
        raise JVMError(f"bad IF condition {cond!r}")

    @staticmethod
    def _test_cmp(cond: str, a: Any, b: Any) -> bool:
        if cond == "eq":
            return a is b if isinstance(a, (Obj, ArrayObj)) or isinstance(b, (Obj, ArrayObj)) else a == b
        if cond == "ne":
            return not Interpreter._test_cmp("eq", a, b)
        if cond == "lt":
            return a < b
        if cond == "ge":
            return a >= b
        if cond == "gt":
            return a > b
        if cond == "le":
            return a <= b
        raise JVMError(f"bad IF_CMP condition {cond!r}")

    def _is_instance(self, ref: Any, class_name: str) -> bool:
        if ref is None:
            return False
        if class_name == self.jvm.object_class:
            return True
        if isinstance(ref, str):
            return class_name in (self.jvm.string_class, "str")
        if isinstance(ref, ArrayObj):
            return ref.class_name == class_name
        return ref.rtclass.is_subtype_of(class_name)

    # ------------------------------------------------------------------
    # Invocation / return
    # ------------------------------------------------------------------
    def _invoke(
        self,
        thread,
        frame: Frame,
        static_m: MethodInfo,
        target: MethodInfo,
    ) -> int:
        n = static_m.nargs
        args = frame.stack[len(frame.stack) - n:]
        del frame.stack[len(frame.stack) - n:]
        if target.is_native:
            fn = target.native_cache
            if fn is None:
                fn = self.jvm.native(target.klass, target.name)
                # Native implementations are identical (stateless, jvm
                # passed per call) across JVM instances, so the shared
                # MethodInfo may cache the first resolution.
                target.native_cache = fn
            result = fn(self.jvm, thread, args)
            if result is BLOCK:
                thread.block(reexec=False, reason=f"native {target.name}")
                return self.cost_model[cm.NATIVE]
            if result is not NO_VALUE:
                frame.stack.append(result)
            elif target.ret != "void":
                raise JVMError(
                    f"native {target.klass}.{target.name} returned no value"
                )
            frame.pc += 1
            return self.cost_model[cm.NATIVE]
        thread.frames.append(Frame(target, args))
        if self.jit is not None:
            self.jit.note_invoke(target)
        return 0

    def _return(self, thread, value: Any, has_value: bool) -> None:
        thread.frames.pop()
        if not thread.frames:
            thread.finish(value if has_value else None)
            return
        caller = thread.frames[-1]
        caller.pc += 1
        if has_value:
            caller.stack.append(value)

    # ------------------------------------------------------------------
    # Local monitors (un-instrumented mode)
    # ------------------------------------------------------------------
    def _monitor_enter(self, thread, ref: Any) -> bool:
        """Returns True if entered; False if the thread blocked."""
        mon = monitor_of(ref)
        if mon.owner is None:
            mon.owner = thread
            mon.count = 1
            return True
        if mon.owner is thread:
            mon.count += 1
            return True
        mon.entry_queue.append((thread, 1))
        return False

    def _monitor_exit(self, thread, ref: Any) -> None:
        mon = monitor_of(ref)
        if mon.owner is not thread:
            raise IllegalMonitorStateError("monitorexit by non-owner")
        mon.count -= 1
        if mon.count == 0:
            mon.owner = None
            self.grant_next(mon)

    def grant_next(self, mon) -> None:
        """Hand a free monitor to the next queued thread (if any)."""
        if mon.owner is None and mon.entry_queue:
            next_thread, restore = mon.entry_queue.popleft()
            mon.owner = next_thread
            mon.count = restore
            next_thread.complete(NO_VALUE)
