"""Class-file model: the artefact the compiler produces and the rewriter
transforms.

A :class:`ClassFile` is pure data (no linked state) so it can be shipped
between simulated nodes by the class registry and rewritten class-by-class
exactly as the paper's BCEL pass does.  Linking into a runnable
``RuntimeClass`` happens per-JVM in :mod:`repro.jvm.jvm`.

Types are plain strings: ``int``, ``double``, ``boolean``, ``str``,
``void``, class names, and ``T[]`` arrays.  Booleans are ints at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .bytecode import Instr
from .errors import ClassFormatError

PRIMITIVES = ("int", "double", "boolean", "str")
OBJECT_CLASS = "Object"

# Method flags
F_STATIC = "static"
F_SYNCHRONIZED = "synchronized"
F_NATIVE = "native"
VALID_FLAGS = frozenset({F_STATIC, F_SYNCHRONIZED, F_NATIVE})

CONSTRUCTOR = "<init>"


def is_array_type(t: str) -> bool:
    """True for T[] type names."""
    return t.endswith("[]")


def array_elem_type(t: str) -> str:
    """Element type of an array type name (strips one [])."""
    if not is_array_type(t):
        raise ValueError(f"{t!r} is not an array type")
    return t[:-2]


def is_ref_type(t: str) -> bool:
    """True for reference types (classes, arrays, strings)."""
    return t == "str" or is_array_type(t) or t not in PRIMITIVES + ("void",)


def default_value(t: str) -> Any:
    """Java default field/array-element value for a declared type."""
    if t == "int" or t == "boolean":
        return 0
    if t == "double":
        return 0.0
    return None  # refs and strings


@dataclass
class FieldInfo:
    """One declared field."""

    name: str
    type: str
    is_static: bool = False
    init: Any = None  # constant initializer (statics and instance fields)
    volatile: bool = False

    def initial_value(self) -> Any:
        """The field's starting value: its initializer or the type default."""
        return self.init if self.init is not None else default_value(self.type)


@dataclass
class MethodInfo:
    """One method: signature + bytecode (or a native marker)."""

    name: str
    params: List[str]
    ret: str
    code: List[Instr] = field(default_factory=list)
    max_locals: int = 0
    flags: frozenset = frozenset()
    klass: str = ""  # owning class name, set by ClassFile.add_method
    native_cache: Any = None  # resolved native fn (interpreter cache)

    def __post_init__(self) -> None:
        self.flags = frozenset(self.flags)
        # Hot-path constants, computed once.
        self.is_static = F_STATIC in self.flags
        self.is_native = F_NATIVE in self.flags
        self.is_synchronized = F_SYNCHRONIZED in self.flags
        #: stack slots consumed by a call (params + receiver)
        self.nargs = len(self.params) + (0 if self.is_static else 1)

    def copy(self) -> "MethodInfo":
        """Deep copy (fields and bytecode); the rewriter mutates copies."""
        return MethodInfo(
            name=self.name,
            params=list(self.params),
            ret=self.ret,
            code=[i.copy() for i in self.code],
            max_locals=self.max_locals,
            flags=self.flags,
            klass=self.klass,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        f = "/".join(sorted(self.flags))
        return f"MethodInfo({self.klass}.{self.name}({', '.join(self.params)}):{self.ret} {f})"


class ClassFile:
    """One class: name, superclass, fields, methods.

    Methods are keyed by name — the mini-language has no overloading,
    which keeps resolution (and the rewriter) honest and simple.
    """

    def __init__(
        self,
        name: str,
        super_name: Optional[str] = OBJECT_CLASS,
        is_bootstrap: bool = False,
    ) -> None:
        if not name:
            raise ClassFormatError("class name must be non-empty")
        self.name = name
        self.super_name = super_name if name != OBJECT_CLASS else None
        self.is_bootstrap = is_bootstrap
        self.fields: List[FieldInfo] = []
        self.methods: Dict[str, MethodInfo] = {}
        self.instrumented = False  # set by the rewriter

    # ------------------------------------------------------------------
    def add_field(self, f: FieldInfo) -> FieldInfo:
        """Declare a field; duplicate names are rejected."""
        if any(existing.name == f.name for existing in self.fields):
            raise ClassFormatError(f"duplicate field {self.name}.{f.name}")
        self.fields.append(f)
        return f

    def add_method(self, m: MethodInfo) -> MethodInfo:
        """Declare a method; duplicate names and bad flags are rejected."""
        if m.name in self.methods:
            raise ClassFormatError(f"duplicate method {self.name}.{m.name}")
        bad = set(m.flags) - VALID_FLAGS
        if bad:
            raise ClassFormatError(f"invalid method flags {bad} on {m.name}")
        m.klass = self.name
        self.methods[m.name] = m
        return m

    def field(self, name: str) -> Optional[FieldInfo]:
        """Find a field declared *in this class* by name, or None."""
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def instance_fields(self) -> List[FieldInfo]:
        """Declared instance fields, in declaration order."""
        return [f for f in self.fields if not f.is_static]

    def static_fields(self) -> List[FieldInfo]:
        """Declared static fields, in declaration order."""
        return [f for f in self.fields if f.is_static]

    def copy(self) -> "ClassFile":
        """Deep copy (fields and bytecode); the rewriter mutates copies."""
        cf = ClassFile(self.name, self.super_name, self.is_bootstrap)
        cf.instrumented = self.instrumented
        for f in self.fields:
            cf.fields.append(FieldInfo(f.name, f.type, f.is_static, f.init, f.volatile))
        for m in self.methods.values():
            cf.methods[m.name] = m.copy()
        return cf

    def wire_size(self) -> int:
        """Rough serialized size, for class-shipping network accounting."""
        size = 64 + len(self.name) + len(self.super_name or "")
        for f in self.fields:
            size += 16 + len(f.name) + len(f.type)
        for m in self.methods.values():
            size += 32 + len(m.name) + 8 * len(m.code)
        return size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClassFile({self.name} extends {self.super_name}, "
            f"{len(self.fields)} fields, {len(self.methods)} methods)"
        )
