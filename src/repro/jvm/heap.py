"""Heap object model: instances, arrays, and local monitors.

Every heap object carries two lazily-populated slots:

* ``monitor`` — a :class:`LocalMonitor` for plain single-JVM execution
  (un-instrumented mode).
* ``header`` — the DSM header the rewriter's logic attaches in
  distributed mode (state, version, 64-bit global id, lock counter; see
  :mod:`repro.dsm.objectstate`).  The paper adds these as synthetic
  fields at the top of each instrumented inheritance tree; for arrays —
  which cannot be subclassed in Java — it generates wrapper classes.  In
  our VM both instances and arrays are headerful heap objects, which
  preserves the wrapper's *purpose* (arrays become coherency units with
  DSM state) without the indirection; see DESIGN.md §2.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, TYPE_CHECKING

from .classfile import default_value
from .errors import ArrayIndexError, NegativeArraySizeError

if TYPE_CHECKING:  # pragma: no cover
    from .jvm import RuntimeClass


class Obj:
    """An instance: fixed field slots laid out by the linked class."""

    __slots__ = ("rtclass", "fields", "header", "monitor")

    def __init__(self, rtclass: "RuntimeClass") -> None:
        self.rtclass = rtclass
        self.fields: List[Any] = [
            default_value(t) if init is None else init
            for t, init in rtclass.field_defaults
        ]
        self.header: Any = None
        self.monitor: Optional[LocalMonitor] = None

    @property
    def class_name(self) -> str:
        """The runtime type name of this heap object."""
        return self.rtclass.name

    def __repr__(self) -> str:
        return f"<{self.rtclass.name}@{id(self):#x}>"


class ArrayObj:
    """A one-dimensional array; element type drives defaults and
    serialization."""

    __slots__ = ("elem_type", "data", "header", "monitor")

    def __init__(self, elem_type: str, length: int) -> None:
        if length < 0:
            raise NegativeArraySizeError(f"array length {length}")
        self.elem_type = elem_type
        self.data: List[Any] = [default_value(elem_type)] * length
        self.header: Any = None
        self.monitor: Optional[LocalMonitor] = None

    @property
    def class_name(self) -> str:
        """The runtime type name of this heap object."""
        return self.elem_type + "[]"

    def __len__(self) -> int:
        return len(self.data)

    def get(self, index: int) -> Any:
        """Bounds-checked element read."""
        try:
            if index < 0:
                raise IndexError
            return self.data[index]
        except IndexError:
            raise ArrayIndexError(
                f"index {index}, length {len(self.data)}"
            ) from None

    def set(self, index: int, value: Any) -> None:
        """Bounds-checked element write."""
        if index < 0 or index >= len(self.data):
            raise ArrayIndexError(f"index {index}, length {len(self.data)}")
        self.data[index] = value

    def __repr__(self) -> str:
        return f"<{self.elem_type}[{len(self.data)}]@{id(self):#x}>"


HeapRef = Obj  # refs are Obj | ArrayObj | str | None; alias for docs


class LocalMonitor:
    """A plain JVM monitor (un-instrumented execution).

    Re-entrant; an entry queue of threads blocked on ``monitorenter`` and
    a wait set for ``wait()``.  Grant policy is FIFO, which together with
    the deterministic engine makes runs replayable.
    """

    __slots__ = ("owner", "count", "entry_queue", "wait_set")

    def __init__(self) -> None:
        self.owner: Any = None          # JThread
        self.count: int = 0
        self.entry_queue: Deque[Any] = deque()
        self.wait_set: Deque[Any] = deque()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalMonitor(owner={self.owner}, count={self.count}, "
            f"entryq={len(self.entry_queue)}, waiters={len(self.wait_set)})"
        )


def monitor_of(ref: Any) -> LocalMonitor:
    """Get (lazily creating) the local monitor of a heap object."""
    m = ref.monitor
    if m is None:
        m = LocalMonitor()
        ref.monitor = m
    return m
